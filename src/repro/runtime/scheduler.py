"""Process-pool task scheduling for the experiment suite.

Every figure in the paper's evaluation decomposes into independent
``(figure, size, repetition, scheme)`` work units: each unit derives its
own seeds (via :class:`~repro.utils.rng.RngFactory`), builds or fetches
its own testbed, and returns plain floats.  :class:`TaskScheduler` fans
those units across a process pool and reassembles results **in task
order**, so a parallel run is bit-identical to a serial one — the same
pure functions run on the same explicit inputs, only on different
processes.

Schedulers are *ambient*, mirroring :mod:`repro.obs.profiling`: a
figure runner calls :func:`map_tasks` and transparently picks up
whatever scheduler ``run_suite``/the CLI activated (serial execution
when none is active).  Task functions must be module-level (picklable)
and take a single argument.

Worker-side observability is not lost: each task runs under a fresh
:class:`~repro.obs.profiling.PhaseRegistry` and the scheduler merges
the per-phase totals back into the parent's ambient registry, so the
figure's :class:`~repro.obs.manifest.RunManifest` still carries
``testbed/*`` and ``simulate`` timings.  Testbed-cache hit/miss deltas
are merged the same way (see :mod:`repro.runtime.cache`).

The pool prefers the ``fork`` start method (cheap workers that inherit
the parent's warm in-memory cache); where only ``spawn`` is available
workers start cold and lean on the shared disk cache instead.

Execution is *supervised*: a crashed worker (``BrokenProcessPool``) or
an expired per-task deadline (``task_timeout_s``) rebuilds the pool and
re-dispatches the affected tasks with capped exponential backoff, up to
``max_retries`` extra attempts per task.  Because work units are pure
functions of their payload and a retried attempt's draw-ledger segment
is only folded back once (from the attempt that completed), retries do
not perturb results — a run that survived worker kills archives byte
for byte what a clean serial run archives.  Retry exhaustion raises
:class:`~repro.errors.SchedulerError` naming the task, its attempt
count, and the last failure, never a raw pool traceback.  See
docs/robustness.md ("Runtime fault tolerance").
"""

from __future__ import annotations

import multiprocessing
import pickle
import sys
import time
import traceback
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from contextlib import contextmanager
from contextvars import ContextVar
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import SchedulerError
from repro.types import Seconds
from repro.obs.profiling import PhaseRegistry, activate, current_registry, perf_seconds
from repro.runtime.cache import get_cache, stats_delta

#: A task's remote outcome: (value, phase totals, cache counter delta,
#: draw-ledger segment or None, perf record or None, engine event-count
#: delta, injected chaos-delay count).  The event and chaos deltas are
#: always measured — the parent folds them back into the respective
#: cumulative counters so ``events_total()``/``chaos.delays_total()``
#: after a parallel map match a serial run.
TaskOutcome = Tuple[
    Any, Dict[str, float], Dict[str, int], Optional[Dict[str, Any]],
    Optional[Dict[str, float]], int, int,
]

#: The draw-ledger hook installed by ``repro.sanitize`` (duck-typed:
#: ``capture()`` context manager yielding a box with ``.payload``, and
#: ``absorb(payload)``).  None — the overwhelmingly common case — costs
#: one global read per task; the scheduler never imports the sanitizer.
_TASK_LEDGER: Optional[Any] = None


def set_task_ledger(hook: Optional[Any]) -> Optional[Any]:
    """Install (or clear, with None) the task draw-ledger hook.

    Returns the previously-installed hook so callers can restore it.
    """
    global _TASK_LEDGER  # noqa: PLW0603 - parent-installed hook slot
    previous = _TASK_LEDGER
    _TASK_LEDGER = hook
    return previous


def task_ledger() -> Optional[Any]:
    """The currently-installed draw-ledger hook, if any."""
    return _TASK_LEDGER


#: The worker-perf hook installed by ``run_suite``/the CLI (duck-typed:
#: ``on_map_begin(total)``, ``record_task(index, perf, cache_delta)``,
#: ``on_map_end(elapsed_s)``, optionally ``record_retry(index, kind)``
#: — see ``repro.runtime.telemetry``).  None costs one global read per
#: map; the scheduler never imports the telemetry module.
_PERF_HOOK: Optional[Any] = None


def set_perf_hook(hook: Optional[Any]) -> Optional[Any]:
    """Install (or clear, with None) the worker-perf telemetry hook.

    Returns the previously-installed hook so callers can restore it.
    """
    global _PERF_HOOK  # noqa: PLW0603 - parent-installed hook slot
    previous = _PERF_HOOK
    _PERF_HOOK = hook
    return previous


def perf_hook() -> Optional[Any]:
    """The currently-installed worker-perf hook, if any."""
    return _PERF_HOOK


#: The checkpoint journal installed by the CLI for resumable sweeps
#: (duck-typed: ``lookup(fn, arg) -> (hit, value)`` and
#: ``record(fn, arg, value)`` — see ``repro.runtime.journal``).  None
#: costs one global read per map; the scheduler never imports the
#: journal module.
_TASK_JOURNAL: Optional[Any] = None


def set_task_journal(journal: Optional[Any]) -> Optional[Any]:
    """Install (or clear, with None) the checkpoint task journal.

    Returns the previously-installed journal so callers can restore it.
    """
    global _TASK_JOURNAL  # noqa: PLW0603 - parent-installed hook slot
    previous = _TASK_JOURNAL
    _TASK_JOURNAL = journal
    return previous


def task_journal() -> Optional[Any]:
    """The currently-installed checkpoint journal, if any."""
    return _TASK_JOURNAL


#: The fault-injection policy installed by ``repro chaos run``
#: (duck-typed: ``apply(index, attempt)`` called at the task boundary
#: in the worker — see ``repro.runtime.chaos``).  Fork workers inherit
#: the slot; None — every non-chaos run — costs one global read per
#: task and the scheduler never imports the chaos module.
_CHAOS_POLICY: Optional[Any] = None


def set_chaos_policy(policy: Optional[Any]) -> Optional[Any]:
    """Install (or clear, with None) the worker fault-injection policy.

    Returns the previously-installed policy so callers can restore it.
    """
    global _CHAOS_POLICY  # noqa: PLW0603 - parent-installed hook slot
    previous = _CHAOS_POLICY
    _CHAOS_POLICY = policy
    return previous


def chaos_policy() -> Optional[Any]:
    """The currently-installed fault-injection policy, if any."""
    return _CHAOS_POLICY


def _events_total() -> int:
    """The engine's cumulative event counter, without importing it.

    The scheduler must not pull the simulator in (layering, and tasks
    that never simulate should not pay the import); reading the counter
    through ``sys.modules`` observes it exactly when the task actually
    ran the engine.
    """
    module = sys.modules.get("repro.simulator.engine")
    if module is None:
        return 0
    return int(module.events_total())


def _absorb_events(count: int) -> None:
    """Fold a worker's event delta into the parent engine counter.

    The import stays lazy for the same layering reason as
    :func:`_events_total` — but a non-zero delta proves a worker *did*
    simulate, so materialising the engine module here never makes a
    non-simulating run pay for it.
    """
    if count <= 0:
        return
    module = sys.modules.get("repro.simulator.engine")
    if module is None:
        import importlib

        module = importlib.import_module("repro.simulator.engine")
    module.absorb_events(count)


def _chaos_delays_total() -> int:
    """The chaos harness's cumulative delay counter, without importing it.

    Same ``sys.modules`` pattern as :func:`_events_total`: non-chaos
    runs never load :mod:`repro.runtime.chaos`, so the read costs one
    dict lookup and returns 0.
    """
    module = sys.modules.get("repro.runtime.chaos")
    if module is None:
        return 0
    return int(module.delays_total())


def _absorb_chaos_delays(count: int) -> None:
    """Fold a worker's injected-delay delta into the parent counter."""
    if count <= 0:
        return
    module = sys.modules.get("repro.runtime.chaos")
    if module is None:
        import importlib

        module = importlib.import_module("repro.runtime.chaos")
    module.absorb_delays(count)


def run_task(
    payload: Tuple[Callable[[Any], Any], Any, Optional[float], int, int]
) -> TaskOutcome:
    """Execute one task in a worker, capturing its observability.

    Module-level so it is picklable by every start method.  The task
    runs under a private :class:`PhaseRegistry`; its phase totals, the
    worker cache's counter delta, (when a sanitizer is active) its
    draw-ledger segment, and (when perf telemetry is on) its wall /
    queue-wait / event measurements ride back with the value.

    ``submitted_at`` is the parent's :func:`perf_seconds` stamp at
    submission, or None when telemetry is off — ``perf_counter`` is
    CLOCK_MONOTONIC on Linux, shared across forked processes, so the
    worker-side difference is a genuine queue wait.

    ``index``/``attempt`` identify the work unit and its retry round.
    An installed chaos policy is consulted first, *before* any draws:
    a killed attempt therefore leaves no partial ledger segment, no
    cache delta, and no event count — the retried attempt reproduces
    the unit from scratch, which is what keeps chaos runs bit-identical
    to clean ones.
    """
    fn, arg, submitted_at, index, attempt = payload
    chaos_before = _chaos_delays_total()
    chaos = _CHAOS_POLICY
    if chaos is not None:
        chaos.apply(index, attempt)
    cache_before = get_cache().stats()
    perf: Optional[Dict[str, float]] = None
    events_before = _events_total()
    if submitted_at is not None:
        started = perf_seconds()
    registry = PhaseRegistry()
    hook = _TASK_LEDGER
    ledger_segment: Optional[Dict[str, Any]] = None
    if hook is None:
        with activate(registry):
            value = fn(arg)
    else:
        with activate(registry), hook.capture() as box:
            value = fn(arg)
        ledger_segment = box.payload
    delta = stats_delta(cache_before, get_cache().stats())
    events_delta = _events_total() - events_before
    chaos_delta = _chaos_delays_total() - chaos_before
    if submitted_at is not None:
        perf = {
            "wall_s": perf_seconds() - started,
            "queue_wait_s": max(0.0, started - submitted_at),
            "events": float(events_delta),
        }
    return (value, registry.total_seconds(), delta, ledger_segment, perf,
            events_delta, chaos_delta)


def _journal_partition(
    fn: Callable[[Any], Any], items: Sequence[Any]
) -> Tuple[List[Any], List[int]]:
    """Split a fan into (prefilled values, indices still to run).

    With no journal installed every index runs.  With one installed,
    completed work units (by content key) are served from the journal
    and only the remainder is dispatched — the checkpoint/resume path.
    """
    values: List[Any] = [None] * len(items)
    journal = _TASK_JOURNAL
    if journal is None:
        return values, list(range(len(items)))
    remaining: List[int] = []
    for index, arg in enumerate(items):
        hit, value = journal.lookup(fn, arg)
        if hit:
            values[index] = value
        else:
            remaining.append(index)
    return values, remaining


def _map_inline(fn: Callable[[Any], Any], args: Sequence[Any]) -> List[Any]:
    """Serial map, honouring the ledger/perf/journal hooks like a pool.

    Capturing each unit as its own segment (instead of recording
    straight into the parent ledger) keeps phase attribution identical
    between ``jobs=1`` and ``jobs=N`` — both record units under the
    ``task`` phase and fold segments back in task order.
    """
    hook = _TASK_LEDGER
    perf = _PERF_HOOK
    if hook is None and perf is None and _TASK_JOURNAL is None:
        return [fn(arg) for arg in args]
    items = list(args)
    journal = _TASK_JOURNAL
    values, remaining = _journal_partition(fn, items)
    if perf is not None:
        perf.on_map_begin(len(remaining))
        map_started = perf_seconds()
    for index in remaining:
        arg = items[index]
        if perf is not None:
            cache_before = get_cache().stats()
            started = perf_seconds()
            events_before = _events_total()
        if hook is None:
            values[index] = fn(arg)
        else:
            with hook.capture() as box:
                values[index] = fn(arg)
            hook.absorb(box.payload)
        if journal is not None:
            journal.record(fn, arg, values[index])
        if perf is not None:
            perf.record_task(
                index,
                {
                    "wall_s": perf_seconds() - started,
                    "queue_wait_s": 0.0,
                    "events": float(_events_total() - events_before),
                },
                stats_delta(cache_before, get_cache().stats()),
            )
    if perf is not None:
        perf.on_map_end(perf_seconds() - map_started)
    return values


def _qualname(fn: Callable[[Any], Any]) -> str:
    """``module:qualname`` of a task callable, best effort."""
    module = getattr(fn, "__module__", "?")
    name = getattr(fn, "__qualname__", getattr(fn, "__name__", "?"))
    return f"{module}:{name}"


def _is_pickling_failure(error: BaseException) -> bool:
    """Did this task die trying to cross the process boundary?

    ``pickle`` does not raise one exception type: a registered-but-
    unpicklable object raises :class:`pickle.PicklingError`, a local
    function/lambda result raises ``AttributeError("Can't pickle local
    object …")``, and C-level objects raise ``TypeError("cannot
    pickle …")``.  All three deserve the same actionable
    :class:`SchedulerError` instead of a bare traceback.
    """
    if isinstance(error, pickle.PicklingError):
        return True
    if isinstance(error, (AttributeError, TypeError)):
        return "pickle" in str(error).lower()
    return False


class TaskScheduler:
    """Order-preserving, supervised map over independent work units.

    ``jobs=1`` executes inline (no pool, no pickling, ambient timers
    work directly).  ``jobs>1`` lazily creates a process pool that is
    reused across :meth:`map` calls until :meth:`shutdown`/:meth:`close`
    (or context exit).

    ``task_timeout_s`` is a per-attempt deadline: a work unit still
    running that long after submission is presumed wedged, the pool is
    rebuilt, and the unit is re-dispatched.  ``max_retries`` bounds the
    *extra* attempts any single unit may consume across crashes and
    timeouts; ``retry_backoff_s`` doubles per consecutive failure up to
    ``retry_backoff_cap_s`` before the re-dispatch.  Exhaustion raises
    :class:`~repro.errors.SchedulerError`; exceptions raised by the task
    function itself propagate unwrapped.
    """

    def __init__(
        self,
        jobs: int = 1,
        task_timeout_s: Optional[Seconds] = None,
        max_retries: int = 3,
        retry_backoff_s: Seconds = 0.1,
        retry_backoff_cap_s: Seconds = 5.0,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ValueError(
                f"task_timeout_s must be positive, got {task_timeout_s}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff_s < 0 or retry_backoff_cap_s < 0:
            raise ValueError("retry backoff values must be >= 0")
        self._jobs = jobs
        self._task_timeout_s = task_timeout_s
        self._max_retries = max_retries
        self._retry_backoff_s = retry_backoff_s
        self._retry_backoff_cap_s = retry_backoff_cap_s
        self._retry_totals = {"retries": 0, "timeouts": 0}
        self._executor: Optional[ProcessPoolExecutor] = None

    @property
    def jobs(self) -> int:
        return self._jobs

    def retry_stats(self) -> Dict[str, int]:
        """Cumulative supervised-mode counters for this scheduler.

        ``retries`` counts re-dispatches charged to worker crashes,
        ``timeouts`` those charged to expired deadlines.  ``run_figure``
        snapshots this around each figure to attribute the deltas to
        its manifest.
        """
        return dict(self._retry_totals)

    def __enter__(self) -> "TaskScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            self._executor = ProcessPoolExecutor(
                max_workers=self._jobs, mp_context=context
            )
        return self._executor

    def map(
        self, fn: Callable[[Any], Any], args: Sequence[Any]
    ) -> List[Any]:
        """Apply ``fn`` to every element of ``args``, preserving order."""
        items = list(args)
        if self._jobs == 1 or len(items) <= 1:
            return _map_inline(fn, items)

        journal = _TASK_JOURNAL
        values, remaining = _journal_partition(fn, items)
        if not remaining:
            return values
        outcomes = self._execute(fn, items, remaining)
        registry = current_registry()
        prefix = registry.current_path() if registry is not None else ""
        cache = get_cache()
        hook = _TASK_LEDGER
        # Folding in task order (== serial order) reproduces the serial
        # phase totals, cache counters, and draw ledger bit for bit —
        # regardless of the completion order the supervised fan saw.
        for index in remaining:
            (value, phase_totals, cache_delta, ledger_segment, _task_perf,
             events_delta, chaos_delta) = outcomes[index]
            if registry is not None and phase_totals:
                registry.merge_totals(phase_totals, prefix=prefix)
            if cache_delta:
                cache.absorb_stats(cache_delta)
            # Worker engines bumped *their* cumulative counters; fold
            # the deltas back so the parent matches a serial run.
            _absorb_events(events_delta)
            _absorb_chaos_delays(chaos_delta)
            if hook is not None and ledger_segment is not None:
                hook.absorb(ledger_segment)
            if journal is not None:
                journal.record(fn, items[index], value)
            values[index] = value
        return values

    # -- supervised fan -------------------------------------------------

    def _execute(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        indices: Sequence[int],
    ) -> Dict[int, TaskOutcome]:
        """Run the selected task indices under supervision.

        Keeps at most ``jobs`` attempts in flight, watches deadlines,
        and survives worker crashes by rebuilding the pool and
        re-dispatching.  Returns outcomes keyed by task index; the
        caller folds them back in task order.
        """
        perf = _PERF_HOOK
        if perf is not None:
            perf.on_map_begin(len(indices))
        map_started = perf_seconds()
        outcomes: Dict[int, TaskOutcome] = {}
        attempts: Dict[int, int] = {index: 0 for index in indices}
        last_error: Dict[int, str] = {}
        queue: Deque[int] = deque(indices)
        inflight: Dict["Future[TaskOutcome]", Tuple[int, float]] = {}
        failures = 0
        while queue or inflight:
            while queue and len(inflight) < self._jobs:
                index = queue.popleft()
                stamp = perf_seconds()
                payload = (
                    fn, items[index],
                    stamp if perf is not None else None,
                    index, attempts[index],
                )
                try:
                    future = self._pool().submit(run_task, payload)
                except BrokenExecutor as exc:
                    # The pool died before accepting the task (a worker
                    # crashed while idle, or a prior fan broke it).
                    failures += 1
                    self._recover_crash(
                        exc, [index], inflight, queue, attempts,
                        last_error, fn, perf, failures,
                    )
                    continue
                inflight[future] = (index, stamp)
            if not inflight:
                continue
            done, _pending = wait(
                inflight.keys(),
                timeout=self._poll_timeout(inflight),
                return_when=FIRST_COMPLETED,
            )
            if not done:
                expired = self._expired(inflight)
                if expired:
                    failures += 1
                    self._recover_timeout(
                        expired, inflight, queue, attempts, last_error,
                        fn, perf, failures,
                    )
                continue
            crash: Optional[BaseException] = None
            crashed: List[int] = []
            for future in done:
                index, _stamp = inflight.pop(future)
                error = future.exception()
                if error is None:
                    outcome = future.result()
                    outcomes[index] = outcome
                    if perf is not None and outcome[4] is not None:
                        perf.record_task(index, outcome[4], outcome[2])
                    continue
                if isinstance(error, BrokenExecutor):
                    # The whole pool is gone; every sibling future will
                    # fail the same way.  Collect and recover once.
                    crash = error
                    crashed.append(index)
                    continue
                if _is_pickling_failure(error):
                    self._discard_pool()
                    raise SchedulerError(
                        f"task {index} ({_qualname(fn)}) cannot cross the "
                        f"process boundary: {error} — task callables must "
                        f"be module-level and payloads/results picklable",
                        task_index=index,
                        qualname=_qualname(fn),
                        attempts=attempts[index] + 1,
                        last_error=str(error),
                    ) from error
                # The task function itself raised: propagate unwrapped,
                # exactly as a serial run would (retrying user errors
                # would mask deterministic bugs).
                self._discard_pool()
                raise error
            if crash is not None:
                failures += 1
                self._recover_crash(
                    crash, crashed, inflight, queue, attempts, last_error,
                    fn, perf, failures,
                )
        if perf is not None:
            perf.on_map_end(perf_seconds() - map_started)
        return outcomes

    def _poll_timeout(
        self, inflight: Dict["Future[TaskOutcome]", Tuple[int, float]]
    ) -> Optional[float]:
        """Seconds until the earliest in-flight deadline, or None."""
        if self._task_timeout_s is None:
            return None
        now = perf_seconds()
        earliest = min(stamp for _index, stamp in inflight.values())
        return max(0.0, earliest + self._task_timeout_s - now)

    def _expired(
        self, inflight: Dict["Future[TaskOutcome]", Tuple[int, float]]
    ) -> List[int]:
        """Task indices whose attempt has outlived the deadline."""
        if self._task_timeout_s is None:
            return []
        now = perf_seconds()
        return sorted(
            index for index, stamp in inflight.values()
            if now - stamp >= self._task_timeout_s
        )

    def _charge(
        self,
        index: int,
        kind: str,
        detail: str,
        attempts: Dict[int, int],
        last_error: Dict[int, str],
        fn: Callable[[Any], Any],
        perf: Optional[Any],
    ) -> None:
        """Charge one failed attempt; raise when the budget is spent."""
        attempts[index] += 1
        key = "timeouts" if kind == "timeout" else "retries"
        self._retry_totals[key] += 1
        last_error[index] = detail
        if perf is not None:
            record_retry = getattr(perf, "record_retry", None)
            if record_retry is not None:
                record_retry(index, kind)
        if attempts[index] > self._max_retries:
            raise SchedulerError(
                f"task {index} ({_qualname(fn)}) failed after "
                f"{attempts[index]} attempt(s) "
                f"(max_retries={self._max_retries}); last error: "
                f"{last_error[index]}",
                task_index=index,
                qualname=_qualname(fn),
                attempts=attempts[index],
                last_error=last_error[index],
            )

    def _recover_crash(
        self,
        exc: BaseException,
        crashed: Sequence[int],
        inflight: Dict["Future[TaskOutcome]", Tuple[int, float]],
        queue: Deque[int],
        attempts: Dict[int, int],
        last_error: Dict[int, str],
        fn: Callable[[Any], Any],
        perf: Optional[Any],
        failures: int,
    ) -> None:
        """Rebuild after ``BrokenProcessPool`` and requeue the fallout.

        Every task in flight at the moment of the crash is charged an
        attempt — the pool cannot say which worker held which task, and
        a task whose attempt actually finished is pure, so re-running
        it is wasteful but harmless.
        """
        affected = sorted(set(crashed) | {
            index for index, _stamp in inflight.values()
        })
        inflight.clear()
        self._discard_pool()
        cause = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        for index in affected:
            self._charge(
                index, "crash",
                f"worker crashed (attempt {attempts[index] + 1}): {cause}",
                attempts, last_error, fn, perf,
            )
        queue.extendleft(reversed(affected))
        self._backoff_sleep(failures)

    def _recover_timeout(
        self,
        expired: Sequence[int],
        inflight: Dict["Future[TaskOutcome]", Tuple[int, float]],
        queue: Deque[int],
        attempts: Dict[int, int],
        last_error: Dict[int, str],
        fn: Callable[[Any], Any],
        perf: Optional[Any],
        failures: int,
    ) -> None:
        """Rebuild after an expired deadline and requeue the fallout.

        A worker that blew its deadline may be wedged for good, and the
        only safe reclaim under fork is to rebuild the pool — so still-
        healthy in-flight tasks are requeued too, without being charged
        an attempt.
        """
        expired_set = set(expired)
        survivors = sorted(
            index for index, _stamp in inflight.values()
            if index not in expired_set
        )
        inflight.clear()
        self._discard_pool()
        for index in sorted(expired_set):
            self._charge(
                index, "timeout",
                f"deadline of {self._task_timeout_s}s expired "
                f"(attempt {attempts[index] + 1})",
                attempts, last_error, fn, perf,
            )
        queue.extendleft(reversed(sorted(expired_set) + survivors))
        self._backoff_sleep(failures)

    def _backoff_sleep(self, failures: int) -> None:
        """Capped exponential pause before re-dispatching after failure."""
        if self._retry_backoff_s <= 0:
            return
        delay = min(
            self._retry_backoff_cap_s,
            self._retry_backoff_s * (2.0 ** (failures - 1)),
        )
        if delay > 0:
            time.sleep(delay)

    def _discard_pool(self) -> None:
        """Drop the executor, reaping any surviving worker processes.

        Clears the reference *first* so a failure mid-teardown can
        never leave a broken executor installed (and ``close()`` after
        a crash stays a no-op instead of touching a dead pool).
        """
        executor, self._executor = self._executor, None
        if executor is None:
            return
        # Private, but the only handle on fork workers that may be
        # wedged mid-task: shutdown() alone would wait on them forever.
        workers = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
        for worker in workers:
            worker.join(timeout=1.0)

    def shutdown(self) -> None:
        """Tear down the pool (idempotent, even across pool rebuilds)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown()

    def close(self) -> None:
        """Alias of :meth:`shutdown`, mirroring file-like teardown."""
        self.shutdown()


_ACTIVE: ContextVar[Optional[TaskScheduler]] = ContextVar(
    "repro_runtime_scheduler", default=None
)


def active_scheduler() -> Optional[TaskScheduler]:
    """The scheduler :func:`map_tasks` currently routes through, if any."""
    return _ACTIVE.get()


@contextmanager
def use_scheduler(scheduler: TaskScheduler) -> Iterator[TaskScheduler]:
    """Make ``scheduler`` the ambient target of :func:`map_tasks`."""
    token = _ACTIVE.set(scheduler)
    try:
        yield scheduler
    finally:
        _ACTIVE.reset(token)


def map_tasks(fn: Callable[[Any], Any], args: Sequence[Any]) -> List[Any]:
    """Map through the ambient scheduler (inline when none is active)."""
    scheduler = _ACTIVE.get()
    if scheduler is None:
        return _map_inline(fn, list(args))
    return scheduler.map(fn, args)
