"""Process-pool task scheduling for the experiment suite.

Every figure in the paper's evaluation decomposes into independent
``(figure, size, repetition, scheme)`` work units: each unit derives its
own seeds (via :class:`~repro.utils.rng.RngFactory`), builds or fetches
its own testbed, and returns plain floats.  :class:`TaskScheduler` fans
those units across a process pool and reassembles results **in task
order**, so a parallel run is bit-identical to a serial one — the same
pure functions run on the same explicit inputs, only on different
processes.

Schedulers are *ambient*, mirroring :mod:`repro.obs.profiling`: a
figure runner calls :func:`map_tasks` and transparently picks up
whatever scheduler ``run_suite``/the CLI activated (serial execution
when none is active).  Task functions must be module-level (picklable)
and take a single argument.

Worker-side observability is not lost: each task runs under a fresh
:class:`~repro.obs.profiling.PhaseRegistry` and the scheduler merges
the per-phase totals back into the parent's ambient registry, so the
figure's :class:`~repro.obs.manifest.RunManifest` still carries
``testbed/*`` and ``simulate`` timings.  Testbed-cache hit/miss deltas
are merged the same way (see :mod:`repro.runtime.cache`).

The pool prefers the ``fork`` start method (cheap workers that inherit
the parent's warm in-memory cache); where only ``spawn`` is available
workers start cold and lean on the shared disk cache instead.
"""

from __future__ import annotations

import multiprocessing
import sys
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.profiling import PhaseRegistry, activate, current_registry, perf_seconds
from repro.runtime.cache import get_cache, stats_delta

#: A task's remote outcome: (value, phase totals, cache counter delta,
#: draw-ledger segment or None, perf record or None, engine event-count
#: delta).  The event delta is always measured — the parent folds it
#: back into the engine's cumulative counter so ``events_total()`` after
#: a parallel map matches a serial run.
TaskOutcome = Tuple[
    Any, Dict[str, float], Dict[str, int], Optional[Dict[str, Any]],
    Optional[Dict[str, float]], int,
]

#: The draw-ledger hook installed by ``repro.sanitize`` (duck-typed:
#: ``capture()`` context manager yielding a box with ``.payload``, and
#: ``absorb(payload)``).  None — the overwhelmingly common case — costs
#: one global read per task; the scheduler never imports the sanitizer.
_TASK_LEDGER: Optional[Any] = None


def set_task_ledger(hook: Optional[Any]) -> Optional[Any]:
    """Install (or clear, with None) the task draw-ledger hook.

    Returns the previously-installed hook so callers can restore it.
    """
    global _TASK_LEDGER  # noqa: PLW0603 - parent-installed hook slot
    previous = _TASK_LEDGER
    _TASK_LEDGER = hook
    return previous


def task_ledger() -> Optional[Any]:
    """The currently-installed draw-ledger hook, if any."""
    return _TASK_LEDGER


#: The worker-perf hook installed by ``run_suite``/the CLI (duck-typed:
#: ``on_map_begin(total)``, ``record_task(index, perf, cache_delta)``,
#: ``on_map_end(elapsed_s)`` — see ``repro.runtime.telemetry``).  None
#: costs one global read per map; the scheduler never imports the
#: telemetry module.
_PERF_HOOK: Optional[Any] = None


def set_perf_hook(hook: Optional[Any]) -> Optional[Any]:
    """Install (or clear, with None) the worker-perf telemetry hook.

    Returns the previously-installed hook so callers can restore it.
    """
    global _PERF_HOOK  # noqa: PLW0603 - parent-installed hook slot
    previous = _PERF_HOOK
    _PERF_HOOK = hook
    return previous


def perf_hook() -> Optional[Any]:
    """The currently-installed worker-perf hook, if any."""
    return _PERF_HOOK


def _events_total() -> int:
    """The engine's cumulative event counter, without importing it.

    The scheduler must not pull the simulator in (layering, and tasks
    that never simulate should not pay the import); reading the counter
    through ``sys.modules`` observes it exactly when the task actually
    ran the engine.
    """
    module = sys.modules.get("repro.simulator.engine")
    if module is None:
        return 0
    return int(module.events_total())


def _absorb_events(count: int) -> None:
    """Fold a worker's event delta into the parent engine counter.

    The import stays lazy for the same layering reason as
    :func:`_events_total` — but a non-zero delta proves a worker *did*
    simulate, so materialising the engine module here never makes a
    non-simulating run pay for it.
    """
    if count <= 0:
        return
    module = sys.modules.get("repro.simulator.engine")
    if module is None:
        import importlib

        module = importlib.import_module("repro.simulator.engine")
    module.absorb_events(count)


def run_task(
    payload: Tuple[Callable[[Any], Any], Any, Optional[float]]
) -> TaskOutcome:
    """Execute one task in a worker, capturing its observability.

    Module-level so it is picklable by every start method.  The task
    runs under a private :class:`PhaseRegistry`; its phase totals, the
    worker cache's counter delta, (when a sanitizer is active) its
    draw-ledger segment, and (when perf telemetry is on) its wall /
    queue-wait / event measurements ride back with the value.

    ``submitted_at`` is the parent's :func:`perf_seconds` stamp at
    submission, or None when telemetry is off — ``perf_counter`` is
    CLOCK_MONOTONIC on Linux, shared across forked processes, so the
    worker-side difference is a genuine queue wait.
    """
    fn, arg, submitted_at = payload
    cache_before = get_cache().stats()
    perf: Optional[Dict[str, float]] = None
    events_before = _events_total()
    if submitted_at is not None:
        started = perf_seconds()
    registry = PhaseRegistry()
    hook = _TASK_LEDGER
    ledger_segment: Optional[Dict[str, Any]] = None
    if hook is None:
        with activate(registry):
            value = fn(arg)
    else:
        with activate(registry), hook.capture() as box:
            value = fn(arg)
        ledger_segment = box.payload
    delta = stats_delta(cache_before, get_cache().stats())
    events_delta = _events_total() - events_before
    if submitted_at is not None:
        perf = {
            "wall_s": perf_seconds() - started,
            "queue_wait_s": max(0.0, started - submitted_at),
            "events": float(events_delta),
        }
    return (value, registry.total_seconds(), delta, ledger_segment, perf,
            events_delta)


def _map_inline(fn: Callable[[Any], Any], args: Sequence[Any]) -> List[Any]:
    """Serial map, honouring the ledger/perf hooks like a pool would.

    Capturing each unit as its own segment (instead of recording
    straight into the parent ledger) keeps phase attribution identical
    between ``jobs=1`` and ``jobs=N`` — both record units under the
    ``task`` phase and fold segments back in task order.
    """
    hook = _TASK_LEDGER
    perf = _PERF_HOOK
    if hook is None and perf is None:
        return [fn(arg) for arg in args]
    items = list(args)
    if perf is not None:
        perf.on_map_begin(len(items))
        map_started = perf_seconds()
    values: List[Any] = []
    for index, arg in enumerate(items):
        if perf is not None:
            cache_before = get_cache().stats()
            started = perf_seconds()
            events_before = _events_total()
        if hook is None:
            values.append(fn(arg))
        else:
            with hook.capture() as box:
                values.append(fn(arg))
            hook.absorb(box.payload)
        if perf is not None:
            perf.record_task(
                index,
                {
                    "wall_s": perf_seconds() - started,
                    "queue_wait_s": 0.0,
                    "events": float(_events_total() - events_before),
                },
                stats_delta(cache_before, get_cache().stats()),
            )
    if perf is not None:
        perf.on_map_end(perf_seconds() - map_started)
    return values


class TaskScheduler:
    """Order-preserving map over independent work units.

    ``jobs=1`` executes inline (no pool, no pickling, ambient timers
    work directly).  ``jobs>1`` lazily creates a process pool that is
    reused across :meth:`map` calls until :meth:`shutdown` (or context
    exit).
    """

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self._jobs = jobs
        self._executor: Optional[ProcessPoolExecutor] = None

    @property
    def jobs(self) -> int:
        return self._jobs

    def __enter__(self) -> "TaskScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            self._executor = ProcessPoolExecutor(
                max_workers=self._jobs, mp_context=context
            )
        return self._executor

    def map(
        self, fn: Callable[[Any], Any], args: Sequence[Any]
    ) -> List[Any]:
        """Apply ``fn`` to every element of ``args``, preserving order."""
        items = list(args)
        if self._jobs == 1 or len(items) <= 1:
            return _map_inline(fn, items)

        perf = _PERF_HOOK
        if perf is not None:
            perf.on_map_begin(len(items))
            map_started = perf_seconds()
            submitted_at: Optional[float] = perf_seconds()
        else:
            submitted_at = None
        outcomes = self._pool().map(
            run_task, [(fn, arg, submitted_at) for arg in items]
        )
        registry = current_registry()
        prefix = registry.current_path() if registry is not None else ""
        cache = get_cache()
        hook = _TASK_LEDGER
        values: List[Any] = []
        # Consuming the map iterator lazily lets the perf hook observe
        # (and report progress on) completions as they stream back, in
        # task order.
        for index, outcome in enumerate(outcomes):
            (value, phase_totals, cache_delta, ledger_segment, task_perf,
             events_delta) = outcome
            if registry is not None and phase_totals:
                registry.merge_totals(phase_totals, prefix=prefix)
            if cache_delta:
                cache.absorb_stats(cache_delta)
            # Worker engines bumped *their* cumulative event counter;
            # fold the deltas back so the parent counter matches serial.
            _absorb_events(events_delta)
            if hook is not None and ledger_segment is not None:
                # Task order == serial order, so folding segments here
                # reproduces the serial ledger bit for bit.
                hook.absorb(ledger_segment)
            if perf is not None and task_perf is not None:
                perf.record_task(index, task_perf, cache_delta)
            values.append(value)
        if perf is not None:
            perf.on_map_end(perf_seconds() - map_started)
        return values

    def shutdown(self) -> None:
        """Tear down the pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None


_ACTIVE: ContextVar[Optional[TaskScheduler]] = ContextVar(
    "repro_runtime_scheduler", default=None
)


def active_scheduler() -> Optional[TaskScheduler]:
    """The scheduler :func:`map_tasks` currently routes through, if any."""
    return _ACTIVE.get()


@contextmanager
def use_scheduler(scheduler: TaskScheduler) -> Iterator[TaskScheduler]:
    """Make ``scheduler`` the ambient target of :func:`map_tasks`."""
    token = _ACTIVE.set(scheduler)
    try:
        yield scheduler
    finally:
        _ACTIVE.reset(token)


def map_tasks(fn: Callable[[Any], Any], args: Sequence[Any]) -> List[Any]:
    """Map through the ambient scheduler (inline when none is active)."""
    scheduler = _ACTIVE.get()
    if scheduler is None:
        return _map_inline(fn, list(args))
    return scheduler.map(fn, args)
