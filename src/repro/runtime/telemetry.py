"""Cross-worker performance telemetry for the task scheduler.

:class:`PerfCollector` is the parent-side aggregator behind the
scheduler's duck-typed perf hook (see
:func:`repro.runtime.scheduler.set_perf_hook`): for every work unit it
receives the worker-measured wall seconds (via the sanctioned
:func:`repro.obs.profiling.perf_seconds`), the queue wait between
submission and worker pickup, the unit's testbed-cache counter delta,
and the number of engine events it processed.  The collector reduces
those into a deterministic-keyed ``worker_*`` summary — utilization,
straggler ratio, aggregate events/s — that ``run_suite`` merges into
each figure's :class:`~repro.obs.manifest.RunManifest`.

:class:`ProgressReporter` is the opt-in heartbeat for long sweeps
(``repro experiment … --progress``): a throttled one-line status on
stderr with tasks done/total, ETA, and aggregate events/s.  It writes
only to a stream — never into results — so enabling it cannot perturb
determinism.

Neither class is imported by the scheduler (the hook is duck-typed) nor
by any simulation path: a run without ``--worker-perf``/``--progress``
never loads this module.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, TextIO

from repro.obs.profiling import perf_seconds
from repro.types import Seconds


@dataclass(frozen=True)
class TaskPerf:
    """One work unit's measured cost, as reported by its worker."""

    index: int
    wall_s: Seconds
    queue_wait_s: Seconds
    events: int
    cache_hits: int = 0
    cache_misses: int = 0
    cache_disk_hits: int = 0


class ProgressReporter:
    """Throttled heartbeat line for long task fans.

    Prints at most once per ``interval_s`` (plus always on the final
    task of a fan) so a million-unit sweep stays readable.  ``clock``
    is injectable for tests; production uses the sanctioned profiling
    clock.
    """

    def __init__(
        self,
        label: str = "",
        stream: Optional[TextIO] = None,
        interval_s: Seconds = 1.0,
    ) -> None:
        self.label = label
        self._stream = stream
        self._interval_s = interval_s
        self._started: Optional[float] = None
        self._last_emit = float("-inf")

    @property
    def stream(self) -> TextIO:
        # Resolved lazily so tests capturing sys.stderr see the output.
        return self._stream if self._stream is not None else sys.stderr

    def update(self, done: int, total: int, events: int) -> None:
        """Report progress after one more completed unit."""
        now = perf_seconds()
        if self._started is None:
            self._started = now
        final = done >= total
        if not final and now - self._last_emit < self._interval_s:
            return
        self._last_emit = now
        elapsed = max(now - self._started, 1e-9)
        eta = elapsed / done * (total - done) if done else float("inf")
        parts = [
            f"progress:{' ' + self.label if self.label else ''}",
            f"{done}/{total} units ({100.0 * done / max(total, 1):.0f}%)",
            f"elapsed {elapsed:.1f}s",
            f"eta {eta:.1f}s",
        ]
        if events > 0:
            parts.append(f"{events / elapsed / 1000.0:.1f}k events/s")
        print(" ".join(parts), file=self.stream)


class PerfCollector:
    """Aggregates per-task perf records into a ``worker_*`` summary.

    Implements the scheduler's perf-hook protocol (``on_map_begin`` /
    ``record_task`` / ``on_map_end``); one collector normally spans one
    figure, across however many ``map_tasks`` fans it issues.
    """

    def __init__(
        self,
        jobs: int = 1,
        label: str = "",
        progress: Optional[ProgressReporter] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.label = label
        self.progress = progress
        self._tasks: List[TaskPerf] = []
        self._span_s = 0.0
        self._total_announced = 0
        self._retries = 0
        self._timeouts = 0

    # -- the scheduler-facing hook protocol -----------------------------

    def on_map_begin(self, total: int) -> None:
        self._total_announced += total

    def record_retry(self, index: int, kind: str = "crash") -> None:
        """Charge one supervised-mode re-dispatch to this collector.

        ``kind`` is ``"crash"`` (worker died, ``BrokenProcessPool``) or
        ``"timeout"`` (per-task deadline expired); the two are summed
        separately into ``worker_retries``/``worker_timeouts``.  The
        task index is accepted for symmetry with ``record_task`` but
        retries are charged in aggregate — a retried attempt that later
        completes still reports its own ``record_task``.
        """
        del index
        if kind == "timeout":
            self._timeouts += 1
        else:
            self._retries += 1

    def record_task(
        self,
        index: int,
        perf: Dict[str, float],
        cache_delta: Optional[Dict[str, int]] = None,
    ) -> None:
        delta = cache_delta or {}
        task = TaskPerf(
            index=index,
            wall_s=float(perf.get("wall_s", 0.0)),
            queue_wait_s=float(perf.get("queue_wait_s", 0.0)),
            events=int(perf.get("events", 0)),
            cache_hits=int(delta.get("hits", 0)),
            cache_misses=int(delta.get("misses", 0)),
            cache_disk_hits=int(delta.get("disk_hits", 0)),
        )
        self._tasks.append(task)
        if self.progress is not None:
            self.progress.update(
                done=len(self._tasks),
                total=max(self._total_announced, len(self._tasks)),
                events=sum(t.events for t in self._tasks),
            )

    def on_map_end(self, elapsed_s: Seconds) -> None:
        self._span_s += elapsed_s

    # -- reduction ------------------------------------------------------

    @property
    def tasks(self) -> List[TaskPerf]:
        return list(self._tasks)

    def stragglers(self, wall_ratio: float = 4.0) -> List[int]:
        """Task indices whose attempt ran ``wall_ratio`` × the mean wall.

        The queue-wait stats already summarised in ``worker_queue_wait_*``
        say whether units *waited* unusually long; this names the units
        that *ran* unusually long — the candidates for a tighter
        ``task_timeout_s``.  Deterministic given the recorded perf data.
        """
        if wall_ratio <= 0:
            raise ValueError(f"wall_ratio must be > 0, got {wall_ratio}")
        tasks = self._tasks
        if not tasks:
            return []
        mean_s = sum(t.wall_s for t in tasks) / len(tasks)
        if mean_s <= 0:
            return []
        return sorted(
            t.index for t in tasks if t.wall_s >= wall_ratio * mean_s
        )

    def summary(self) -> Dict[str, float]:
        """The ``worker_*`` metrics merged into a figure's manifest.

        Keys are fixed and values are plain floats; worker-utilization
        is busy-time over ``jobs × span`` wall, the straggler ratio is
        the slowest unit over the mean unit (1.0 = perfectly even).
        """
        tasks = self._tasks
        count = len(tasks)
        busy_s = sum(t.wall_s for t in tasks)
        span_s = self._span_s
        events = sum(t.events for t in tasks)
        mean_s = busy_s / count if count else 0.0
        max_s = max((t.wall_s for t in tasks), default=0.0)
        summary = {
            "worker_jobs": float(self.jobs),
            "worker_tasks": float(count),
            "worker_busy_s": busy_s,
            "worker_span_s": span_s,
            "worker_task_mean_s": mean_s,
            "worker_task_max_s": max_s,
            "worker_straggler_ratio": (max_s / mean_s) if mean_s else 0.0,
            "worker_utilization": (
                busy_s / (self.jobs * span_s) if span_s else 0.0
            ),
            "worker_queue_wait_mean_s": (
                sum(t.queue_wait_s for t in tasks) / count if count else 0.0
            ),
            "worker_queue_wait_max_s": max(
                (t.queue_wait_s for t in tasks), default=0.0
            ),
            "worker_events": float(events),
            "worker_events_per_sec": (events / span_s) if span_s else 0.0,
            "worker_retries": float(self._retries),
            "worker_timeouts": float(self._timeouts),
            "worker_cache_hits": float(sum(t.cache_hits for t in tasks)),
            "worker_cache_misses": float(
                sum(t.cache_misses for t in tasks)
            ),
            "worker_cache_disk_hits": float(
                sum(t.cache_disk_hits for t in tasks)
            ),
        }
        return summary
