"""Content-keyed task journal: checkpoint/resume for experiment sweeps.

A figure sweep is a fan of pure work units, each a module-level callable
applied to a plain payload dict (see the ``_fig*_unit`` functions under
:mod:`repro.experiments`).  That purity is what makes the parallel
runtime bit-identical to serial — and it also makes every unit
*checkpointable*: the unit is fully described by its callable and
payload, so its result can be keyed by content exactly the way
:class:`~repro.runtime.cache.TestbedCache` keys built testbeds
(canonical serialisation, SHA-256).

:class:`TaskJournal` is that checkpoint store.  The scheduler (see
:func:`repro.runtime.scheduler.set_task_journal`) asks it before
dispatching each unit and records each completed unit after folding its
observability back.  On disk it is a JSONL file of completed units —
one ``O_APPEND`` write per line, same torn-line-tolerant discipline as
the run registry's ``index.jsonl`` — living under the registry root at
``journals/<sweep_id>.jsonl``.  A parent process SIGKILLed mid-sweep
therefore leaves a journal whose every line is a finished unit;
``repro experiment … --resume <sweep-id>`` reloads it, re-runs only the
missing units, and archives byte for byte what the uninterrupted run
would have.

Values round-trip through pickle (base64-wrapped inside the JSON line)
rather than JSON itself so tuples, numpy scalars, and dataclass results
come back exactly as the unit returned them.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Callable, Dict, List, Tuple, Union

from repro.errors import JournalError

PathLike = Union[str, Path]

#: Bump when the journal-line schema or key derivation changes shape.
JOURNAL_FORMAT_VERSION = 1


def _plain(value: Any) -> Any:
    """JSON fallback for numpy scalars living in work-unit payloads."""
    for attr in ("item", "tolist"):
        converter = getattr(value, attr, None)
        if callable(converter):
            return converter()
    raise TypeError(f"not JSON-serialisable: {type(value).__name__}")


def _canonical(payload: Any) -> str:
    """Canonical JSON of a payload — the hashed representation."""
    try:
        return json.dumps(payload, sort_keys=True, default=_plain)
    except (TypeError, ValueError) as exc:
        raise JournalError(
            f"work-unit payload is not content-keyable: {exc}"
        ) from exc


def callable_name(fn: Callable[..., Any]) -> str:
    """``module:qualname`` of a work-unit callable."""
    module = getattr(fn, "__module__", "?")
    name = getattr(fn, "__qualname__", getattr(fn, "__name__", "?"))
    return f"{module}:{name}"


def task_key(fn: Callable[[Any], Any], arg: Any) -> str:
    """Content key of one work unit: SHA-256 over callable + payload.

    Same derivation discipline as ``TestbedCache`` keys: a versioned,
    human-readable description string, hashed.  Keys depend only on the
    unit's content — not on task order, jobs level, or retry count — so
    a journal written at ``--jobs 4`` resumes a ``--jobs 2`` run.
    """
    blob = (
        f"task/v{JOURNAL_FORMAT_VERSION}/fn={callable_name(fn)}"
        f"/arg={_canonical(arg)}"
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def sweep_id_for(figure: str, kwargs: Dict[str, Any]) -> str:
    """Stable id of one figure sweep: figure name + its science kwargs.

    Runtime options (jobs, worker_perf, …) are deliberately excluded —
    they do not change the work units, so an interrupted ``--jobs 8``
    sweep can resume at any jobs level.
    """
    blob = _canonical({"figure": figure, "kwargs": kwargs})
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


class TaskJournal:
    """Append-only ledger of completed work units for one sweep.

    ``resume=False`` (the default when a sweep first runs) records
    completions without ever serving lookups, so a re-run with changed
    code or flags cannot silently reuse stale results; ``resume=True``
    (the ``--resume`` path) serves every recorded unit from the journal
    and only the remainder is dispatched.

    Loading tolerates a torn final line — the signature a crashed
    writer leaves — by skipping it; every fully-written line is a
    completed unit.
    """

    def __init__(self, path: PathLike, resume: bool = False) -> None:
        self._path = Path(path)
        self._resume = resume
        self._entries: Dict[str, Any] = {}
        self.hits = 0
        self.recorded = 0
        self.torn_lines = 0
        self._load()

    @property
    def path(self) -> Path:
        return self._path

    @property
    def resume(self) -> bool:
        return self._resume

    @property
    def completed(self) -> int:
        """Distinct completed units currently on record."""
        return len(self._entries)

    def _load(self) -> None:
        if not self._path.exists():
            return
        try:
            raw = self._path.read_bytes()
        except OSError as exc:
            raise JournalError(
                f"cannot read task journal {self._path}: {exc}"
            ) from exc
        for line in raw.decode("utf-8", errors="replace").splitlines():
            line = line.strip()
            if not line:
                continue
            entry = self._parse_line(line)
            if entry is None:
                self.torn_lines += 1
                continue
            key, value = entry
            self._entries[key] = value

    @staticmethod
    def _parse_line(line: str) -> "Union[Tuple[str, Any], None]":
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(payload, dict):
            return None
        key = payload.get("key")
        encoded = payload.get("value")
        if not isinstance(key, str) or not isinstance(encoded, str):
            return None
        try:
            value = pickle.loads(base64.b64decode(encoded.encode("ascii")))
        except (ValueError, EOFError, TypeError, AttributeError,
                pickle.UnpicklingError):
            # binascii.Error is a ValueError; AttributeError covers a
            # pickled class that no longer exists.
            return None
        return key, value

    def lookup(
        self, fn: Callable[[Any], Any], arg: Any
    ) -> Tuple[bool, Any]:
        """``(True, value)`` when this unit is on record and resuming.

        In record-only mode every lookup misses by design — the journal
        then documents the run without ever short-circuiting it.
        """
        if not self._resume:
            return False, None
        key = task_key(fn, arg)
        if key in self._entries:
            self.hits += 1
            return True, self._entries[key]
        return False, None

    def record(
        self, fn: Callable[[Any], Any], arg: Any, value: Any
    ) -> None:
        """Journal one completed unit (idempotent per content key).

        The line lands in a single ``O_APPEND`` write, so concurrent
        figure runs sharing a journal never interleave mid-line and a
        crash between units never tears an earlier entry.
        """
        key = task_key(fn, arg)
        if key in self._entries:
            return
        encoded = base64.b64encode(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
        line = json.dumps(
            {
                "v": JOURNAL_FORMAT_VERSION,
                "key": key,
                "fn": callable_name(fn),
                "value": encoded,
            },
            sort_keys=True,
        )
        self._path.parent.mkdir(parents=True, exist_ok=True)
        data = (line + "\n").encode("utf-8")
        fd = os.open(
            self._path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        self._entries[key] = value
        self.recorded += 1

    def keys(self) -> List[str]:
        """The content keys currently on record (sorted)."""
        return sorted(self._entries)
