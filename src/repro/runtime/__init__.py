"""Parallel experiment runtime: task scheduling plus testbed caching.

The suite's work units — one ``(figure, size, repetition, scheme)``
point each — are embarrassingly parallel and rebuild identical inputs.
This package supplies the two halves of the fix:

* :mod:`repro.runtime.scheduler` — an ambient, order-preserving
  process-pool mapper (``repro experiment all --jobs N``);
* :mod:`repro.runtime.cache` — a content-keyed LRU + on-disk cache for
  built networks/testbeds.

See ``docs/performance.md`` for the full story and the determinism
guarantees.
"""

from repro.runtime.cache import (
    CACHE_FORMAT_VERSION,
    TestbedCache,
    cached_network,
    configure_cache,
    get_cache,
    network_key,
    reset_cache,
    stats_delta,
    testbed_key,
)
from repro.runtime.scheduler import (
    TaskScheduler,
    active_scheduler,
    map_tasks,
    perf_hook,
    set_perf_hook,
    use_scheduler,
)

# repro.runtime.telemetry (PerfCollector/ProgressReporter) is NOT
# re-exported here on purpose: this package sits on the experiment hot
# path, and disabled telemetry must cost zero imports.  Callers that
# enable --worker-perf/--progress import it lazily.

__all__ = [
    "CACHE_FORMAT_VERSION",
    "TestbedCache",
    "TaskScheduler",
    "active_scheduler",
    "cached_network",
    "configure_cache",
    "get_cache",
    "map_tasks",
    "network_key",
    "perf_hook",
    "reset_cache",
    "set_perf_hook",
    "stats_delta",
    "testbed_key",
    "use_scheduler",
]
