"""Parallel experiment runtime: task scheduling plus testbed caching.

The suite's work units — one ``(figure, size, repetition, scheme)``
point each — are embarrassingly parallel and rebuild identical inputs.
This package supplies the two halves of the fix:

* :mod:`repro.runtime.scheduler` — an ambient, order-preserving
  process-pool mapper (``repro experiment all --jobs N``);
* :mod:`repro.runtime.cache` — a content-keyed LRU + on-disk cache for
  built networks/testbeds.

See ``docs/performance.md`` for the full story and the determinism
guarantees.
"""

from repro.runtime.cache import (
    CACHE_FORMAT_VERSION,
    TestbedCache,
    cached_network,
    configure_cache,
    get_cache,
    network_key,
    reset_cache,
    stats_delta,
    testbed_key,
)
from repro.runtime.scheduler import (
    TaskScheduler,
    active_scheduler,
    chaos_policy,
    map_tasks,
    perf_hook,
    set_chaos_policy,
    set_perf_hook,
    set_task_journal,
    task_journal,
    use_scheduler,
)

# repro.runtime.telemetry (PerfCollector/ProgressReporter),
# repro.runtime.journal (TaskJournal), and repro.runtime.chaos
# (ChaosPolicy) are NOT re-exported here on purpose: this package sits
# on the experiment hot path, and disabled telemetry/checkpointing/
# fault-injection must cost zero imports.  Callers that enable them
# import lazily; the scheduler talks to all three through duck-typed
# hook slots.

__all__ = [
    "CACHE_FORMAT_VERSION",
    "TestbedCache",
    "TaskScheduler",
    "active_scheduler",
    "cached_network",
    "chaos_policy",
    "configure_cache",
    "get_cache",
    "map_tasks",
    "network_key",
    "perf_hook",
    "reset_cache",
    "set_chaos_policy",
    "set_perf_hook",
    "set_task_journal",
    "stats_delta",
    "task_journal",
    "testbed_key",
    "use_scheduler",
]
