"""The :class:`Observer` — single gate between the engine and instruments.

The engine holds exactly one observer.  When no instrument is attached,
:attr:`Observer.active` is False and the engine's per-event fast path is
a single cached boolean check — the null object costs nothing, which is
what keeps default (uninstrumented) runs at seed speed.  When tracing
and/or sampling are enabled, the observer fans each engine callback out
to the attached :class:`~repro.obs.trace.TraceCollector` and
:class:`~repro.obs.sampler.MetricsSampler`, and collects freeform run
statistics (event-loop throughput) for the manifest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.obs.sampler import MetricsSampler
from repro.obs.trace import (
    KIND_CACHE_FAIL,
    KIND_CACHE_RECOVER,
    KIND_ORIGIN_UPDATE,
    KIND_PARTITION_END,
    KIND_PARTITION_START,
    KIND_REQUEST,
    TraceCollector,
    TraceRecord,
)

if TYPE_CHECKING:  # imported lazily: obs must not pull in the simulator
    from repro.simulator.latency import ServiceAccount


class Observer:
    """Bundles the optional per-run instruments behind one interface."""

    def __init__(
        self,
        trace: Optional[TraceCollector] = None,
        sampler: Optional[MetricsSampler] = None,
    ) -> None:
        self.trace = trace
        self.sampler = sampler
        #: freeform run statistics (events/sec, event counts, ...)
        self.run_stats: Dict[str, float] = {}

    @property
    def active(self) -> bool:
        """Whether any per-request instrument is attached."""
        return self.trace is not None or self.sampler is not None

    # -- engine callbacks -------------------------------------------------

    def on_request(
        self,
        now_ms: float,
        cache: int,
        doc_id: int,
        account: "ServiceAccount",
        messages: int,
        size_bytes: int,
        counted: bool,
        stale: bool,
    ) -> None:
        """One served request (called for warm-up requests too)."""
        if self.sampler is not None:
            self.sampler.observe_request(
                account.path.value, account.total_ms, counted
            )
        if self.trace is not None:
            self.trace.record(TraceRecord(
                kind=KIND_REQUEST,
                timestamp_ms=now_ms,
                cache=cache,
                doc_id=doc_id,
                path=account.path.value,
                total_ms=account.total_ms,
                query_ms=account.query_ms,
                fetch_ms=account.fetch_ms,
                transfer_ms=account.transfer_ms,
                messages=messages,
                size_bytes=size_bytes,
                counted=counted,
                stale=stale,
            ))

    def on_cache_fail(self, now_ms: float, cache: int) -> None:
        if self.trace is not None:
            self.trace.record(TraceRecord(
                kind=KIND_CACHE_FAIL, timestamp_ms=now_ms, cache=cache
            ))

    def on_cache_recover(self, now_ms: float, cache: int) -> None:
        if self.trace is not None:
            self.trace.record(TraceRecord(
                kind=KIND_CACHE_RECOVER, timestamp_ms=now_ms, cache=cache
            ))

    def on_partition_start(self, now_ms: float, nodes: tuple) -> None:
        if self.trace is not None:
            self.trace.record(TraceRecord(
                kind=KIND_PARTITION_START, timestamp_ms=now_ms,
                nodes=tuple(nodes),
            ))

    def on_partition_end(self, now_ms: float, nodes: tuple) -> None:
        if self.trace is not None:
            self.trace.record(TraceRecord(
                kind=KIND_PARTITION_END, timestamp_ms=now_ms,
                nodes=tuple(nodes),
            ))

    def on_origin_update(self, now_ms: float, doc_id: int) -> None:
        if self.trace is not None:
            self.trace.record(TraceRecord(
                kind=KIND_ORIGIN_UPDATE, timestamp_ms=now_ms, doc_id=doc_id
            ))

    def note_throughput(self, events: int, elapsed_s: float) -> None:
        """Record event-loop throughput for the run manifest."""
        self.run_stats["events"] = float(events)
        self.run_stats["elapsed_s"] = elapsed_s
        if elapsed_s > 0:
            self.run_stats["events_per_sec"] = events / elapsed_s


#: Shared do-nothing observer used when no instruments are requested.
NULL_OBSERVER = Observer()
