"""Per-request event tracing with a bounded ring-buffer option.

One :class:`TraceRecord` is produced per served request (plus records
for cache failures/recoveries and origin updates), carrying the full
latency decomposition from :class:`repro.simulator.latency.ServiceAccount`.
The collector either keeps everything (``capacity=None``) or acts as a
ring buffer of the most recent ``capacity`` records, so tracing a
10^5-request run stays O(capacity) in memory while ``dropped`` counts
what scrolled off.

Traces round-trip through JSONL (:meth:`TraceCollector.write_jsonl` /
:func:`read_jsonl`), and :func:`replay_hit_rates` re-derives the
network-wide hit-rate decomposition from a trace — by construction it
must match :meth:`repro.simulator.metrics.SimulationMetrics.hit_rates`
for the same run, which is the trace's correctness anchor.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Optional, Union

from repro.errors import SimulationError

PathLike = Union[str, Path]

#: record kinds a trace may contain
KIND_REQUEST = "request"
KIND_CACHE_FAIL = "cache_fail"
KIND_CACHE_RECOVER = "cache_recover"
KIND_ORIGIN_UPDATE = "origin_update"
KIND_PARTITION_START = "partition_start"
KIND_PARTITION_END = "partition_end"

_KNOWN_KINDS = frozenset(
    {
        KIND_REQUEST,
        KIND_CACHE_FAIL,
        KIND_CACHE_RECOVER,
        KIND_ORIGIN_UPDATE,
        KIND_PARTITION_START,
        KIND_PARTITION_END,
    }
)


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace event.

    Request records fill every field; fail/recover records carry only
    ``cache``; origin-update records carry only ``doc_id``.
    """

    kind: str
    timestamp_ms: float
    cache: Optional[int] = None
    doc_id: Optional[int] = None
    #: :class:`ServicePath` value for requests ("local_hit" etc.)
    path: Optional[str] = None
    total_ms: Optional[float] = None
    query_ms: Optional[float] = None
    fetch_ms: Optional[float] = None
    transfer_ms: Optional[float] = None
    messages: Optional[int] = None
    size_bytes: Optional[int] = None
    #: False for warm-up requests (excluded from aggregate metrics)
    counted: Optional[bool] = None
    #: served from a copy older than the origin's version
    stale: Optional[bool] = None
    #: node set of a partition_start/partition_end record
    nodes: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.kind not in _KNOWN_KINDS:
            raise SimulationError(f"unknown trace record kind {self.kind!r}")
        if self.nodes is not None and not isinstance(self.nodes, tuple):
            # JSON round-trips the node set as a list; normalise so
            # replayed records compare equal to originals.
            object.__setattr__(self, "nodes", tuple(self.nodes))

    def to_dict(self) -> Dict:
        """JSON-ready dict with None fields dropped."""
        return {k: v for k, v in asdict(self).items() if v is not None}

    @classmethod
    def from_dict(cls, payload: Dict) -> "TraceRecord":
        try:
            return cls(**payload)
        except TypeError as exc:
            raise SimulationError(
                f"malformed trace record {payload!r}: {exc}"
            ) from exc


class TraceCollector:
    """Collects trace records, optionally as a fixed-capacity ring.

    ``capacity=None`` keeps every record; an integer capacity keeps the
    most recent ``capacity`` records and counts evictions in
    :attr:`dropped`.  :attr:`peak_size` reports the largest number of
    records held at any point (== capacity once the ring wraps).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(
                f"trace capacity must be >= 1 or None, got {capacity}"
            )
        self._capacity = capacity
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._dropped = 0
        self._total = 0

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    @property
    def dropped(self) -> int:
        """Records evicted by the ring buffer."""
        return self._dropped

    @property
    def total_recorded(self) -> int:
        """Every record ever offered, including dropped ones."""
        return self._total

    @property
    def peak_size(self) -> int:
        """Largest number of records held at once."""
        return min(self._total, self._capacity or self._total)

    def __len__(self) -> int:
        return len(self._records)

    def record(self, record: TraceRecord) -> None:
        """Append one record, evicting the oldest at capacity."""
        if (self._capacity is not None
                and len(self._records) == self._capacity):
            self._dropped += 1
        self._records.append(record)
        self._total += 1

    def record_many(self, records: List[TraceRecord]) -> None:
        """Append a batch of records in order (the batched-loop path).

        One ``extend`` instead of per-record calls; ring-buffer
        eviction accounting matches what ``len(records)`` individual
        :meth:`record` calls would have produced.
        """
        if self._capacity is not None:
            evicted = (
                len(self._records) + len(records) - self._capacity
            )
            if evicted > 0:
                self._dropped += evicted
        self._records.extend(records)
        self._total += len(records)

    def records(self) -> List[TraceRecord]:
        """The held records, oldest first."""
        return list(self._records)

    def write_jsonl(self, path: PathLike) -> int:
        """Write the held records as JSONL; returns the record count."""
        count = 0
        with open(path, "w", encoding="utf-8") as f:
            for record in self._records:
                json.dump(record.to_dict(), f, sort_keys=True)
                f.write("\n")
                count += 1
        return count


def read_jsonl(path: PathLike) -> List[TraceRecord]:
    """Read a JSONL trace written by :meth:`TraceCollector.write_jsonl`."""
    records: List[TraceRecord] = []
    with open(path, "r", encoding="utf-8") as f:
        for line_number, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SimulationError(
                    f"{path}:{line_number} is not valid JSON: {exc}"
                ) from exc
            records.append(TraceRecord.from_dict(payload))
    return records


def replay_hit_rates(records: Iterable[TraceRecord]) -> Dict[str, float]:
    """Re-derive the local/group/origin shares from a trace.

    Counts only counted (post-warm-up) request records, exactly like
    :meth:`SimulationMetrics.hit_rates`; raises if the trace holds none.
    """
    shares = {"local_hit": 0, "group_hit": 0, "origin_fetch": 0}
    for record in records:
        if record.kind != KIND_REQUEST or not record.counted:
            continue
        if record.path not in shares:
            raise SimulationError(
                f"trace request record has unknown path {record.path!r}"
            )
        shares[record.path] += 1
    total = sum(shares.values())
    if total == 0:
        raise SimulationError("trace has no counted request records")
    return {
        "local": shares["local_hit"] / total,
        "group": shares["group_hit"] / total,
        "origin": shares["origin_fetch"] / total,
    }
