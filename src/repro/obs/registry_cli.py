"""The ``repro runs`` subcommands over the run registry.

::

    repro runs list    [--registry DIR] [--kind K] [--label SUBSTR]
    repro runs show    RUN [--registry DIR] [--format json]
    repro runs compare RUN_A RUN_B [--registry DIR] [--format json]
    repro runs gc      --keep N [--registry DIR]

``RUN`` references are run-id prefixes (≥ 4 hex chars) or negative
ordinals — ``-1`` is the newest run, ``-2`` the one before — so the
canonical "did anything move?" check after two runs is simply::

    repro runs compare -2 -1

The registry root comes from ``--registry`` or the ``REPRO_REGISTRY``
environment variable.  Exit codes: ``0`` success, ``1`` a compared
metric differs beyond ``--tolerance`` (compare only), ``2`` usage
error (no registry, unresolvable reference, corrupt index).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, TextIO

from repro.errors import RegistryError
from repro.obs.registry import RunDiff, RunRegistry, resolve_registry
from repro.utils.tables import Table


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``runs`` subcommands to a (sub)parser."""
    sub = parser.add_subparsers(dest="runs_command", required=True)

    def add_registry_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--registry", metavar="DIR",
            help="registry root (default: $REPRO_REGISTRY)",
        )

    lst = sub.add_parser("list", help="list archived runs, oldest first")
    add_registry_arg(lst)
    lst.add_argument("--kind", help="only runs of this kind")
    lst.add_argument("--label", help="only labels containing this substring")
    lst.add_argument("--limit", type=int, metavar="N",
                     help="show only the newest N matching runs")
    lst.add_argument("--format", choices=["text", "json"], default="text",
                     dest="output_format")

    show = sub.add_parser("show", help="pretty-print one archived run")
    add_registry_arg(show)
    show.add_argument("run", help="run-id prefix or negative ordinal (-1)")
    show.add_argument("--format", choices=["text", "json"], default="text",
                      dest="output_format")

    cmp_ = sub.add_parser(
        "compare",
        help="diff two archived runs' metrics/counters/timings/config",
    )
    add_registry_arg(cmp_)
    cmp_.add_argument("run_a", help="baseline run (prefix or ordinal)")
    cmp_.add_argument("run_b", help="candidate run (prefix or ordinal)")
    cmp_.add_argument("--format", choices=["text", "json"], default="text",
                      dest="output_format")
    cmp_.add_argument(
        "--tolerance", type=float, default=0.0, metavar="F",
        help="exit 1 when any metric moves by more than this relative "
             "fraction (default 0: exit 1 on any numeric change)",
    )

    gc = sub.add_parser(
        "gc", help="keep the newest N runs, drop older records + archives"
    )
    add_registry_arg(gc)
    gc.add_argument("--keep", type=int, required=True, metavar="N")


def _require_registry(
    args: argparse.Namespace, err: TextIO
) -> Optional[RunRegistry]:
    registry = resolve_registry(getattr(args, "registry", None))
    if registry is None:
        print(
            "error: no registry given (pass --registry DIR or set "
            "REPRO_REGISTRY)", file=err,
        )
    return registry


def _list(args: argparse.Namespace, registry: RunRegistry,
          out: TextIO) -> int:
    records = registry.records()
    if args.kind:
        records = [r for r in records if r.kind == args.kind]
    if args.label:
        records = [r for r in records if args.label in r.label]
    if args.limit is not None and args.limit >= 0:
        records = records[len(records) - args.limit:]
    if args.output_format == "json":
        payload = [
            {
                "run_id": r.run_id,
                "kind": r.kind,
                "label": r.label,
                "created_unix": r.created_unix,
                "seed": r.seed,
                "summary": r.summary,
            }
            for r in records
        ]
        out.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return 0
    if not records:
        print("registry holds no matching runs", file=out)
        return 0
    table = Table(["run_id", "kind", "label", "seed", "headline"])
    for record in records:
        headline = ""
        preferred = ("events_per_sec", "avg_latency_ms", "requests",
                     "worker_events_per_sec", "worker_utilization",
                     "testbed_cache_hits", "draws")
        present = [key for key in preferred if key in record.summary]
        # Prefer the first metric that actually measured something.
        for key in [*[k for k in present if record.summary[k]], *present]:
            headline = f"{key}={record.summary[key]:.6g}"
            break
        table.add_row([
            record.run_id, record.kind, record.label,
            "-" if record.seed is None else record.seed, headline,
        ])
    print(table.render(), file=out)
    print(f"{len(records)} run(s) at {registry.root}", file=out)
    return 0


def _show(args: argparse.Namespace, registry: RunRegistry,
          out: TextIO) -> int:
    record, manifest = registry.load_manifest(args.run)
    if args.output_format == "json":
        from repro.persist.results import manifest_payload

        payload = manifest_payload(manifest)
        payload["run_id"] = record.run_id
        payload["registry_kind"] = record.kind
        out.write(json.dumps(payload, indent=2, sort_keys=True,
                             default=_json_plain) + "\n")
        return 0
    from repro.cli import render_manifest_text

    print(f"run {record.run_id} ({record.kind})", file=out)
    print(render_manifest_text(manifest), file=out)
    return 0


def _json_plain(value: object) -> object:
    for attr in ("item", "tolist"):
        converter = getattr(value, attr, None)
        if callable(converter):
            return converter()
    raise TypeError(f"not JSON-serialisable: {type(value).__name__}")


def render_diff_text(diff: RunDiff) -> str:
    """Human-readable run diff (changed metrics + config changes)."""
    lines = [
        f"comparing {diff.record_a.run_id} ({diff.record_a.label}) -> "
        f"{diff.record_b.run_id} ({diff.record_b.label})"
    ]
    changed = diff.changed_metrics()
    if changed:
        table = Table(["metric", "a", "b", "delta", "rel"])
        for metric in changed:
            rel = metric.relative
            table.add_row([
                metric.name,
                "-" if metric.value_a is None else f"{metric.value_a:.6g}",
                "-" if metric.value_b is None else f"{metric.value_b:.6g}",
                "-" if metric.delta is None else f"{metric.delta:+.6g}",
                "-" if rel is None else f"{100.0 * rel:+.2f}%",
            ])
        lines.append(table.render())
    else:
        lines.append("metrics: identical")
    if diff.config_changes:
        lines.append("config changes:")
        for key, left, right in diff.config_changes:
            lines.append(f"  {key}: {left!r} -> {right!r}")
    else:
        lines.append("config: identical")
    return "\n".join(lines)


def render_diff_json(diff: RunDiff) -> str:
    """Machine-readable run diff."""
    payload = {
        "run_a": diff.record_a.run_id,
        "run_b": diff.record_b.run_id,
        "label_a": diff.record_a.label,
        "label_b": diff.record_b.label,
        "metrics": [
            {
                "name": m.name,
                "a": m.value_a,
                "b": m.value_b,
                "delta": m.delta,
                "relative": m.relative,
            }
            for m in (*diff.totals, *diff.run_stats)
        ],
        "phase_timings": [
            {"name": m.name, "a": m.value_a, "b": m.value_b}
            for m in diff.phase_timings
        ],
        "config_changes": [
            {"key": key, "a": left, "b": right}
            for key, left, right in diff.config_changes
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _compare(args: argparse.Namespace, registry: RunRegistry,
             out: TextIO) -> int:
    diff = registry.compare(args.run_a, args.run_b)
    if args.output_format == "json":
        out.write(render_diff_json(diff))
    else:
        print(render_diff_text(diff), file=out)
    for metric in diff.changed_metrics():
        rel = metric.relative
        if rel is None or abs(rel) > args.tolerance:
            return 1
    return 0


def _gc(args: argparse.Namespace, registry: RunRegistry, out: TextIO) -> int:
    result = registry.gc(keep_last=args.keep)
    print(
        f"kept {result.kept_records} run(s), dropped "
        f"{result.dropped_records} record(s), deleted "
        f"{result.deleted_manifests} archived manifest(s)",
        file=out,
    )
    return 0


def run_runs(
    args: argparse.Namespace,
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """Execute ``repro runs`` for parsed ``args``; returns exit code."""
    out: TextIO = stdout if stdout is not None else sys.stdout
    err: TextIO = stderr if stderr is not None else sys.stderr
    registry = _require_registry(args, err)
    if registry is None:
        return 2
    handlers = {
        "list": _list,
        "show": _show,
        "compare": _compare,
        "gc": _gc,
    }
    try:
        return handlers[args.runs_command](args, registry, out)
    except RegistryError as exc:
        print(f"error: {exc}", file=err)
        return 2
