"""Per-run manifests: what ran, how long each phase took, what came out.

A :class:`RunManifest` is the machine-readable record a run leaves
behind next to its outputs: the configuration and seed, the package
version, per-phase GF-Coordinator/simulator timings, event-loop
throughput, trace bookkeeping (record counts, ring-buffer drops, peak
size), headline aggregates, and (optionally) the full sampled time
series.  ``repro.persist.results`` owns the on-disk JSON format;
``repro report`` pretty-prints one back.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import ReproError
from repro.types import UnixSeconds
from repro.obs.observer import Observer
from repro.obs.profiling import PhaseRegistry
from repro.obs.sampler import TimeSeries


def _package_version() -> str:
    # Resolved lazily so importing repro.obs never races the package's
    # own __init__ (which does not re-export obs for the same reason).
    from repro import __version__

    return __version__


@dataclass
class RunManifest:
    """Everything needed to identify, profile, and compare one run."""

    label: str
    version: str = field(default_factory=_package_version)
    # Run metadata, not simulation input: the creation stamp never
    # feeds back into simulated behaviour.
    created_unix: UnixSeconds = field(default_factory=time.time)  # repro-lint: allow[sim-wallclock]
    seed: Optional[int] = None
    config: Dict[str, Any] = field(default_factory=dict)
    #: qualified phase name -> total seconds
    phase_timings_s: Dict[str, float] = field(default_factory=dict)
    #: event-loop throughput etc. (``events``, ``events_per_sec``, ...)
    run_stats: Dict[str, float] = field(default_factory=dict)
    #: headline aggregates (requests, hit rates, latency percentiles)
    totals: Dict[str, float] = field(default_factory=dict)
    #: trace bookkeeping (records, dropped, peak_size, path)
    trace_info: Dict[str, Any] = field(default_factory=dict)
    timeseries: Optional[TimeSeries] = None

    def to_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["timeseries"] = (
            self.timeseries.to_dict() if self.timeseries is not None else None
        )
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunManifest":
        data = dict(payload)
        series = data.pop("timeseries", None)
        try:
            manifest = cls(**data)
        except TypeError as exc:
            raise ReproError(f"malformed manifest payload: {exc}") from exc
        if series is not None:
            manifest.timeseries = TimeSeries.from_dict(series)
        return manifest


def merge_sparse_stats(
    manifest: RunManifest, stats: Dict[str, float]
) -> None:
    """Merge run-stat counters into ``manifest``, omitting zeros.

    Fault-tolerance counters (``worker_retries``, ``journal_hits``, …)
    follow the fault-layer convention: they appear in a manifest only
    when the mechanism actually fired, so an undisturbed run's manifest
    stays byte-identical to one from before the mechanism existed.
    """
    for key, value in stats.items():
        number = float(value)
        if number != 0.0:
            manifest.run_stats[key] = number


def config_to_dict(config: Any) -> Dict[str, Any]:
    """Flatten a (possibly nested) config dataclass into plain JSON types."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return {
            f.name: config_to_dict(getattr(config, f.name))
            for f in dataclasses.fields(config)
        }
    return config


def build_manifest(
    label: str,
    seed: Optional[int] = None,
    config: Any = None,
    registry: Optional[PhaseRegistry] = None,
    observer: Optional[Observer] = None,
    totals: Optional[Dict[str, float]] = None,
    trace_path: Optional[str] = None,
) -> RunManifest:
    """Assemble a manifest from the run's observability artefacts.

    ``registry`` supplies phase timings, ``observer`` supplies run
    stats, trace bookkeeping, and the sampled time series; every part is
    optional so partially-instrumented runs still get a manifest.
    """
    manifest = RunManifest(label=label, seed=seed)
    if config is not None:
        flattened = config_to_dict(config)
        if not isinstance(flattened, dict):
            raise ReproError(
                f"manifest config must be a dataclass or mapping, "
                f"got {type(config).__name__}"
            )
        manifest.config = flattened
    if registry is not None:
        manifest.phase_timings_s = registry.total_seconds()
    if totals is not None:
        manifest.totals = dict(totals)
    if observer is not None:
        manifest.run_stats = dict(observer.run_stats)
        if observer.trace is not None:
            manifest.trace_info = {
                "records": len(observer.trace),
                "total_recorded": observer.trace.total_recorded,
                "dropped": observer.trace.dropped,
                "peak_size": observer.trace.peak_size,
                "capacity": observer.trace.capacity,
            }
            if trace_path is not None:
                manifest.trace_info["path"] = str(trace_path)
        if observer.sampler is not None:
            manifest.timeseries = observer.sampler.series()
    return manifest
