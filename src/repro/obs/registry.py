"""Run registry: an append-only, content-addressed store of run records.

A simulation *campaign* — not a single run — is the unit of measurement
once sweeps span thousands of figure points: you want to ask "what did
yesterday's jobs=8 run of fig6 measure?", "did the fault sweep's hit
rate move between these two commits?", without grepping ad-hoc output
directories.  The registry answers those questions with two on-disk
pieces under one root:

* ``index.jsonl`` — one compact JSON line per run (run id, kind, label,
  creation stamp, seed, headline totals/run-stats).  Lines are appended
  with a single ``write`` in ``O_APPEND`` mode and are kept well under
  ``PIPE_BUF``, so concurrent appends from parallel figure runs never
  interleave mid-line;
* ``manifests/<run_id>.json`` — the archived full
  :class:`~repro.obs.manifest.RunManifest` (same JSON format
  ``repro report`` reads), written atomically via temp-file + rename.

A third directory, ``journals/``, holds per-sweep task journals —
the checkpoint files behind ``repro experiment --resume`` (see
:mod:`repro.runtime.journal`); they are written by the runtime layer
and merely *housed* here so one root captures a campaign's full state.

Run ids are *content addresses*: the SHA-256 of the canonical manifest
JSON, truncated to 12 hex chars.  Re-appending a byte-identical
manifest re-uses the archived file and is reported as a duplicate, so
the store only ever grows by distinct runs.

``experiment``, ``simulate``, and ``sanitize run`` append automatically
when ``--registry DIR`` (or the ``REPRO_REGISTRY`` environment default)
is set; ``repro runs list|show|compare|gc`` queries the history.  This
module is never imported by the simulator/experiment hot paths — only
by the CLI layer when a registry is actually requested — so disabled
runs pay nothing.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import RegistryError
from repro.obs.manifest import RunManifest

PathLike = Union[str, Path]


class RegistryWarning(UserWarning):
    """A registry read skipped recoverable damage (e.g. a torn line)."""

#: Bump when the index-line schema changes shape incompatibly.
REGISTRY_FORMAT_VERSION = 1

#: Hex chars of the SHA-256 content address kept as the run id.
RUN_ID_LEN = 12

#: Index lines are truncated (summary first) to stay under this, which
#: keeps each append a single atomic ``write`` on POSIX (< PIPE_BUF).
_MAX_LINE_BYTES = 3500

_INDEX_NAME = "index.jsonl"
_MANIFEST_DIR = "manifests"
_JOURNAL_DIR = "journals"


def canonical_manifest_json(manifest: RunManifest) -> str:
    """The canonical JSON serialisation run ids are hashed over."""
    return json.dumps(manifest.to_dict(), sort_keys=True, default=_plain)


def _plain(value: Any) -> Any:
    """JSON fallback for numpy scalars living in manifest payloads."""
    for attr in ("item", "tolist"):
        converter = getattr(value, attr, None)
        if callable(converter):
            return converter()
    raise TypeError(f"not JSON-serialisable: {type(value).__name__}")


def manifest_run_id(manifest: RunManifest) -> str:
    """Content address of a manifest: SHA-256 of its canonical JSON."""
    blob = canonical_manifest_json(manifest).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:RUN_ID_LEN]


@dataclass(frozen=True)
class RunRecord:
    """One compact index entry (the JSONL line, parsed)."""

    run_id: str
    kind: str
    label: str
    created_unix: float
    seed: Optional[int] = None
    summary: Dict[str, float] = field(default_factory=dict)

    def to_line(self) -> str:
        """Serialise as one index line (no trailing newline)."""
        payload: Dict[str, Any] = {
            "v": REGISTRY_FORMAT_VERSION,
            "run_id": self.run_id,
            "kind": self.kind,
            "label": self.label,
            "created_unix": self.created_unix,
            "seed": self.seed,
            "summary": {k: self.summary[k] for k in sorted(self.summary)},
        }
        line = json.dumps(payload, sort_keys=True)
        if len(line.encode("utf-8")) > _MAX_LINE_BYTES:
            payload["summary"] = {}
            line = json.dumps(payload, sort_keys=True)
        return line

    @classmethod
    def from_line(cls, line: str) -> "RunRecord":
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise RegistryError(
                f"corrupt registry index line: {line[:80]!r}"
            ) from exc
        if not isinstance(payload, dict) or "run_id" not in payload:
            raise RegistryError(
                f"malformed registry index line: {line[:80]!r}"
            )
        seed = payload.get("seed")
        return cls(
            run_id=str(payload["run_id"]),
            kind=str(payload.get("kind", "run")),
            label=str(payload.get("label", "")),
            created_unix=float(payload.get("created_unix", 0.0)),
            seed=int(seed) if seed is not None else None,
            summary={
                str(k): float(v)
                for k, v in (payload.get("summary") or {}).items()
            },
        )


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric between two runs."""

    name: str
    value_a: Optional[float]
    value_b: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        if self.value_a is None or self.value_b is None:
            return None
        return self.value_b - self.value_a

    @property
    def relative(self) -> Optional[float]:
        """(b - a) / |a|, or None when undefined."""
        if self.value_a is None or self.value_b is None:
            return None
        if self.value_a == 0.0:
            return None
        return (self.value_b - self.value_a) / abs(self.value_a)


@dataclass(frozen=True)
class RunDiff:
    """Structured comparison of two archived runs."""

    record_a: RunRecord
    record_b: RunRecord
    totals: Tuple[MetricDelta, ...]
    run_stats: Tuple[MetricDelta, ...]
    phase_timings: Tuple[MetricDelta, ...]
    config_changes: Tuple[Tuple[str, Any, Any], ...]

    def changed_metrics(self) -> List[MetricDelta]:
        """Every totals/run-stats metric whose value differs."""
        return [
            m for m in (*self.totals, *self.run_stats)
            if m.value_a != m.value_b
        ]


def _diff_numeric(
    a: Dict[str, float], b: Dict[str, float]
) -> Tuple[MetricDelta, ...]:
    names = sorted(set(a) | set(b))
    return tuple(
        MetricDelta(name=n, value_a=a.get(n), value_b=b.get(n))
        for n in names
    )


def diff_manifests(
    record_a: RunRecord,
    manifest_a: RunManifest,
    record_b: RunRecord,
    manifest_b: RunManifest,
) -> RunDiff:
    """Compare two runs' metrics, counters, timings, and configs."""
    config_changes = []
    for key in sorted(set(manifest_a.config) | set(manifest_b.config)):
        left = manifest_a.config.get(key)
        right = manifest_b.config.get(key)
        if left != right:
            config_changes.append((key, left, right))
    return RunDiff(
        record_a=record_a,
        record_b=record_b,
        totals=_diff_numeric(manifest_a.totals, manifest_b.totals),
        run_stats=_diff_numeric(manifest_a.run_stats, manifest_b.run_stats),
        phase_timings=_diff_numeric(
            manifest_a.phase_timings_s, manifest_b.phase_timings_s
        ),
        config_changes=tuple(config_changes),
    )


@dataclass(frozen=True)
class AppendResult:
    """Outcome of one :meth:`RunRegistry.append`."""

    record: RunRecord
    manifest_path: Path
    duplicate: bool


@dataclass(frozen=True)
class GcResult:
    """Outcome of one :meth:`RunRegistry.gc`."""

    kept_records: int
    dropped_records: int
    deleted_manifests: int


#: Headline totals surfaced in the compact index summary, in priority
#: order (the line is truncated summary-first if it ever grows large).
_SUMMARY_KEYS = (
    "requests",
    "avg_latency_ms",
    "hit_rate_local",
    "hit_rate_group",
    "events_per_sec",
    "events",
    "worker_utilization",
    "worker_events_per_sec",
    "testbed_cache_hits",
    "testbed_cache_misses",
    "draws",
)


def _summarise(manifest: RunManifest) -> Dict[str, float]:
    merged = {**manifest.run_stats, **manifest.totals}
    return {key: float(merged[key]) for key in _SUMMARY_KEYS if key in merged}


class RunRegistry:
    """Append-only run history rooted at one directory."""

    def __init__(self, root: PathLike) -> None:
        self._root = Path(root)

    @property
    def root(self) -> Path:
        return self._root

    @property
    def index_path(self) -> Path:
        return self._root / _INDEX_NAME

    @property
    def manifest_dir(self) -> Path:
        return self._root / _MANIFEST_DIR

    def manifest_path(self, run_id: str) -> Path:
        return self.manifest_dir / f"{run_id}.json"

    @property
    def journal_dir(self) -> Path:
        """Where sweep task journals live (see repro.runtime.journal)."""
        return self._root / _JOURNAL_DIR

    def journal_path(self, sweep_id: str) -> Path:
        """The task-journal file for one sweep id."""
        return self.journal_dir / f"{sweep_id}.jsonl"

    # -- writing --------------------------------------------------------

    def append(self, manifest: RunManifest, kind: str = "run") -> AppendResult:
        """Archive ``manifest`` and append its index entry.

        Safe to call concurrently from multiple processes: the manifest
        archive is written atomically (temp + rename) and the index line
        lands in one ``O_APPEND`` write.  A byte-identical manifest is
        detected by its content address and reported as a duplicate
        without growing the store.
        """
        self.manifest_dir.mkdir(parents=True, exist_ok=True)
        run_id = manifest_run_id(manifest)
        path = self.manifest_path(run_id)
        duplicate = path.exists()
        if not duplicate:
            self._write_manifest(path, manifest)
        record = RunRecord(
            run_id=run_id,
            kind=kind,
            label=manifest.label,
            created_unix=manifest.created_unix,
            seed=manifest.seed,
            summary=_summarise(manifest),
        )
        if not duplicate:
            self._append_line(record.to_line())
        return AppendResult(
            record=record, manifest_path=path, duplicate=duplicate
        )

    def _write_manifest(self, path: Path, manifest: RunManifest) -> None:
        # Same payload shape repro.persist.save_manifest writes, so
        # `repro report` and load_manifest read archived runs directly.
        from repro.persist.results import manifest_payload

        blob = json.dumps(
            manifest_payload(manifest), indent=2, sort_keys=True,
            default=_plain,
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.manifest_dir), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(blob + "\n")
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _append_line(self, line: str) -> None:
        data = (line + "\n").encode("utf-8")
        fd = os.open(
            self.index_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, data)
        finally:
            os.close(fd)

    # -- reading --------------------------------------------------------

    def records(self) -> List[RunRecord]:
        """Every readable index entry, in append (chronological) order.

        A writer killed mid-append leaves a torn (truncated) final
        line; a registry query must not be held hostage by it.  Any
        unparseable line is skipped with a :class:`RegistryWarning`
        naming its position — every intact record stays reachable.
        """
        if not self.index_path.exists():
            return []
        records = []
        with open(self.index_path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(RunRecord.from_line(line))
                except RegistryError as exc:
                    warnings.warn(
                        f"skipping unreadable line {number} of "
                        f"{self.index_path} ({exc}); likely a torn "
                        f"append from an interrupted writer",
                        RegistryWarning,
                        stacklevel=2,
                    )
        return records

    def find(self, ref: str) -> RunRecord:
        """Resolve a run reference to a record.

        ``ref`` is a run-id prefix (≥ 4 chars) or a negative ordinal:
        ``-1`` is the most recently appended run, ``-2`` the one before.
        """
        records = self.records()
        if not records:
            raise RegistryError(f"registry at {self._root} holds no runs")
        if ref.lstrip("-").isdigit() and ref.startswith("-"):
            ordinal = int(ref)
            if -len(records) <= ordinal <= -1:
                return records[ordinal]
            raise RegistryError(
                f"run ordinal {ref} out of range "
                f"(registry holds {len(records)} runs)"
            )
        if len(ref) < 4:
            raise RegistryError(
                f"run reference {ref!r} too short (need >= 4 hex chars "
                f"or a negative ordinal like -1)"
            )
        matches = [r for r in records if r.run_id.startswith(ref)]
        # A re-appended run id can legitimately repeat; they are the
        # same content, so any match resolves identically.
        unique_ids = {r.run_id for r in matches}
        if not matches:
            raise RegistryError(f"no run matches {ref!r}")
        if len(unique_ids) > 1:
            listed = ", ".join(sorted(unique_ids))
            raise RegistryError(f"run reference {ref!r} is ambiguous: {listed}")
        return matches[-1]

    def load_manifest(self, ref: str) -> Tuple[RunRecord, RunManifest]:
        """Load the archived manifest behind a run reference."""
        from repro.persist import load_manifest

        record = self.find(ref)
        path = self.manifest_path(record.run_id)
        if not path.exists():
            raise RegistryError(
                f"run {record.run_id} is indexed but its manifest is "
                f"missing ({path}); was it gc'd by hand?"
            )
        return record, load_manifest(path)

    def compare(self, ref_a: str, ref_b: str) -> RunDiff:
        """Diff two archived runs' metrics/counters/timings/config."""
        record_a, manifest_a = self.load_manifest(ref_a)
        record_b, manifest_b = self.load_manifest(ref_b)
        return diff_manifests(record_a, manifest_a, record_b, manifest_b)

    # -- maintenance ----------------------------------------------------

    def gc(self, keep_last: int) -> GcResult:
        """Keep the newest ``keep_last`` runs; drop the rest.

        Rewrites the index atomically and deletes archived manifests no
        longer referenced.  Not safe to run concurrently with writers.
        """
        if keep_last < 0:
            raise ValueError(f"keep_last must be >= 0, got {keep_last}")
        records = self.records()
        kept = records[len(records) - keep_last:] if keep_last else []
        dropped = len(records) - len(kept)

        self._root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(self._root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for record in kept:
                    handle.write(record.to_line() + "\n")
            os.replace(tmp_name, self.index_path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

        keep_ids = {record.run_id for record in kept}
        deleted = 0
        if self.manifest_dir.exists():
            for path in sorted(self.manifest_dir.glob("*.json")):
                if path.stem not in keep_ids:
                    path.unlink()
                    deleted += 1
        return GcResult(
            kept_records=len(kept),
            dropped_records=dropped,
            deleted_manifests=deleted,
        )


def resolve_registry(
    root: Optional[PathLike], env: Optional[str] = None
) -> Optional[RunRegistry]:
    """The registry for an explicit root, the env default, or None.

    ``env`` injects the environment lookup for tests; the production
    default is the ``REPRO_REGISTRY`` variable.
    """
    if root is None:
        root = env if env is not None else os.environ.get("REPRO_REGISTRY")
    if not root:
        return None
    return RunRegistry(root)
