"""Sampled time-series metrics driven by simulated time.

The :class:`MetricsSampler` accumulates per-window counters as the
engine serves requests and flushes one :class:`Sample` every
``interval_ms`` of *simulated* time (ticks are aligned to multiples of
the interval, so two runs with the same workload sample at identical
instants).  Each sample carries the windowed hit-rate decomposition,
per-path request rates, window latency mean/p95 (via
:class:`repro.utils.stats.FixedBinHistogram`), origin load (arrival rate
and, when origin queueing is enabled, the
:class:`~repro.simulator.origin_load.OriginLoadTracker` utilisation),
and mean cache occupancy.

:meth:`MetricsSampler.series` exposes the collected samples as a
:class:`TimeSeries` of numpy arrays ready for plotting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.types import Ms, SimMs, ms_to_s
from repro.utils.stats import FixedBinHistogram


@dataclass(frozen=True)
class Sample:
    """One flushed sampling window (rates are per simulated second)."""

    time_ms: SimMs
    requests: int
    local_hits: int
    group_hits: int
    origin_fetches: int
    #: windowed fraction of requests served without touching the origin
    hit_rate: float
    request_rate_rps: float
    local_rate_rps: float
    group_rate_rps: float
    origin_rate_rps: float
    mean_latency_ms: float
    p95_latency_ms: float
    #: OriginLoadTracker utilisation (0.0 when queueing is disabled)
    origin_utilisation: float
    #: mean used/capacity over all caches
    cache_occupancy: float


#: TimeSeries column names, in the order ``as_matrix`` stacks them.
SERIES_FIELDS = (
    "time_ms",
    "requests",
    "hit_rate",
    "request_rate_rps",
    "local_rate_rps",
    "group_rate_rps",
    "origin_rate_rps",
    "mean_latency_ms",
    "p95_latency_ms",
    "origin_utilisation",
    "cache_occupancy",
)


@dataclass(frozen=True)
class TimeSeries:
    """Columnar numpy view over a run's samples."""

    time_ms: np.ndarray
    requests: np.ndarray
    hit_rate: np.ndarray
    request_rate_rps: np.ndarray
    local_rate_rps: np.ndarray
    group_rate_rps: np.ndarray
    origin_rate_rps: np.ndarray
    mean_latency_ms: np.ndarray
    p95_latency_ms: np.ndarray
    origin_utilisation: np.ndarray
    cache_occupancy: np.ndarray

    def __len__(self) -> int:
        return int(self.time_ms.size)

    def as_matrix(self) -> np.ndarray:
        """(n_samples, n_fields) matrix in :data:`SERIES_FIELDS` order."""
        return np.column_stack([getattr(self, f) for f in SERIES_FIELDS])

    def to_dict(self) -> Dict[str, List[float]]:
        """JSON-ready mapping of field name -> list of values."""
        return {f: getattr(self, f).tolist() for f in SERIES_FIELDS}

    @classmethod
    def from_dict(cls, payload: Dict[str, List[float]]) -> "TimeSeries":
        try:
            return cls(**{
                f: np.asarray(payload[f], dtype=float)
                for f in SERIES_FIELDS
            })
        except KeyError as exc:
            raise SimulationError(
                f"time series payload is missing field {exc}"
            ) from exc


class MetricsSampler:
    """Windowed counters flushed at fixed simulated-time ticks.

    The engine calls :meth:`observe_request` per served request and
    :meth:`next_due` / :meth:`flush` around each event so every sample
    boundary ``k * interval_ms`` strictly precedes the events after it;
    :meth:`finalize` closes the trailing partial window.
    """

    def __init__(
        self,
        interval_ms: SimMs,
        latency_upper_ms: Ms = 2_000.0,
    ) -> None:
        if interval_ms <= 0:
            raise SimulationError(
                f"sample interval must be > 0 ms, got {interval_ms}"
            )
        self._interval_ms = float(interval_ms)
        self._next_tick_ms = self._interval_ms
        self._samples: List[Sample] = []
        self._window_hist = FixedBinHistogram(upper=latency_upper_ms)
        self._local = 0
        self._group = 0
        self._origin = 0
        self._finalized = False

    @property
    def interval_ms(self) -> float:
        return self._interval_ms

    @property
    def next_tick_ms(self) -> float:
        """The next sample boundary (the batched loop mirrors this
        locally so its per-event due-check is one float compare)."""
        return self._next_tick_ms

    @property
    def num_samples(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[Sample]:
        return list(self._samples)

    def observe_request(
        self, path_value: str, total_ms: float, counted: bool
    ) -> None:
        """Fold one served request into the current window.

        Warm-up requests count toward rates (the traffic is real) but
        the decomposition mirrors :class:`SimulationMetrics`, so the
        windowed ``hit_rate`` includes them too — hit-rate *evolution*
        during warm-up is precisely what sampling is for.
        """
        del counted  # every served request is load; kept for symmetry
        if path_value == "local_hit":
            self._local += 1
        elif path_value == "group_hit":
            self._group += 1
        elif path_value == "origin_fetch":
            self._origin += 1
        else:
            raise SimulationError(f"unknown service path {path_value!r}")
        self._window_hist.add(total_ms)

    def observe_batch(
        self,
        local_hits: int,
        group_hits: int,
        origin_fetches: int,
        total_ms_values: List[float],
    ) -> None:
        """Fold a run of served requests into the current window at once.

        Batched counterpart of :meth:`observe_request`: the batched
        event loop buffers per-path counts and latency totals between
        sample ticks and folds them here in one call.  ``total_ms_values``
        must be in served order — the window histogram accumulates its
        sum sequentially, so order is what keeps the flushed samples
        bit-identical to per-request observation.
        """
        self._local += local_hits
        self._group += group_hits
        self._origin += origin_fetches
        hist_add = self._window_hist.add
        for value in total_ms_values:
            hist_add(value)

    def next_due(self, now_ms: float) -> Optional[float]:
        """The next tick time <= ``now_ms``, or None if none is due."""
        if self._next_tick_ms <= now_ms:
            return self._next_tick_ms
        return None

    def flush(
        self,
        tick_ms: float,
        origin_utilisation: float = 0.0,
        cache_occupancy: float = 0.0,
    ) -> Sample:
        """Close the current window at ``tick_ms`` and emit its sample."""
        requests = self._local + self._group + self._origin
        window_s = ms_to_s(self._interval_ms)
        hit_rate = (
            (self._local + self._group) / requests if requests else 0.0
        )
        sample = Sample(
            time_ms=tick_ms,
            requests=requests,
            local_hits=self._local,
            group_hits=self._group,
            origin_fetches=self._origin,
            hit_rate=hit_rate,
            request_rate_rps=requests / window_s,
            local_rate_rps=self._local / window_s,
            group_rate_rps=self._group / window_s,
            origin_rate_rps=self._origin / window_s,
            mean_latency_ms=self._window_hist.mean if requests else 0.0,
            p95_latency_ms=(
                self._window_hist.percentile(95) if requests else 0.0
            ),
            origin_utilisation=origin_utilisation,
            cache_occupancy=cache_occupancy,
        )
        self._samples.append(sample)
        self._local = self._group = self._origin = 0
        self._window_hist.reset()
        self._next_tick_ms = tick_ms + self._interval_ms
        return sample

    def finalize(
        self,
        now_ms: float,
        origin_utilisation: float = 0.0,
        cache_occupancy: float = 0.0,
    ) -> None:
        """Flush the trailing partial window (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        if self._local + self._group + self._origin == 0:
            return
        tick = self._interval_ms * math.ceil(now_ms / self._interval_ms)
        if tick < self._next_tick_ms:
            tick = self._next_tick_ms
        self.flush(tick, origin_utilisation, cache_occupancy)

    def series(self) -> TimeSeries:
        """The collected samples as columnar numpy arrays."""
        def column(name: str) -> np.ndarray:
            return np.asarray(
                [getattr(s, name) for s in self._samples], dtype=float
            )

        return TimeSeries(**{f: column(f) for f in SERIES_FIELDS})
