"""Phase timing for the GF-Coordinator pipeline and the simulator.

A :class:`PhaseRegistry` accumulates wall-clock time per named phase;
:func:`phase_timer` is the context manager instrumented code wraps its
stages in.  Timers are *ambient*: a registry is activated for a dynamic
extent (:func:`activate`) and every ``phase_timer`` inside that extent
records into it.  When no registry is active, ``phase_timer`` is a
no-op whose cost is one context-variable lookup — cheap enough to leave
permanently in pipeline-stage code (it is **not** meant for per-request
hot loops; the simulator's per-request hooks go through the
:class:`repro.obs.observer.Observer` null-object instead).

Nested timers produce slash-qualified names: timing ``"probe"`` inside
an active ``"landmarks"`` phase records under ``"landmarks/probe"`` (and
the inner time is *also* part of the outer phase's total, as wall-clock
nesting implies).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


def perf_seconds() -> float:
    """Monotonic host wall-clock seconds, for profiling only.

    This is the single sanctioned wall-clock read for simulation-facing
    code: simulator/pipeline logic that needs to *measure itself* (e.g.
    the engine's events/sec throughput, the coordinator's step timings)
    calls this instead of ``time.perf_counter`` directly, keeping host
    time out of anything that could influence simulated behaviour —
    which is exactly what the ``sim-wallclock`` lint rule enforces
    (``repro lint``; this module is its allowed profiling root).
    """
    return time.perf_counter()


@dataclass
class PhaseTiming:
    """Accumulated timing of one named phase."""

    calls: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    def record(self, elapsed_s: float) -> None:
        self.calls += 1
        self.total_s += elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s


class PhaseRegistry:
    """Accumulates :class:`PhaseTiming` entries by qualified phase name."""

    def __init__(self) -> None:
        self._phases: Dict[str, PhaseTiming] = {}
        self._stack: List[str] = []

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Time one phase; nests under any currently-open phase."""
        qualified = "/".join([*self._stack, name])
        self._stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._stack.pop()
            self._phases.setdefault(qualified, PhaseTiming()).record(elapsed)

    def timings(self) -> Dict[str, PhaseTiming]:
        """Snapshot of phase name -> accumulated timing."""
        return dict(self._phases)

    def total_seconds(self) -> Dict[str, float]:
        """Phase name -> total seconds, JSON-friendly."""
        return {name: t.total_s for name, t in self._phases.items()}

    def merge_totals(
        self, totals: Dict[str, float], prefix: str = ""
    ) -> None:
        """Fold a ``name -> seconds`` mapping into this registry.

        ``prefix`` qualifies every merged name (slash-joined), letting a
        scheduler splice worker-side timings under the phase the parent
        currently has open — so a pooled run's manifest carries the same
        nested names a serial run would.
        """
        for name, seconds in totals.items():
            qualified = f"{prefix}/{name}" if prefix else name
            timing = self._phases.setdefault(qualified, PhaseTiming())
            timing.record(seconds)

    def current_path(self) -> str:
        """The slash-joined stack of currently-open phases ("" if none)."""
        return "/".join(self._stack)

    def __len__(self) -> int:
        return len(self._phases)

    def __contains__(self, name: str) -> bool:
        return name in self._phases


_ACTIVE: ContextVar[Optional[PhaseRegistry]] = ContextVar(
    "repro_obs_phase_registry", default=None
)


def current_registry() -> Optional[PhaseRegistry]:
    """The registry ``phase_timer`` currently records into, if any."""
    return _ACTIVE.get()


@contextmanager
def activate(registry: PhaseRegistry) -> Iterator[PhaseRegistry]:
    """Make ``registry`` the ambient target of ``phase_timer`` calls."""
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)


@contextmanager
def phase_timer(name: str) -> Iterator[None]:
    """Time the enclosed block into the ambient registry (no-op if none)."""
    registry = _ACTIVE.get()
    if registry is None:
        yield
        return
    with registry.time(name):
        yield
