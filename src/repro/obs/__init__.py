"""Observability: request tracing, sampled time series, phase profiling.

Three instrument types, all opt-in and all off by default:

* **event tracing** — :class:`TraceCollector` records one structured
  :class:`TraceRecord` per served request (plus cache fail/recover and
  origin-update events), either unbounded or as a fixed-capacity ring
  buffer, with a JSONL sink and :func:`replay_hit_rates` as the
  aggregate-consistency anchor;
* **sampled time-series metrics** — :class:`MetricsSampler` snapshots
  windowed hit rate, per-path request rates, latency mean/p95, origin
  load, and cache occupancy at a fixed simulated-time interval,
  exposed as a columnar numpy :class:`TimeSeries`;
* **profiling** — :func:`phase_timer` / :class:`PhaseRegistry` time the
  GF-Coordinator stages and the engine event loop, folded into a
  per-run :class:`RunManifest`.

The engine sees all of this through one :class:`Observer`; the shared
:data:`NULL_OBSERVER` keeps uninstrumented runs at seed speed.
"""

from repro.obs.manifest import RunManifest, build_manifest, config_to_dict
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.profiling import (
    PhaseRegistry,
    PhaseTiming,
    activate,
    current_registry,
    phase_timer,
)
from repro.obs.sampler import SERIES_FIELDS, MetricsSampler, Sample, TimeSeries
from repro.obs.trace import (
    KIND_CACHE_FAIL,
    KIND_CACHE_RECOVER,
    KIND_ORIGIN_UPDATE,
    KIND_REQUEST,
    TraceCollector,
    TraceRecord,
    read_jsonl,
    replay_hit_rates,
)

__all__ = [
    "Observer",
    "NULL_OBSERVER",
    "TraceCollector",
    "TraceRecord",
    "KIND_REQUEST",
    "KIND_CACHE_FAIL",
    "KIND_CACHE_RECOVER",
    "KIND_ORIGIN_UPDATE",
    "read_jsonl",
    "replay_hit_rates",
    "MetricsSampler",
    "Sample",
    "TimeSeries",
    "SERIES_FIELDS",
    "PhaseRegistry",
    "PhaseTiming",
    "phase_timer",
    "activate",
    "current_registry",
    "RunManifest",
    "build_manifest",
    "config_to_dict",
]
