"""Shared value types and aliases used across ``repro`` subsystems.

The library deals with three id spaces:

* **router ids** — vertices of the underlying transit-stub topology graph
  (plain ``int`` indices into the adjacency structure);
* **node ids** — members of the *edge cache network*: the origin server
  plus the edge caches, each pinned to a router.  ``NodeId`` values index
  rows/columns of a :class:`repro.topology.distance.DistanceMatrix`;
* **document ids** — entries of a workload's document catalog.

By paper convention the origin server is node 0 and the edge caches are
nodes ``1..N`` of the edge cache network (the paper writes ``Os`` and
``Ec_0 .. Ec_{N-1}``; we map ``Ec_i`` to node id ``i + 1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

# Aliases are intentionally plain ints: they index numpy arrays everywhere.
RouterId = int
NodeId = int
DocumentId = int

# -- time aliases ------------------------------------------------------
#
# The codebase juggles three clocks (see docs/static-analysis.md,
# "Dimensional analysis"): the *simulated* millisecond clock the engine
# advances, the *host* monotonic second clock behind
# ``repro.obs.profiling.perf_seconds`` (scheduler deadlines, backoff,
# bench timing), and the *unix epoch* (manifest ``created_unix``).
# These aliases are intentionally plain floats — time values feed numpy
# kernels and arithmetic everywhere — but they give boundaries a name
# the dimensional linter (:mod:`repro.lint.units`) recognises, the same
# way the ``_ms``/``_s``/``_unix`` naming suffixes do.

#: A duration in milliseconds (clock-domain agnostic).
Ms = float
#: A duration in host-monotonic seconds (``perf_seconds`` deltas,
#: scheduler timeouts/backoff).
Seconds = float
#: An instant or duration on the *simulated* millisecond clock
#: (``EventQueue.now_ms``, event ``timestamp_ms``, sampler ticks).
SimMs = float
#: A unix-epoch timestamp in seconds (``RunManifest.created_unix``).
UnixSeconds = float

#: The one sanctioned ms<->s conversion factor.  Spelling a bare
#: ``* 1000`` / ``/ 1000`` on a time value trips the
#: ``magic-unit-conversion`` lint rule; route conversions through
#: :func:`ms_to_s` / :func:`s_to_ms` (or this named constant for rate
#: conversions such as per-second -> per-millisecond).
MS_PER_S: float = 1000.0


def ms_to_s(value_ms: Ms) -> Seconds:
    """Convert a millisecond duration to seconds.

    >>> ms_to_s(1500.0)
    1.5
    """
    return value_ms / MS_PER_S


def s_to_ms(value_s: Seconds) -> Ms:
    """Convert a second duration to milliseconds.

    >>> s_to_ms(1.5)
    1500.0
    """
    return value_s * MS_PER_S

#: Node id of the origin server in every EdgeCacheNetwork.
ORIGIN_NODE_ID: NodeId = 0


def cache_node_id(cache_index: int) -> NodeId:
    """Map a paper-style cache index (``Ec_i``) to its network node id."""
    if cache_index < 0:
        raise ValueError(f"cache_index must be >= 0, got {cache_index}")
    return cache_index + 1


def cache_index(node_id: NodeId) -> int:
    """Map a network node id back to its paper-style cache index."""
    if node_id <= ORIGIN_NODE_ID:
        raise ValueError(
            f"node id {node_id} does not denote an edge cache "
            f"(origin server is node {ORIGIN_NODE_ID})"
        )
    return node_id - 1


@dataclass(frozen=True)
class Millis:
    """A latency value in milliseconds.

    A tiny wrapper used at API boundaries where a bare float would be
    ambiguous (seconds vs milliseconds).  Internal numeric kernels use
    plain floats in milliseconds throughout.
    """

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"latency cannot be negative: {self.value}")

    def __float__(self) -> float:
        return self.value

    def __add__(self, other: "Millis") -> "Millis":
        return Millis(self.value + float(other))

    def __lt__(self, other: "Millis") -> bool:
        return self.value < float(other)


@dataclass(frozen=True)
class Bytes:
    """A size value in bytes (documents, cache capacity)."""

    value: int

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"size cannot be negative: {self.value}")

    def __int__(self) -> int:
        return self.value


def as_node_list(nodes: Sequence[NodeId]) -> List[NodeId]:
    """Return ``nodes`` as a list, validating ids are non-negative ints."""
    out: List[NodeId] = []
    for node in nodes:
        if int(node) != node or node < 0:
            raise ValueError(f"invalid node id: {node!r}")
        out.append(int(node))
    return out
