"""Cross-module passes: call graph, taint chains, stream labels.

Each test assembles a miniature ``src/repro`` tree out of in-memory
:class:`SourceFile` objects and runs :func:`run_project_passes` over
it, asserting the exact (rule id, path, line) triples — and, for the
taint rules, the rendered call chain in the message.
"""

import textwrap

from repro.lint import SourceFile, run_project_passes
from repro.lint.project import (
    MODULE_SCOPE,
    ProjectModel,
    module_name_for,
)


def make_source(path, snippet):
    source = SourceFile(path, textwrap.dedent(snippet))
    assert source.parse_error is None
    return source


def run_passes(*path_snippets):
    sources = [make_source(path, text) for path, text in path_snippets]
    findings, suppressed = run_project_passes(sources)
    return [(f.rule_id, f.path, f.line) for f in findings], findings, suppressed


class TestModuleNaming:
    def test_repro_anchored_paths(self):
        assert module_name_for("src/repro/utils/rng.py") == "repro.utils.rng"
        assert module_name_for("src/repro/runtime/__init__.py") == (
            "repro.runtime"
        )
        assert module_name_for("src/repro/cli.py") == "repro.cli"

    def test_out_of_tree_path_falls_back_to_stem(self):
        assert module_name_for("scratch/helper.py") == "helper"


class TestTransitiveWallclock:
    def test_helper_behind_helper_is_reported_with_chain(self):
        triples, findings, _ = run_passes(
            (
                "src/repro/simulator/eng.py",
                """\
                from repro.utils.hlp import outer

                def run():
                    return outer()
                """,
            ),
            (
                "src/repro/utils/hlp.py",
                """\
                import time

                def outer():
                    return _inner()

                def _inner():
                    return time.time()
                """,
            ),
        )
        assert triples == [
            ("transitive-wallclock", "src/repro/simulator/eng.py", 3)
        ]
        [finding] = findings
        assert (
            "run -> repro.utils.hlp:outer -> _inner -> time.time "
            "(src/repro/utils/hlp.py:7)"
        ) in finding.message
        assert "perf_seconds" in finding.message

    def test_direct_call_is_left_to_the_per_file_rule(self):
        # A length-1 chain is sim-wallclock's domain, not this pass's.
        triples, _, _ = run_passes(
            (
                "src/repro/simulator/eng.py",
                """\
                import time

                def run():
                    return time.time()
                """,
            ),
        )
        assert triples == []

    def test_profiling_module_is_a_taint_boundary(self):
        # perf_seconds() is the sanctioned clock: calling through
        # repro.obs.profiling must never taint the caller.
        triples, _, _ = run_passes(
            (
                "src/repro/simulator/eng.py",
                """\
                from repro.obs.profiling import perf_seconds

                def run():
                    return perf_seconds()
                """,
            ),
            (
                "src/repro/obs/profiling.py",
                """\
                import time

                def perf_seconds():
                    return time.perf_counter()
                """,
            ),
        )
        assert triples == []

    def test_sink_pragma_stops_taint_at_the_source(self):
        triples, _, _ = run_passes(
            (
                "src/repro/simulator/eng.py",
                """\
                from repro.utils.hlp import outer

                def run():
                    return outer()
                """,
            ),
            (
                "src/repro/utils/hlp.py",
                """\
                import time

                def outer():
                    return time.time()  # repro-lint: allow[sim-wallclock]
                """,
            ),
        )
        assert triples == []

    def test_anchor_pragma_suppresses_the_finding(self):
        triples, _, suppressed = run_passes(
            (
                "src/repro/simulator/eng.py",
                """\
                from repro.utils.hlp import outer

                # repro-lint: allow[transitive-wallclock]
                def run():
                    return outer()
                """,
            ),
            (
                "src/repro/utils/hlp.py",
                """\
                import time

                def outer():
                    return _inner()

                def _inner():
                    return time.time()
                """,
            ),
        )
        assert triples == []
        assert suppressed == 1

    def test_helpers_outside_entry_dirs_are_not_anchors(self):
        # The tainted chain exists, but its head lives in utils/ — only
        # simulator/experiments/core functions anchor findings.
        triples, _, _ = run_passes(
            (
                "src/repro/utils/wrap.py",
                """\
                from repro.utils.hlp import outer

                def convenience():
                    return outer()
                """,
            ),
            (
                "src/repro/utils/hlp.py",
                """\
                import time

                def outer():
                    return _inner()

                def _inner():
                    return time.time()
                """,
            ),
        )
        assert triples == []


class TestTransitiveRng:
    def test_stdlib_random_behind_helper(self):
        triples, findings, _ = run_passes(
            (
                "src/repro/experiments/fig.py",
                """\
                from repro.utils.noise import jitter

                def run_point():
                    return jitter()
                """,
            ),
            (
                "src/repro/utils/noise.py",
                """\
                import random

                def jitter():
                    return random.random()
                """,
            ),
        )
        assert triples == [
            ("transitive-rng", "src/repro/experiments/fig.py", 3)
        ]
        assert "random.random" in findings[0].message

    def test_rng_factory_module_is_a_taint_boundary(self):
        triples, _, _ = run_passes(
            (
                "src/repro/experiments/fig.py",
                """\
                from repro.utils.rng import spawn_rng

                def run_point():
                    return spawn_rng(7)
                """,
            ),
            (
                "src/repro/utils/rng.py",
                """\
                import numpy as np

                def spawn_rng(seed):
                    return np.random.default_rng(seed)
                """,
            ),
        )
        assert triples == []

    def test_seeded_numpy_constructors_are_not_sinks(self):
        triples, _, _ = run_passes(
            (
                "src/repro/core/scheme.py",
                """\
                from repro.utils.noise import fresh

                def form():
                    return fresh()
                """,
            ),
            (
                "src/repro/utils/noise.py",
                """\
                import numpy as np

                def fresh():
                    return np.random.default_rng(42)
                """,
            ),
        )
        assert triples == []


class TestCallGraphResolution:
    def test_reexport_through_package_init(self):
        triples, findings, _ = run_passes(
            (
                "src/repro/simulator/eng.py",
                """\
                from repro.utils import outer

                def run():
                    return outer()
                """,
            ),
            (
                "src/repro/utils/__init__.py",
                """\
                from repro.utils.hlp import outer
                """,
            ),
            (
                "src/repro/utils/hlp.py",
                """\
                import time

                def outer():
                    return time.monotonic()
                """,
            ),
        )
        assert triples == [
            ("transitive-wallclock", "src/repro/simulator/eng.py", 3)
        ]
        assert "time.monotonic" in findings[0].message

    def test_self_method_and_nested_def_edges(self):
        model = ProjectModel.build([
            make_source(
                "src/repro/simulator/eng.py",
                """\
                class Engine:
                    def run(self):
                        def step():
                            return 1
                        return self._tick()

                    def _tick(self):
                        return 0
                """,
            )
        ])
        run_node = model.functions["repro.simulator.eng:Engine.run"]
        targets = {edge.target for edge in run_node.edges if edge.internal}
        assert "repro.simulator.eng:Engine.run.step" in targets
        assert "repro.simulator.eng:Engine._tick" in targets

    def test_class_body_does_not_inherit_method_edges(self):
        # Methods are not reachable from <module>: importing a module
        # must never count as calling its classes' methods.
        model = ProjectModel.build([
            make_source(
                "src/repro/utils/thing.py",
                """\
                import time

                class Thing:
                    def now(self):
                        return time.time()
                """,
            )
        ])
        module_node = model.functions[f"repro.utils.thing:{MODULE_SCOPE}"]
        assert all(
            edge.target != "time.time" for edge in module_node.edges
        )


class TestStreamLabels:
    def test_duplicate_literal_label_is_reported_at_second_site(self):
        triples, findings, _ = run_passes(
            (
                "src/repro/experiments/fig.py",
                """\
                from repro.utils.rng import RngFactory

                def run_point(seed):
                    factory = RngFactory(seed)
                    a = factory.stream("noise")
                    b = factory.stream("noise")
                    return a, b
                """,
            ),
        )
        assert triples == [
            ("stream-label-collision", "src/repro/experiments/fig.py", 6)
        ]
        assert "line 5" in findings[0].message

    def test_distinct_labels_and_fstrings_are_clean(self):
        triples, _, _ = run_passes(
            (
                "src/repro/experiments/fig.py",
                """\
                from repro.utils.rng import RngFactory

                def run_point(seed, k):
                    factory = RngFactory(seed)
                    a = factory.stream("noise")
                    b = factory.stream("workload")
                    c = factory.stream(f"k{k}")
                    return a, b, c
                """,
            ),
        )
        assert triples == []

    def test_stream_and_fork_labels_are_separate_namespaces(self):
        triples, _, _ = run_passes(
            (
                "src/repro/experiments/fig.py",
                """\
                from repro.utils.rng import RngFactory

                def run_point(seed):
                    factory = RngFactory(seed)
                    a = factory.stream("faults")
                    b = factory.fork("faults")
                    return a, b
                """,
            ),
        )
        assert triples == []

    def test_non_literal_label_is_reported(self):
        triples, findings, _ = run_passes(
            (
                "src/repro/experiments/fig.py",
                """\
                from repro.utils.rng import RngFactory

                def run_point(seed, name):
                    return RngFactory(seed).stream(name)
                """,
            ),
        )
        assert triples == [
            ("stream-label-collision", "src/repro/experiments/fig.py", 4)
        ]
        assert "non-literal" in findings[0].message

    def test_same_label_in_different_functions_is_clean(self):
        # Scope is (function, receiver, method): two functions building
        # their own factories may reuse a label freely.
        triples, _, _ = run_passes(
            (
                "src/repro/experiments/fig.py",
                """\
                from repro.utils.rng import RngFactory

                def one(seed):
                    return RngFactory(seed).stream("noise")

                def two(seed):
                    return RngFactory(seed).stream("noise")
                """,
            ),
        )
        assert triples == []

    def test_rng_module_itself_is_exempt(self):
        triples, _, _ = run_passes(
            (
                "src/repro/utils/rng.py",
                """\
                class RngFactory:
                    def stream(self, label):
                        return label

                def helper(factory, name):
                    return factory.stream(name)
                """,
            ),
        )
        assert triples == []
