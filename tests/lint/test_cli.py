"""The ``repro lint`` subcommand: formats, exit codes, baseline flags."""

import json
import textwrap

import pytest

from repro.cli import main

CLEAN = """\
import numpy as np


def draw(seed):
    rng = np.random.default_rng(seed)
    return rng.random()
"""

DIRTY = """\
import random


def jitter():
    return random.random()
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN)
    return path


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY)
    return path


def test_clean_file_exits_zero(clean_file, capsys):
    code = main(["lint", str(clean_file)])
    assert code == 0
    assert "0 findings" in capsys.readouterr().out


def test_findings_exit_one_with_location(dirty_file, capsys):
    code = main(["lint", str(dirty_file)])
    assert code == 1
    out = capsys.readouterr().out
    assert "rng-stdlib-random" in out
    assert "dirty.py:5" in out


def test_json_format(dirty_file, capsys):
    code = main(["lint", str(dirty_file), "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert payload["files_checked"] == 1
    [record] = payload["findings"]
    assert record["rule"] == "rng-stdlib-random"
    assert record["line"] == 5


def test_missing_path_exits_two(tmp_path, capsys):
    code = main(["lint", str(tmp_path / "nope")])
    assert code == 2
    assert "does not exist" in capsys.readouterr().err


def test_missing_explicit_baseline_exits_two(clean_file, tmp_path, capsys):
    code = main([
        "lint", str(clean_file), "--baseline", str(tmp_path / "nope.json"),
    ])
    assert code == 2
    assert "baseline not found" in capsys.readouterr().err


def test_update_baseline_then_clean(dirty_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    code = main([
        "lint", str(dirty_file),
        "--baseline", str(baseline), "--update-baseline",
    ])
    assert code == 0
    assert baseline.exists()
    capsys.readouterr()

    # With the grandfathered baseline the same tree is clean...
    code = main(["lint", str(dirty_file), "--baseline", str(baseline)])
    assert code == 0
    assert "1 baselined" in capsys.readouterr().out

    # ...but a *new* violation of the same rule still fails.
    dirty = dirty_file.read_text()
    dirty_file.write_text(
        dirty + "\n\ndef more():\n    return random.choice([1, 2])\n"
    )
    code = main(["lint", str(dirty_file), "--baseline", str(baseline)])
    assert code == 1
    out = capsys.readouterr().out
    assert "rng-stdlib-random" in out


def test_verbose_lists_baselined(dirty_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    main([
        "lint", str(dirty_file),
        "--baseline", str(baseline), "--update-baseline",
    ])
    capsys.readouterr()
    code = main([
        "lint", str(dirty_file), "--baseline", str(baseline), "--verbose",
    ])
    assert code == 0
    assert "[baselined]" in capsys.readouterr().out


def test_list_rules(capsys):
    code = main(["lint", "--list-rules"])
    assert code == 0
    out = capsys.readouterr().out
    for rule_id in (
        "rng-stdlib-random", "rng-numpy-global", "rng-unseeded-default-rng",
        "sim-wallclock", "fork-unsafe-task", "iter-order", "mutable-default",
    ):
        assert rule_id in out


def test_syntax_error_reported_as_parse_error(tmp_path, capsys):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    code = main(["lint", str(path)])
    assert code == 1
    assert "parse-error" in capsys.readouterr().out
