"""The interprocedural effect analysis and its four rules.

Golden fixtures mirror ``tests/lint/test_project.py``: each test builds
a miniature ``src/repro`` tree of in-memory :class:`SourceFile` objects,
runs the analysis, and asserts exact (rule id, path, line) triples plus
the rendered call chain in the message.
"""

import json
import textwrap

import pytest

from repro.cli import main
from repro.lint import SourceFile, run_project_passes
from repro.lint.effects import (
    CACHE_KEY_ESCAPE,
    FORK_HELD_RESOURCE,
    IMPURE_EVENT_HANDLER,
    MERGE_BACK_REGISTRY,
    SHARED_MUTABLE_GLOBAL,
    analyze,
    effect_findings,
    effect_report,
    effect_rule_catalog,
)
from repro.lint.project import ProjectModel


def make_source(path, snippet):
    source = SourceFile(path, textwrap.dedent(snippet))
    assert source.parse_error is None
    return source


def build_analysis(*path_snippets):
    sources = [make_source(path, text) for path, text in path_snippets]
    return analyze(ProjectModel.build(sources))


def effect_triples(analysis):
    findings = effect_findings(analysis)
    return [(f.rule_id, f.path, f.line) for f in findings], findings


# The driver side of the fork fixtures: one pool dispatch of ``unit``.
DRIVER = (
    "src/repro/exp/driver.py",
    """\
    from repro.runtime.scheduler import map_tasks

    from repro.exp.work import unit


    def run():
        return map_tasks(unit, [(1,), (2,)])
    """,
)

WORK = (
    "src/repro/exp/work.py",
    """\
    _TOTALS = {}


    def unit(item):
        _bump(item)
        return item


    def _bump(item):
        _TOTALS[item] = 1
    """,
)


class TestSharedMutableGlobal:
    def test_task_reachable_write_is_reported_with_chain(self):
        triples, findings = effect_triples(build_analysis(DRIVER, WORK))
        assert triples == [
            (SHARED_MUTABLE_GLOBAL, "src/repro/exp/work.py", 4)
        ]
        [finding] = findings
        assert (
            "unit -> _bump -> repro.exp.work:_TOTALS "
            "(src/repro/exp/work.py:10)"
        ) in finding.message
        assert "MERGE_BACK_REGISTRY" in finding.message

    def test_unreached_write_is_not_reported(self):
        # Same worker module, but nothing dispatches it to a pool.
        triples, _ = effect_triples(build_analysis(WORK))
        assert triples == []

    def test_merge_back_registry_exempts_the_write(self):
        registered = "repro.simulator.engine:_EVENTS_TOTAL"
        assert registered in MERGE_BACK_REGISTRY
        triples, _ = effect_triples(build_analysis(
            (
                "src/repro/exp/driver.py",
                """\
                from repro.runtime.scheduler import map_tasks

                from repro.simulator.engine import tick


                def run():
                    return map_tasks(tick, [(1,)])
                """,
            ),
            (
                "src/repro/simulator/engine.py",
                """\
                _EVENTS_TOTAL = 0


                def tick(n):
                    global _EVENTS_TOTAL
                    _EVENTS_TOTAL += n
                    return n
                """,
            ),
        ))
        assert triples == []

    def test_scheduler_method_dispatch_is_an_entry(self):
        analysis = build_analysis(
            (
                "src/repro/exp/driver.py",
                """\
                from repro.runtime.scheduler import TaskScheduler

                from repro.exp.work import unit


                def run(scheduler):
                    return scheduler.map(unit, [(1,)])
                """,
            ),
            WORK,
        )
        [entry] = analysis.task_entries
        assert entry.key == "repro.exp.work:unit"
        assert entry.via == "scheduler.map"
        triples, _ = effect_triples(analysis)
        assert triples == [
            (SHARED_MUTABLE_GLOBAL, "src/repro/exp/work.py", 4)
        ]


class TestCacheKeyEscape:
    CACHEMOD = (
        "src/repro/buildx/cachemod.py",
        """\
        _FLAGS = {"fast": True}


        def set_flag(name, value):
            _FLAGS[name] = value


        def fetch(cache, key):
            return cache.get_or_build(key, _build)


        def _build():
            if _FLAGS["fast"]:
                return open("data.bin").read()
            return b""
        """,
    )

    def test_builder_reading_state_and_io_is_reported(self):
        analysis = build_analysis(self.CACHEMOD)
        [entry] = analysis.cache_builders
        assert entry.key == "repro.buildx.cachemod:_build"
        assert entry.via == "get_or_build"
        assert entry.site_line == 9
        triples, findings = effect_triples(analysis)
        assert triples == [
            (CACHE_KEY_ESCAPE, "src/repro/buildx/cachemod.py", 12),
            (CACHE_KEY_ESCAPE, "src/repro/buildx/cachemod.py", 12),
        ]
        messages = sorted(f.message for f in findings)
        assert "performs IO via open" in messages[0]
        assert (
            "reads module state repro.buildx.cachemod:_FLAGS"
        ) in messages[1]
        assert (
            "_build -> repro.buildx.cachemod:_FLAGS "
            "(src/repro/buildx/cachemod.py:13)"
        ) in messages[1]

    def test_lambda_builder_resolves_to_its_call_targets(self):
        analysis = build_analysis((
            "src/repro/buildx/lam.py",
            """\
            _MODE = {"x": 1}


            def poke():
                _MODE["x"] = 2


            def fetch(cache, key):
                return cache.get_or_build(key, lambda: _make(key))


            def _make(key):
                return _MODE["x"]
            """,
        ))
        [entry] = analysis.cache_builders
        assert entry.key == "repro.buildx.lam:_make"
        triples, _ = effect_triples(analysis)
        assert triples == [(CACHE_KEY_ESCAPE, "src/repro/buildx/lam.py", 12)]

    def test_constant_table_reads_do_not_escape(self):
        # _TABLE is never written in-project: a constant, not state.
        triples, _ = effect_triples(build_analysis((
            "src/repro/buildx/const.py",
            """\
            _TABLE = {"a": 1}


            def fetch(cache, key):
                return cache.get_or_build(key, _build)


            def _build():
                return _TABLE["a"]
            """,
        )))
        assert triples == []


class TestImpureEventHandler:
    def test_handler_writing_module_state_is_reported(self):
        triples, findings = effect_triples(build_analysis((
            "src/repro/simulator/customloop.py",
            """\
            _SEEN = []


            class Loop:
                def _handle_request(self, event):
                    _SEEN.append(event)
                    return None
            """,
        )))
        assert triples == [
            (IMPURE_EVENT_HANDLER, "src/repro/simulator/customloop.py", 5)
        ]
        [finding] = findings
        assert (
            "Loop._handle_request -> repro.simulator.customloop:_SEEN "
            "(src/repro/simulator/customloop.py:6)"
        ) in finding.message

    def test_handler_table_registration_is_discovered(self):
        analysis = build_analysis((
            "src/repro/simulator/tabled.py",
            """\
            class Loop:
                def __init__(self):
                    self._handlers = {int: self.on_request}

                def on_request(self, event):
                    print(event)
            """,
        ))
        assert analysis.event_handlers == [
            "repro.simulator.tabled:Loop.on_request"
        ]
        triples, _ = effect_triples(analysis)
        assert triples == [
            (IMPURE_EVENT_HANDLER, "src/repro/simulator/tabled.py", 5)
        ]

    def test_naming_convention_is_scoped_to_the_simulator(self):
        # The same method outside repro.simulator.* is not a handler.
        analysis = build_analysis((
            "src/repro/analysis/loopish.py",
            """\
            _SEEN = []


            class Loop:
                def _handle_request(self, event):
                    _SEEN.append(event)
            """,
        ))
        assert analysis.event_handlers == []
        triples, _ = effect_triples(analysis)
        assert triples == []

    def test_instance_state_mutation_is_engine_owned(self):
        triples, _ = effect_triples(build_analysis((
            "src/repro/simulator/clean.py",
            """\
            class Loop:
                def __init__(self):
                    self.hits = 0

                def _handle_request(self, event):
                    self.hits += 1
            """,
        )))
        assert triples == []


class TestForkHeldResource:
    def test_import_time_lock_used_in_task_is_reported(self):
        triples, findings = effect_triples(build_analysis((
            "src/repro/exp/forked.py",
            """\
            import threading

            from repro.runtime.scheduler import map_tasks

            _LOCK = threading.Lock()


            def run_all(items):
                return map_tasks(work, items)


            def work(item):
                with _LOCK:
                    return item
            """,
        )))
        assert triples == [
            (FORK_HELD_RESOURCE, "src/repro/exp/forked.py", 12)
        ]
        [finding] = findings
        assert "repro.exp.forked:_LOCK" in finding.message
        assert (
            "created at import time (src/repro/exp/forked.py:5)"
        ) in finding.message
        assert (
            "work -> repro.exp.forked:_LOCK (src/repro/exp/forked.py:13)"
        ) in finding.message

    def test_lock_outside_any_task_is_fine(self):
        triples, _ = effect_triples(build_analysis((
            "src/repro/exp/serial.py",
            """\
            import threading

            _LOCK = threading.Lock()


            def work(item):
                with _LOCK:
                    return item
            """,
        )))
        assert triples == []


class TestFixpoint:
    def test_mutual_recursion_converges_and_propagates(self):
        analysis = build_analysis((
            "src/repro/exp/cyc.py",
            """\
            _STATE = {}


            def a(n):
                if n:
                    return b(n - 1)
                return 0


            def b(n):
                _STATE[n] = n
                return a(n)
            """,
        ))
        for name in ("a", "b"):
            summary = analysis.summaries[f"repro.exp.cyc:{name}"]
            assert summary.writes == {"repro.exp.cyc:_STATE"}
            assert analysis.classify(f"repro.exp.cyc:{name}") == "mutates"

    def test_self_recursion_with_io_converges(self):
        analysis = build_analysis((
            "src/repro/exp/rec.py",
            """\
            def crawl(n):
                if n:
                    crawl(n - 1)
                print(n)
            """,
        ))
        assert analysis.summaries["repro.exp.rec:crawl"].io == {"print"}
        assert analysis.classify("repro.exp.rec:crawl") == "io"

    def test_effects_do_not_cross_boundary_modules(self):
        # repro.utils.rng is hand-audited machinery: its effects stay
        # contained, and calls through it do not propagate effects.
        analysis = build_analysis(
            (
                "src/repro/exp/caller.py",
                """\
                from repro.utils.rng import draw


                def use():
                    return draw()
                """,
            ),
            (
                "src/repro/utils/rng.py",
                """\
                _CACHE = {}


                def draw():
                    _CACHE[0] = 1
                    return 0
                """,
            ),
        )
        assert analysis.classify("repro.exp.caller:use") == "pure"
        assert analysis.classify("repro.utils.rng:draw") == "pure"


class TestPragmas:
    def test_anchor_pragma_suppresses_via_project_passes(self):
        driver = make_source(*DRIVER)
        work = make_source(
            "src/repro/exp/work.py",
            textwrap.dedent("""\
            _TOTALS = {}


            def unit(item):  # repro-lint: allow[shared-mutable-global]
                _bump(item)
                return item


            def _bump(item):
                _TOTALS[item] = 1
            """),
        )
        findings, suppressed = run_project_passes([driver, work])
        assert [
            f for f in findings if f.rule_id == SHARED_MUTABLE_GLOBAL
        ] == []
        assert suppressed >= 1

    def test_site_pragma_suppresses_at_the_effect_line(self):
        triples, _ = effect_triples(build_analysis(
            DRIVER,
            (
                "src/repro/exp/work.py",
                """\
                _TOTALS = {}


                def unit(item):
                    _bump(item)
                    return item


                def _bump(item):
                    # repro-lint: allow[shared-mutable-global]
                    _TOTALS[item] = 1
                """,
            ),
        ))
        assert triples == []


class TestRuleCatalog:
    def test_all_four_rules_are_catalogued(self):
        catalog = effect_rule_catalog()
        assert set(catalog) == {
            SHARED_MUTABLE_GLOBAL, CACHE_KEY_ESCAPE,
            IMPURE_EVENT_HANDLER, FORK_HELD_RESOURCE,
        }


class TestEffectReport:
    def test_report_rows_carry_flags_and_effects(self):
        analysis = build_analysis(DRIVER, WORK)
        payload = effect_report(analysis, effect_findings(analysis))
        rows = {row["function"]: row for row in payload["functions"]}
        unit = rows["repro.exp.work:unit"]
        assert unit["task_entry"] is True
        assert unit["task_reachable"] is True
        assert unit["effect"] == "mutates"
        assert unit["writes"] == ["repro.exp.work:_TOTALS"]
        driver_run = rows["repro.exp.driver:run"]
        assert driver_run["task_entry"] is False
        [gvar] = payload["globals"]
        assert gvar["global"] == "repro.exp.work:_TOTALS"
        assert gvar["stateful"] is True
        assert gvar["merge_back"] is None
        [task] = payload["entry_points"]["tasks"]
        assert task["via"] == "map_tasks"
        [record] = payload["findings"]
        assert record["rule"] == SHARED_MUTABLE_GLOBAL

    def test_function_filter_matches_bare_and_qualified_names(self):
        analysis = build_analysis(DRIVER, WORK)
        for query in ("unit", "repro.exp.work:unit"):
            payload = effect_report(analysis, [], function=query)
            assert [row["function"] for row in payload["functions"]] == [
                "repro.exp.work:unit"
            ]


@pytest.fixture
def fixture_tree(tmp_path, monkeypatch):
    """The DRIVER/WORK fixtures on disk, cwd-anchored like a real repo."""
    for path, text in (DRIVER, WORK):
        target = tmp_path / path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestEffectsCli:
    def test_json_dump_is_deterministic_and_exits_zero(
        self, fixture_tree, capsys
    ):
        assert main(["lint", "effects", "src", "--format", "json"]) == 0
        first = capsys.readouterr().out
        assert main(["lint", "effects", "src", "--format", "json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert [f["rule"] for f in payload["findings"]] == [
            SHARED_MUTABLE_GLOBAL
        ]
        [task] = payload["entry_points"]["tasks"]
        assert task["function"] == "repro.exp.work:unit"

    def test_text_mode_summarises_the_table(self, fixture_tree, capsys):
        assert main(["lint", "effects", "src"]) == 0
        out = capsys.readouterr().out
        assert "1 task entries" in out
        assert "repro.exp.work:unit" in out
        assert "1 effect finding(s):" in out

    def test_function_filter_from_the_cli(self, fixture_tree, capsys):
        assert main([
            "lint", "effects", "src", "--function", "unit",
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["function"] for row in payload["functions"]] == [
            "repro.exp.work:unit"
        ]

    def test_missing_path_exits_two(self, fixture_tree, capsys):
        assert main(["lint", "effects", "nope"]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestGateIntegration:
    def test_effect_findings_gate_and_baseline_round_trip(
        self, fixture_tree, capsys
    ):
        assert main(["lint", "src"]) == 1
        assert SHARED_MUTABLE_GLOBAL in capsys.readouterr().out

        baseline = fixture_tree / "baseline.json"
        assert main([
            "lint", "src", "--baseline", str(baseline),
            "--update-baseline",
        ]) == 0
        capsys.readouterr()
        assert main(["lint", "src", "--baseline", str(baseline)]) == 0
