"""Inline ``# repro-lint: allow[...]`` pragma behaviour."""

import textwrap

from repro.lint import SourceFile, default_checkers, lint_source


def lint_snippet(snippet, path="src/repro/simulator/module.py"):
    source = SourceFile(path, textwrap.dedent(snippet))
    return lint_source(source, default_checkers())


def test_same_line_pragma_suppresses():
    findings, suppressed = lint_snippet(
        """\
        import time

        def stamp():
            return time.time()  # repro-lint: allow[sim-wallclock]
        """
    )
    assert findings == []
    assert suppressed == 1


def test_pragma_on_preceding_line_suppresses():
    findings, suppressed = lint_snippet(
        """\
        import time

        def stamp():
            # repro-lint: allow[sim-wallclock]
            return time.time()
        """
    )
    assert findings == []
    assert suppressed == 1


def test_pragma_for_other_rule_does_not_suppress():
    findings, suppressed = lint_snippet(
        """\
        import time

        def stamp():
            return time.time()  # repro-lint: allow[iter-order]
        """
    )
    assert [f.rule_id for f in findings] == ["sim-wallclock"]
    assert suppressed == 0


def test_comma_separated_rules_and_wildcard():
    findings, suppressed = lint_snippet(
        """\
        import time
        import random

        def stamp():
            return time.time() + random.random()  # repro-lint: allow[sim-wallclock, rng-stdlib-random]

        def other():
            return random.random()  # repro-lint: allow[*]
        """
    )
    assert findings == []
    assert suppressed == 3


def test_pragma_inside_string_literal_is_ignored():
    findings, suppressed = lint_snippet(
        """\
        import time

        NOTE = "# repro-lint: allow[sim-wallclock]"
        def stamp():
            return time.time()
        """
    )
    assert [f.rule_id for f in findings] == ["sim-wallclock"]
    assert suppressed == 0


def test_pragma_two_lines_above_does_not_suppress():
    findings, _ = lint_snippet(
        """\
        import time
        # repro-lint: allow[sim-wallclock]

        def stamp():
            return time.time()
        """
    )
    assert [f.rule_id for f in findings] == ["sim-wallclock"]
