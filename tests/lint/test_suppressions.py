"""Inline ``# repro-lint: allow[...]`` pragma behaviour."""

import textwrap

from repro.lint import SourceFile, default_checkers, lint_source


def lint_snippet(snippet, path="src/repro/simulator/module.py"):
    source = SourceFile(path, textwrap.dedent(snippet))
    return lint_source(source, default_checkers())


def test_same_line_pragma_suppresses():
    findings, suppressed = lint_snippet(
        """\
        import time

        def stamp():
            return time.time()  # repro-lint: allow[sim-wallclock]
        """
    )
    assert findings == []
    assert suppressed == 1


def test_pragma_on_preceding_line_suppresses():
    findings, suppressed = lint_snippet(
        """\
        import time

        def stamp():
            # repro-lint: allow[sim-wallclock]
            return time.time()
        """
    )
    assert findings == []
    assert suppressed == 1


def test_pragma_for_other_rule_does_not_suppress():
    findings, suppressed = lint_snippet(
        """\
        import time

        def stamp():
            return time.time()  # repro-lint: allow[iter-order]
        """
    )
    assert [f.rule_id for f in findings] == ["sim-wallclock"]
    assert suppressed == 0


def test_comma_separated_rules_and_wildcard():
    findings, suppressed = lint_snippet(
        """\
        import time
        import random

        def stamp():
            return time.time() + random.random()  # repro-lint: allow[sim-wallclock, rng-stdlib-random]

        def other():
            return random.random()  # repro-lint: allow[*]
        """
    )
    assert findings == []
    assert suppressed == 3


def test_pragma_inside_string_literal_is_ignored():
    findings, suppressed = lint_snippet(
        """\
        import time

        NOTE = "# repro-lint: allow[sim-wallclock]"
        def stamp():
            return time.time()
        """
    )
    assert [f.rule_id for f in findings] == ["sim-wallclock"]
    assert suppressed == 0


def test_pragma_two_lines_above_does_not_suppress():
    findings, _ = lint_snippet(
        """\
        import time
        # repro-lint: allow[sim-wallclock]

        def stamp():
            return time.time()
        """
    )
    assert [f.rule_id for f in findings] == ["sim-wallclock"]


# -- decorated functions ------------------------------------------------
#
# Findings on a decorated ``def`` anchor at the *def* line (decorators
# sit above it), so the shipped semantics are: a pragma on the def line
# or directly above it — between the decorator and the def, or appended
# to the decorator line itself — suppresses; a pragma above the
# decorator stack does not.  (docs/static-analysis.md documents this.)


def test_pragma_on_decorated_def_line_suppresses():
    findings, suppressed = lint_snippet(
        """\
        import functools

        @functools.wraps(print)
        def build(extras=[]):  # repro-lint: allow[mutable-default]
            return extras
        """
    )
    assert findings == []
    assert suppressed == 1


def test_pragma_between_decorator_and_def_suppresses():
    findings, suppressed = lint_snippet(
        """\
        import functools

        @functools.wraps(print)
        # repro-lint: allow[mutable-default]
        def build(extras=[]):
            return extras
        """
    )
    assert findings == []
    assert suppressed == 1


def test_pragma_on_decorator_line_suppresses():
    # The decorator line is the line directly above the def, so the
    # usual line-above rule applies to it too.
    findings, suppressed = lint_snippet(
        """\
        import functools

        @functools.wraps(print)  # repro-lint: allow[mutable-default]
        def build(extras=[]):
            return extras
        """
    )
    assert findings == []
    assert suppressed == 1


def test_pragma_above_decorator_does_not_suppress():
    findings, suppressed = lint_snippet(
        """\
        import functools

        # repro-lint: allow[mutable-default]
        @functools.wraps(print)
        def build(extras=[]):
            return extras
        """
    )
    assert [f.rule_id for f in findings] == ["mutable-default"]
    assert suppressed == 0


def test_multi_rule_pragma_on_decorated_def():
    # allow[a,b] lists every rule the line needs; unlisted rules on the
    # same line still fire.
    findings, suppressed = lint_snippet(
        """\
        import functools
        import time

        @functools.wraps(print)
        def build(extras=[], when=time.time()):  # repro-lint: allow[mutable-default,sim-wallclock]
            return extras, when

        @functools.wraps(print)
        def partial(extras=[], when=time.time()):  # repro-lint: allow[mutable-default]
            return extras, when
        """
    )
    assert [f.rule_id for f in findings] == ["sim-wallclock"]
    assert suppressed == 3
