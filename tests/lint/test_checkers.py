"""Golden fixture tests: each checker against known-bad snippets.

Every test feeds an inline snippet through one checker and asserts the
exact (rule id, line) pairs, so a checker regression shows up as a
precise diff rather than a count mismatch.
"""

import textwrap

from repro.lint import (
    ForkSafetyChecker,
    IterationOrderChecker,
    MutableDefaultChecker,
    RngDisciplineChecker,
    SwallowedExceptionChecker,
    SimulatedTimeChecker,
    SourceFile,
    default_checkers,
)


def run_checker(checker, snippet, path="src/repro/module.py"):
    source = SourceFile(path, textwrap.dedent(snippet))
    assert source.parse_error is None
    return [(f.rule_id, f.line) for f in checker.check(source)]


class TestRngDiscipline:
    def test_stdlib_random_calls(self):
        hits = run_checker(
            RngDisciplineChecker(),
            """\
            import random

            def jitter():
                random.seed(0)
                return random.random() + random.uniform(0, 1)
            """,
        )
        assert hits == [
            ("rng-stdlib-random", 4),
            ("rng-stdlib-random", 5),
            ("rng-stdlib-random", 5),
        ]

    def test_from_import_random(self):
        hits = run_checker(
            RngDisciplineChecker(),
            """\
            from random import shuffle

            def scramble(items):
                shuffle(items)
            """,
        )
        assert hits == [("rng-stdlib-random", 4)]

    def test_numpy_global_state(self):
        hits = run_checker(
            RngDisciplineChecker(),
            """\
            import numpy as np

            np.random.seed(42)
            values = np.random.rand(10)
            picks = np.random.choice([1, 2, 3])
            """,
        )
        assert hits == [
            ("rng-numpy-global", 3),
            ("rng-numpy-global", 4),
            ("rng-numpy-global", 5),
        ]

    def test_numpy_random_via_from_import(self):
        hits = run_checker(
            RngDisciplineChecker(),
            """\
            from numpy import random

            random.seed(7)
            """,
        )
        assert hits == [("rng-numpy-global", 3)]

    def test_unseeded_default_rng(self):
        hits = run_checker(
            RngDisciplineChecker(),
            """\
            import numpy as np

            rng = np.random.default_rng()
            """,
        )
        assert hits == [("rng-unseeded-default-rng", 3)]

    def test_seeded_generator_usage_is_clean(self):
        hits = run_checker(
            RngDisciplineChecker(),
            """\
            import numpy as np

            rng = np.random.default_rng(42)
            seq = np.random.SeedSequence(7)
            values = rng.random(10)
            """,
        )
        assert hits == []

    def test_unseeded_allowed_in_utils_rng(self):
        hits = run_checker(
            RngDisciplineChecker(),
            """\
            import numpy as np

            def spawn():
                return np.random.default_rng()
            """,
            path="src/repro/utils/rng.py",
        )
        assert hits == []

    def test_local_generator_attribute_not_confused(self):
        # ``self.random.choice`` is an object attribute, not the module.
        hits = run_checker(
            RngDisciplineChecker(),
            """\
            class Sampler:
                def pick(self, items):
                    return self.random.choice(items)
            """,
        )
        assert hits == []


class TestSimulatedTime:
    def test_wallclock_in_simulator_dir(self):
        hits = run_checker(
            SimulatedTimeChecker(),
            """\
            import time

            def now_ms():
                return time.time() * 1000.0
            """,
            path="src/repro/simulator/engine.py",
        )
        assert hits == [("sim-wallclock", 4)]

    def test_perf_counter_reference_without_call(self):
        # Passing the function object is as dangerous as calling it.
        hits = run_checker(
            SimulatedTimeChecker(),
            """\
            import time

            clock = time.perf_counter
            """,
            path="src/repro/experiments/base.py",
        )
        assert hits == [("sim-wallclock", 3)]

    def test_datetime_now(self):
        hits = run_checker(
            SimulatedTimeChecker(),
            """\
            from datetime import datetime

            stamp = datetime.now()
            """,
            path="src/repro/core/coordinator.py",
        )
        assert hits == [("sim-wallclock", 3)]

    def test_out_of_scope_directory_is_clean(self):
        hits = run_checker(
            SimulatedTimeChecker(),
            """\
            import time

            def stamp():
                return time.time()
            """,
            path="src/repro/analysis/export.py",
        )
        assert hits == []

    def test_obs_profiling_is_allowed(self):
        hits = run_checker(
            SimulatedTimeChecker(),
            """\
            import time

            def perf_seconds():
                return time.perf_counter()
            """,
            path="src/repro/obs/profiling.py",
        )
        assert hits == []


class TestForkSafety:
    def test_lambda_to_map_tasks(self):
        hits = run_checker(
            ForkSafetyChecker(),
            """\
            from repro.runtime.scheduler import map_tasks

            results = map_tasks(lambda x: x + 1, [1, 2, 3])
            """,
        )
        assert hits == [("fork-unsafe-task", 3)]

    def test_nested_function(self):
        hits = run_checker(
            ForkSafetyChecker(),
            """\
            from repro.runtime.scheduler import map_tasks

            def run(points):
                def unit(point):
                    return point * 2
                return map_tasks(unit, points)
            """,
        )
        assert hits == [("fork-unsafe-task", 6)]

    def test_lambda_bound_name(self):
        hits = run_checker(
            ForkSafetyChecker(),
            """\
            from repro.runtime.scheduler import map_tasks

            unit = lambda point: point * 2
            results = map_tasks(unit, [1, 2])
            """,
        )
        assert hits == [("fork-unsafe-task", 4)]

    def test_bound_method_to_scheduler_map(self):
        hits = run_checker(
            ForkSafetyChecker(),
            """\
            from repro.runtime import TaskScheduler

            class Runner:
                def unit(self, point):
                    return point

                def run(self, points):
                    scheduler = TaskScheduler(4)
                    return scheduler.map(self.unit, points)
            """,
        )
        assert hits == [("fork-unsafe-task", 9)]

    def test_partial_of_lambda(self):
        hits = run_checker(
            ForkSafetyChecker(),
            """\
            from functools import partial
            from repro.runtime.scheduler import map_tasks

            results = map_tasks(partial(lambda x, y: x + y, 1), [1, 2])
            """,
        )
        assert hits == [("fork-unsafe-task", 4)]

    def test_module_level_function_is_clean(self):
        hits = run_checker(
            ForkSafetyChecker(),
            """\
            from repro.runtime.scheduler import map_tasks

            def unit(point):
                return point * 2

            def run(points):
                return map_tasks(unit, points)
            """,
        )
        assert hits == []

    def test_unrelated_map_call_ignored(self):
        hits = run_checker(
            ForkSafetyChecker(),
            """\
            mapped = map(lambda x: x, [1, 2])
            results = [].map
            """,
        )
        assert hits == []


class TestIterationOrder:
    def test_unsorted_listdir(self):
        hits = run_checker(
            IterationOrderChecker(),
            """\
            import os

            for name in os.listdir("results"):
                print(name)
            """,
        )
        assert hits == [("iter-order", 3)]

    def test_sorted_listdir_is_clean(self):
        hits = run_checker(
            IterationOrderChecker(),
            """\
            import os
            import glob

            for name in sorted(os.listdir("results")):
                print(name)
            files = sorted(glob.glob("*.json"))
            """,
        )
        assert hits == []

    def test_unsorted_glob(self):
        hits = run_checker(
            IterationOrderChecker(),
            """\
            import glob

            files = glob.glob("*.json")
            """,
        )
        assert hits == [("iter-order", 3)]

    def test_pathlib_iterdir(self):
        hits = run_checker(
            IterationOrderChecker(),
            """\
            from pathlib import Path

            for entry in Path("results").iterdir():
                print(entry)
            """,
        )
        assert hits == [("iter-order", 3)]

    def test_set_iteration_in_for_loop(self):
        hits = run_checker(
            IterationOrderChecker(),
            """\
            nodes = [3, 1, 2]
            for node in set(nodes):
                print(node)
            """,
        )
        assert hits == [("iter-order", 2)]

    def test_set_literal_into_list(self):
        hits = run_checker(
            IterationOrderChecker(),
            """\
            order = list({"b", "a"})
            """,
        )
        assert hits == [("iter-order", 1)]

    def test_unsorted_scandir(self):
        hits = run_checker(
            IterationOrderChecker(),
            """\
            import os

            for entry in os.scandir("results"):
                print(entry.name)
            """,
        )
        assert hits == [("iter-order", 3)]

    def test_unsorted_fwalk(self):
        hits = run_checker(
            IterationOrderChecker(),
            """\
            import os

            for root, dirs, files, fd in os.fwalk("results"):
                print(root)
            """,
        )
        assert hits == [("iter-order", 3)]

    def test_bare_pathlib_glob_and_rglob(self):
        hits = run_checker(
            IterationOrderChecker(),
            """\
            from pathlib import Path

            found = Path("results").glob("*.json")
            nested = Path("results").rglob("*.csv")
            """,
        )
        assert hits == [("iter-order", 3), ("iter-order", 4)]

    def test_pathlib_walk(self):
        hits = run_checker(
            IterationOrderChecker(),
            """\
            from pathlib import Path

            for root, dirs, files in Path("results").walk():
                print(root)
            """,
        )
        assert hits == [("iter-order", 3)]

    def test_sorted_scandir_and_glob_are_clean(self):
        hits = run_checker(
            IterationOrderChecker(),
            """\
            import os
            from pathlib import Path

            for entry in sorted(os.scandir("results"), key=lambda e: e.name):
                print(entry.name)
            files = sorted(Path("results").glob("*.json"))
            deep = sorted(Path("results").rglob("*.csv"))
            """,
        )
        assert hits == []

    def test_set_membership_and_sorted_are_clean(self):
        hits = run_checker(
            IterationOrderChecker(),
            """\
            down = set([1, 2, 3])
            if 1 in down:
                print("down")
            for node in sorted({3, 1}):
                print(node)
            count = len({1, 2})
            """,
        )
        assert hits == []


class TestMutableDefaults:
    def test_list_dict_set_literals(self):
        hits = run_checker(
            MutableDefaultChecker(),
            """\
            def a(x=[]):
                return x

            def b(y={}):
                return y

            def c(*, z={1}):
                return z
            """,
        )
        assert hits == [
            ("mutable-default", 1),
            ("mutable-default", 4),
            ("mutable-default", 7),
        ]

    def test_constructor_calls(self):
        hits = run_checker(
            MutableDefaultChecker(),
            """\
            from collections import defaultdict

            def f(bag=list(), table=defaultdict(int)):
                return bag, table
            """,
        )
        assert hits == [("mutable-default", 3), ("mutable-default", 3)]

    def test_immutable_defaults_are_clean(self):
        hits = run_checker(
            MutableDefaultChecker(),
            """\
            def f(x=None, y=(), z="name", k=7):
                return x, y, z, k
            """,
        )
        assert hits == []


class TestSwallowedException:
    def test_silent_broad_handlers_flagged(self):
        hits = run_checker(
            SwallowedExceptionChecker(),
            """\
            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    pass

            def probe():
                try:
                    return 1
                except:
                    return None
            """,
        )
        assert hits == [
            ("swallowed-exception", 4),
            ("swallowed-exception", 10),
        ]

    def test_broad_name_in_tuple_flagged(self):
        hits = run_checker(
            SwallowedExceptionChecker(),
            """\
            def f():
                try:
                    g()
                except (ValueError, Exception):
                    return None
            """,
        )
        assert hits == [("swallowed-exception", 4)]

    def test_narrow_handler_is_clean(self):
        hits = run_checker(
            SwallowedExceptionChecker(),
            """\
            def f(path):
                try:
                    return open(path).read()
                except FileNotFoundError:
                    return ""
            """,
        )
        assert hits == []

    def test_reraise_is_clean(self):
        hits = run_checker(
            SwallowedExceptionChecker(),
            """\
            def f():
                try:
                    g()
                except Exception as exc:
                    raise RuntimeError("wrapped") from exc
            """,
        )
        assert hits == []

    def test_logged_handler_is_clean(self):
        hits = run_checker(
            SwallowedExceptionChecker(),
            """\
            import logging

            log = logging.getLogger(__name__)

            def f():
                try:
                    g()
                except Exception:
                    log.warning("g failed, continuing")
            """,
        )
        assert hits == []

    def test_warnings_and_traceback_reports_are_clean(self):
        hits = run_checker(
            SwallowedExceptionChecker(),
            """\
            import traceback
            import warnings

            def f():
                try:
                    g()
                except Exception:
                    warnings.warn("g failed")

            def h():
                try:
                    g()
                except BaseException:
                    traceback.print_exc()
            """,
        )
        assert hits == []

    def test_nested_raise_counts_as_handled(self):
        hits = run_checker(
            SwallowedExceptionChecker(),
            """\
            def f(strict):
                try:
                    g()
                except Exception:
                    if strict:
                        raise
            """,
        )
        assert hits == []

def test_every_checker_declares_distinct_rules():
    seen = {}
    for checker in default_checkers():
        assert checker.rules, checker.name
        for rule in checker.rules:
            assert rule.rule_id not in seen, (
                f"rule {rule.rule_id} declared by both "
                f"{seen[rule.rule_id]} and {checker.name}"
            )
            seen[rule.rule_id] = checker.name
    assert len(seen) == 8
