"""The interprocedural dimensional analysis and its four rules.

Golden fixtures mirror ``tests/lint/test_effects.py``: each test
builds a miniature ``src/repro`` tree of in-memory
:class:`SourceFile` objects, runs the analysis, and asserts exact
(rule id, path, line) triples plus the provenance chain rendered in
the message.
"""

import json
import textwrap

import pytest

from repro.cli import main
from repro.lint import SourceFile
from repro.lint.project import ProjectModel
from repro.lint.units import (
    MAGIC_UNIT_CONVERSION,
    TIME_DOMAIN_MIXING,
    UNIT_MISMATCH,
    UNITLESS_DURATION_BOUNDARY,
    Unit,
    analyze_units,
    join,
    unit_findings,
    unit_from_name,
    unit_report,
    unit_rule_catalog,
)


def make_source(path, snippet):
    source = SourceFile(path, textwrap.dedent(snippet))
    assert source.parse_error is None
    return source


def build_analysis(*path_snippets):
    sources = [make_source(path, text) for path, text in path_snippets]
    return analyze_units(ProjectModel.build(sources))


def unit_triples(analysis):
    findings = unit_findings(analysis)
    return [(f.rule_id, f.path, f.line) for f in findings], findings


# A seconds budget flowing into a milliseconds slot across a call.
MISMATCH = (
    "src/repro/exp/sched.py",
    """\
    def wait_for(timeout_ms):
        return timeout_ms


    def run(budget_s):
        return wait_for(budget_s)
    """,
)

# Sim-clock minus host-clock: the classic cross-domain drift bug.
CLOCKS = (
    "src/repro/exp/clocks.py",
    """\
    from repro.obs.profiling import perf_seconds


    def stamp():
        return perf_seconds()


    def drift(queue):
        started = stamp()
        return queue.now_ms - started
    """,
)


class TestLattice:
    def test_join_is_commutative_and_tops_out_at_mixed(self):
        ms = Unit(scale="ms")
        s = Unit(scale="s", domain="host")
        assert join(ms, Unit()) == ms
        assert join(ms, s) == join(s, ms)
        assert join(ms, s).scale == "mixed"
        assert join(ms, s).domain == "host"

    def test_name_inference_suffixes_and_roles(self):
        assert unit_from_name("rtt_ms") == Unit("ms", None, "duration")
        assert unit_from_name("task_timeout_s") == Unit(
            "s", None, "duration"
        )
        assert unit_from_name("created_unix") == Unit(
            "s", "epoch", "timestamp"
        )
        assert unit_from_name("deadline_ms").role == "timestamp"
        assert unit_from_name("num_caches").is_empty()

    def test_dimensionless_suffixes_beat_time_words(self):
        # `wall_ratio` names a proportion of wall time, not a time.
        assert unit_from_name("wall_ratio").is_empty()
        assert unit_from_name("request_rate_rps").is_empty()


class TestUnitMismatch:
    def test_seconds_into_ms_parameter_is_reported(self):
        triples, findings = unit_triples(build_analysis(MISMATCH))
        assert triples == [
            (UNIT_MISMATCH, "src/repro/exp/sched.py", 6),
        ]
        [finding] = findings
        assert "budget_s" in finding.message
        assert "'timeout_ms'" in finding.message
        assert "ms_to_s" in finding.message

    def test_sanctioned_conversion_helper_clears_the_flow(self):
        analysis = build_analysis((
            "src/repro/exp/sched.py",
            """\
            from repro.types import s_to_ms


            def wait_for(timeout_ms):
                return timeout_ms


            def run(budget_s):
                return wait_for(s_to_ms(budget_s))
            """,
        ))
        assert unit_findings(analysis) == []

    def test_cross_unit_addition_is_reported(self):
        triples, _ = unit_triples(build_analysis((
            "src/repro/exp/mix.py",
            """\
            def total(rtt_ms, pause_s):
                return rtt_ms + pause_s
            """,
        )))
        assert triples == [
            (UNIT_MISMATCH, "src/repro/exp/mix.py", 2),
        ]

    def test_assignment_to_suffixed_name_is_reported(self):
        triples, _ = unit_triples(build_analysis((
            "src/repro/exp/assign.py",
            """\
            def stash(window_s):
                budget_ms = window_s
                return budget_ms
            """,
        )))
        assert triples == [
            (UNIT_MISMATCH, "src/repro/exp/assign.py", 2),
        ]

    def test_same_unit_arithmetic_is_silent(self):
        analysis = build_analysis((
            "src/repro/exp/ok.py",
            """\
            def span(start_ms, end_ms, slack_ms):
                return end_ms - start_ms + slack_ms
            """,
        ))
        assert unit_findings(analysis) == []


class TestTimeDomainMixing:
    def test_sim_minus_host_reports_both_rules_with_chain(self):
        triples, findings = unit_triples(build_analysis(CLOCKS))
        assert triples == [
            (TIME_DOMAIN_MIXING, "src/repro/exp/clocks.py", 10),
            (UNIT_MISMATCH, "src/repro/exp/clocks.py", 10),
        ]
        mixing = findings[0]
        # The provenance chain crosses `stamp` back to the anchor.
        assert ".now_ms (simulated clock)" in mixing.message
        assert "return of repro.exp.clocks:stamp" in mixing.message
        assert "repro.obs.profiling.perf_seconds()" in mixing.message

    def test_annotation_declares_the_domain_at_a_binding(self):
        triples, findings = unit_triples(build_analysis((
            "src/repro/exp/anno.py",
            """\
            from repro.types import Seconds


            def hold(pause: Seconds):
                return pause


            def tick(queue):
                return hold(queue.now_ms)
            """,
        )))
        assert [(r, line) for r, _p, line in triples] == [
            (TIME_DOMAIN_MIXING, 9),
            (UNIT_MISMATCH, 9),
        ]
        assert "declared host-s" in findings[0].message

    def test_timestamps_within_one_domain_are_silent(self):
        analysis = build_analysis((
            "src/repro/exp/warm.py",
            """\
            def after_warmup(event, warmup_ms):
                return event.timestamp_ms >= warmup_ms
            """,
        ))
        assert unit_findings(analysis) == []


class TestMagicUnitConversion:
    def test_bare_division_of_ms_is_reported(self):
        triples, findings = unit_triples(build_analysis((
            "src/repro/exp/magic.py",
            """\
            def to_seconds(delay_ms):
                return delay_ms / 1000.0
            """,
        )))
        assert triples == [
            (MAGIC_UNIT_CONVERSION, "src/repro/exp/magic.py", 2),
        ]
        assert "repro.types.ms_to_s" in findings[0].message

    def test_bare_multiply_of_seconds_is_reported(self):
        triples, findings = unit_triples(build_analysis((
            "src/repro/exp/magic.py",
            """\
            def to_ms(window_s):
                return 1000 * window_s
            """,
        )))
        assert triples == [
            (MAGIC_UNIT_CONVERSION, "src/repro/exp/magic.py", 2),
        ]
        assert "repro.types.s_to_ms" in findings[0].message

    def test_conversion_inside_an_fstring_is_reported(self):
        triples, _ = unit_triples(build_analysis((
            "src/repro/exp/fmt.py",
            """\
            def render(duration_ms):
                return f"took {duration_ms / 1000:.1f}s"
            """,
        )))
        assert triples == [
            (MAGIC_UNIT_CONVERSION, "src/repro/exp/fmt.py", 2),
        ]

    def test_scaling_a_dimensionless_value_is_silent(self):
        analysis = build_analysis((
            "src/repro/exp/kilo.py",
            """\
            def kilo_events(events, elapsed_s):
                return events / elapsed_s / 1000.0
            """,
        ))
        # events/elapsed is a rate (dimensionless here), so the /1000
        # is unit-agnostic scaling, not a time conversion.
        assert unit_findings(analysis) == []

    def test_result_unit_flips_so_downstream_checks_still_fire(self):
        triples, _ = unit_triples(build_analysis((
            "src/repro/exp/flip.py",
            """\
            def confuse(delay_ms, other_ms):
                converted = delay_ms / 1000.0
                return converted + other_ms
            """,
        )))
        assert [(r, line) for r, _p, line in triples] == [
            (MAGIC_UNIT_CONVERSION, 2),
            (UNIT_MISMATCH, 3),
        ]


class TestUnitlessDurationBoundary:
    def test_public_bare_timeout_parameter_is_reported(self):
        triples, findings = unit_triples(build_analysis((
            "src/repro/exp/api.py",
            """\
            def schedule(timeout, payload):
                return timeout
            """,
        )))
        assert triples == [
            (UNITLESS_DURATION_BOUNDARY, "src/repro/exp/api.py", 1),
        ]
        assert "'timeout'" in findings[0].message

    def test_suffix_annotation_or_privacy_exempts(self):
        analysis = build_analysis((
            "src/repro/exp/api.py",
            """\
            from repro.types import Ms


            def fine_a(timeout_ms, payload):
                return timeout_ms


            def fine_b(timeout: Ms, payload):
                return timeout


            def _internal(timeout, payload):
                return timeout
            """,
        ))
        assert unit_findings(analysis) == []


class TestPragmas:
    def test_each_rule_is_suppressible_at_its_line(self):
        analysis = build_analysis((
            "src/repro/exp/waived.py",
            """\
            def to_seconds(delay_ms):
                return delay_ms / 1000.0  # repro-lint: allow[magic-unit-conversion]


            # repro-lint: allow[unitless-duration-boundary]
            def schedule(timeout, payload):
                return timeout


            def run(budget_s, sink):
                # repro-lint: allow[unit-mismatch]
                return to_seconds(budget_s)
            """,
        ))
        assert unit_findings(analysis) == []


class TestFixpoint:
    def test_mutual_recursion_converges_and_propagates(self):
        analysis = build_analysis((
            "src/repro/exp/rec.py",
            """\
            def ping(t_ms, n):
                if n == 0:
                    return t_ms
                return pong(t_ms, n - 1)


            def pong(t_ms, n):
                return ping(t_ms, n)
            """,
        ))
        assert unit_findings(analysis) == []
        assert analysis.summary("repro.exp.rec:ping").returns.scale == "ms"
        assert analysis.summary("repro.exp.rec:pong").returns.scale == "ms"

    def test_domain_flows_through_unsuffixed_relay_params(self):
        analysis = build_analysis((
            "src/repro/exp/relay.py",
            """\
            def relay(value, n):
                if n == 0:
                    return value
                return relay(value, n - 1)


            def entry(queue):
                return relay(queue.now_ms, 3)
            """,
        ))
        assert unit_findings(analysis) == []
        summary = analysis.summary("repro.exp.relay:relay")
        assert summary.params["value"].domain == "sim"
        assert summary.params["value"].scale == "ms"
        assert analysis.summary("repro.exp.relay:entry").returns.domain == (
            "sim"
        )
        # The recorded origin chains back to the binding site.
        assert "bound at src/repro/exp/relay.py" in summary.param_origin[
            "value"
        ]


class TestReport:
    def test_every_function_gets_a_row_with_labels(self):
        analysis = build_analysis(MISMATCH)
        payload = unit_report(analysis, unit_findings(analysis))
        rows = {row["function"]: row for row in payload["functions"]}
        assert "repro.exp.sched:<module>" in rows
        wait = rows["repro.exp.sched:wait_for"]
        assert wait["params"] == {"timeout_ms": "ms duration"}
        assert wait["returns"] == "ms duration"
        assert set(payload["rules"]) == {
            UNIT_MISMATCH, TIME_DOMAIN_MIXING, MAGIC_UNIT_CONVERSION,
            UNITLESS_DURATION_BOUNDARY,
        }

    def test_function_filter_matches_bare_names(self):
        analysis = build_analysis(MISMATCH)
        payload = unit_report(analysis, [], function="wait_for")
        assert [row["function"] for row in payload["functions"]] == [
            "repro.exp.sched:wait_for"
        ]

    def test_catalog_lists_the_four_rules(self):
        assert set(unit_rule_catalog()) == {
            UNIT_MISMATCH, TIME_DOMAIN_MIXING, MAGIC_UNIT_CONVERSION,
            UNITLESS_DURATION_BOUNDARY,
        }


@pytest.fixture
def fixture_tree(tmp_path, monkeypatch):
    """The MISMATCH/CLOCKS fixtures on disk, cwd-anchored like a repo."""
    for path, text in (MISMATCH, CLOCKS):
        target = tmp_path / path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestUnitsCli:
    def test_json_dump_is_deterministic_and_exits_zero(
        self, fixture_tree, capsys
    ):
        assert main(["lint", "units", "src", "--format", "json"]) == 0
        first = capsys.readouterr().out
        assert main(["lint", "units", "src", "--format", "json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert [f["rule"] for f in payload["findings"]] == [
            TIME_DOMAIN_MIXING, UNIT_MISMATCH, UNIT_MISMATCH,
        ]

    def test_text_mode_summarises_the_table(self, fixture_tree, capsys):
        assert main(["lint", "units", "src"]) == 0
        out = capsys.readouterr().out
        assert "functions analysed" in out
        assert "repro.exp.sched:wait_for" in out
        assert "3 unit finding(s):" in out

    def test_function_filter_from_the_cli(self, fixture_tree, capsys):
        assert main([
            "lint", "units", "src", "--function", "wait_for",
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["function"] for row in payload["functions"]] == [
            "repro.exp.sched:wait_for"
        ]

    def test_missing_path_exits_two(self, fixture_tree, capsys):
        assert main(["lint", "units", "nope"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_list_rules_includes_the_dimensional_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in unit_rule_catalog():
            assert rule_id in out


class TestGateIntegration:
    def test_unit_findings_gate_and_baseline_round_trip(
        self, fixture_tree, capsys
    ):
        assert main(["lint", "src"]) == 1
        out = capsys.readouterr().out
        assert UNIT_MISMATCH in out
        assert TIME_DOMAIN_MIXING in out

        baseline = fixture_tree / "baseline.json"
        assert main([
            "lint", "src", "--baseline", str(baseline),
            "--update-baseline",
        ]) == 0
        capsys.readouterr()
        assert main(["lint", "src", "--baseline", str(baseline)]) == 0
