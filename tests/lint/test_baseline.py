"""Baseline grandfathering: round-trip, partition, and ratchet."""

import json

import pytest

from repro.lint import Baseline, Finding


def finding(rule="sim-wallclock", path="src/a.py", line=1, message="m"):
    return Finding(rule_id=rule, path=path, line=line, message=message)


def test_round_trip(tmp_path):
    findings = [
        finding(line=3),
        finding(line=9),
        finding(rule="iter-order", path="src/b.py", line=2),
    ]
    baseline = Baseline.from_findings(findings)
    target = tmp_path / "baseline.json"
    baseline.save(target)

    loaded = Baseline.load(target)
    assert loaded.entries == {
        "src/a.py::sim-wallclock": 2,
        "src/b.py::iter-order": 1,
    }
    # Serialisation is deterministic: saving the loaded copy is a no-op.
    again = tmp_path / "again.json"
    loaded.save(again)
    assert again.read_text() == target.read_text()
    assert target.read_text().endswith("\n")


def test_partition_consumes_allowance_in_line_order():
    baseline = Baseline(entries={"src/a.py::sim-wallclock": 1})
    first, second = finding(line=3), finding(line=9)
    fresh, grandfathered = baseline.partition([first, second])
    # The allowance covers the earliest occurrence; the later one is new.
    assert grandfathered == [first]
    assert fresh == [second]


def test_partition_ignores_other_rules_and_paths():
    baseline = Baseline(entries={"src/a.py::sim-wallclock": 5})
    other = finding(rule="iter-order")
    elsewhere = finding(path="src/b.py")
    fresh, grandfathered = baseline.partition([other, elsewhere])
    assert fresh == [other, elsewhere]
    assert grandfathered == []


def test_empty_baseline_passes_everything_through():
    fresh, grandfathered = Baseline().partition([finding()])
    assert len(fresh) == 1
    assert grandfathered == []


def test_load_rejects_wrong_version(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"version": 99, "entries": {}}))
    with pytest.raises(ValueError, match="version"):
        Baseline.load(bad)


def test_load_rejects_malformed_entries(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"version": 1, "entries": {"k": "lots"}}))
    with pytest.raises(ValueError, match="malformed"):
        Baseline.load(bad)


def test_load_drops_zero_counts(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps({"version": 1, "entries": {"src/a.py::iter-order": 0}})
    )
    assert Baseline.load(path).entries == {}


class TestMergedUpdate:
    """``--update-baseline`` semantics: ratchet, preserve, prune."""

    def test_linted_files_are_superseded_by_this_runs_findings(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "a.py").touch()
        (tmp_path / "src" / "b.py").touch()
        old = Baseline(entries={
            "src/a.py::sim-wallclock": 3,   # linted again: 1 remains
            "src/b.py::iter-order": 2,      # linted again: fully fixed
        })
        updated = old.merged_update(
            [finding(line=4)],
            linted_files=["src/a.py", "src/b.py"],
            root=tmp_path,
        )
        assert updated.entries == {"src/a.py::sim-wallclock": 1}

    def test_out_of_scope_entries_are_preserved(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "a.py").touch()
        (tmp_path / "src" / "other.py").touch()
        old = Baseline(entries={"src/other.py::iter-order": 2})
        updated = old.merged_update(
            [finding(line=4)], linted_files=["src/a.py"], root=tmp_path
        )
        # A partial `repro lint src/a.py --update-baseline` must not
        # wipe the grandfathered findings of files it never looked at.
        assert updated.entries == {
            "src/a.py::sim-wallclock": 1,
            "src/other.py::iter-order": 2,
        }

    def test_entries_for_deleted_files_are_pruned(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "a.py").touch()
        old = Baseline(entries={
            "src/a.py::sim-wallclock": 1,   # exists, out of scope: kept
            "src/gone.py::iter-order": 4,   # deleted: pruned
        })
        updated = old.merged_update([], linted_files=[], root=tmp_path)
        assert updated.entries == {"src/a.py::sim-wallclock": 1}

    def test_round_trip_through_disk(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "kept.py").touch()
        old = Baseline(entries={
            "src/kept.py::iter-order": 1,
            "src/gone.py::iter-order": 1,
        })
        target = tmp_path / "baseline.json"
        old.merged_update([], linted_files=[], root=tmp_path).save(target)
        assert Baseline.load(target).entries == {
            "src/kept.py::iter-order": 1
        }
