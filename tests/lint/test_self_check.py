"""Self-check: the shipped tree satisfies its own invariants.

This is the acceptance gate: ``repro lint`` over ``src/`` must report
nothing beyond the committed ``lint_baseline.json``, and deliberately
seeding one violation into a real module must fail with the right rule
id and line.
"""

import shutil
from pathlib import Path

from repro.lint import Baseline, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_committed_baseline():
    path = REPO_ROOT / "lint_baseline.json"
    assert path.exists(), "lint_baseline.json must be committed at the root"
    return Baseline.load(path)


def test_src_tree_is_clean_against_committed_baseline():
    report = lint_paths(
        [REPO_ROOT / "src"],
        baseline=load_committed_baseline(),
        root=REPO_ROOT,
    )
    assert report.files_checked > 100
    assert report.clean, "new lint findings:\n" + "\n".join(
        f"{f.location}: {f.rule_id}: {f.message}" for f in report.findings
    )


def test_committed_baseline_is_empty():
    # The tree was fixed rather than grandfathered; keep it that way.
    assert load_committed_baseline().entries == {}


def test_seeded_violation_is_caught_with_rule_and_line(tmp_path):
    """Injecting one bare random.random() into kmeans.py fails the lint."""
    victim = REPO_ROOT / "src" / "repro" / "clustering" / "kmeans.py"
    copy_root = tmp_path / "src" / "repro" / "clustering"
    copy_root.mkdir(parents=True)
    target = copy_root / "kmeans.py"
    shutil.copy(victim, target)

    text = target.read_text()
    target.write_text(
        text
        + "\n\ndef _jitter():\n    import random\n    return random.random()\n"
    )
    # The file ends with a newline, so "\n\n" opens two blank lines and
    # the injected call lands five lines past the original last line.
    injected_line = len(text.splitlines()) + 5

    report = lint_paths(
        [tmp_path / "src"],
        baseline=load_committed_baseline(),
        root=tmp_path,
    )
    assert not report.clean
    [finding] = report.findings
    assert finding.rule_id == "rng-stdlib-random"
    assert finding.line == injected_line
    assert finding.path == "src/repro/clustering/kmeans.py"


def test_seeded_transitive_wallclock_chain_is_caught(tmp_path):
    """A helper-behind-helper clock read fails with the full call chain.

    The sink lives in a fresh ``utils/`` module (outside the per-file
    sim-wallclock directories), called through one more helper from a
    function appended to the real engine — only the cross-module pass
    can see it.
    """
    victim = REPO_ROOT / "src" / "repro" / "simulator" / "engine.py"
    sim_dir = tmp_path / "src" / "repro" / "simulator"
    utils_dir = tmp_path / "src" / "repro" / "utils"
    sim_dir.mkdir(parents=True)
    utils_dir.mkdir(parents=True)

    text = victim.read_text()
    (sim_dir / "engine.py").write_text(
        text
        + "\n\ndef _drift_probe():\n"
          "    from repro.utils.hostinfo import snapshot\n"
          "    return snapshot()\n"
    )
    (utils_dir / "hostinfo.py").write_text(
        "import time\n\n\n"
        "def snapshot():\n"
        "    return _read_clock()\n\n\n"
        "def _read_clock():\n"
        "    return time.time()\n"
    )
    anchor_line = len(text.splitlines()) + 3  # the injected def line

    report = lint_paths(
        [tmp_path / "src"],
        baseline=load_committed_baseline(),
        root=tmp_path,
    )
    assert not report.clean
    [finding] = report.findings
    assert finding.rule_id == "transitive-wallclock"
    assert finding.path == "src/repro/simulator/engine.py"
    assert finding.line == anchor_line
    assert (
        "_drift_probe -> repro.utils.hostinfo:snapshot -> _read_clock "
        "-> time.time" in finding.message
    )


def test_effects_dump_over_src_is_deterministic(monkeypatch, capsys):
    """``repro lint effects --format json`` is byte-stable (CI artifact)."""
    from repro.cli import main

    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "effects", "src", "--format", "json"]) == 0
    first = capsys.readouterr().out
    assert main(["lint", "effects", "src", "--format", "json"]) == 0
    second = capsys.readouterr().out
    assert first == second

    import json

    payload = json.loads(first)
    # The real tree is clean: every effect rule is satisfied (or the
    # site carries an audited pragma/merge-back), so the gate above
    # stays green with an *empty* committed baseline.
    assert payload["findings"] == []
    # The known entry points of the experiment suite must be visible,
    # or the four rules are running against an empty universe.
    tasks = {t["function"] for t in payload["entry_points"]["tasks"]}
    assert "repro.experiments.fig6_num_landmarks:_fig6_unit" in tasks
    handlers = payload["entry_points"]["event_handlers"]
    assert "repro.simulator.engine:SimulationEngine._handle_request" in (
        handlers
    )
    globals_by_key = {g["global"]: g for g in payload["globals"]}
    counter = globals_by_key["repro.simulator.engine:_EVENTS_TOTAL"]
    assert counter["merge_back"] is not None


def test_seeded_shared_global_write_in_task_is_caught(tmp_path):
    """An unmerged module-global write under map_tasks fails the lint.

    The walkthrough in docs/static-analysis.md: append a module-level
    counter bump to a real fork-task unit and the effect pass reports
    the full chain from the pool entry to the write.
    """
    victim = REPO_ROOT / "src" / "repro" / "experiments" / (
        "fig6_num_landmarks.py"
    )
    copy_root = tmp_path / "src" / "repro" / "experiments"
    copy_root.mkdir(parents=True)
    target = copy_root / "fig6_num_landmarks.py"
    text = victim.read_text()
    target.write_text(
        text
        + "\n\n_UNITS_DONE = {}\n\n\n"
          "def _tally(point):\n"
          "    _UNITS_DONE[point] = True\n"
    )
    (tmp_path / "src" / "repro" / "experiments" / "__init__.py").touch()

    report = lint_paths([tmp_path / "src"], root=tmp_path)
    effect_findings = [
        f for f in report.findings
        if f.rule_id == "shared-mutable-global"
    ]
    # _tally is defined but never dispatched: defining shared state is
    # not the violation — *reaching* it from a fork task is.
    assert effect_findings == []

    target.write_text(
        target.read_text().replace(
            "def _fig6_unit(", "def _fig6_unit_orig(", 1
        )
        + "\n\ndef _fig6_unit(*args):\n"
          "    _tally(args)\n"
          "    return _fig6_unit_orig(*args)\n"
    )
    report = lint_paths([tmp_path / "src"], root=tmp_path)
    effect_findings = [
        f for f in report.findings
        if f.rule_id == "shared-mutable-global"
    ]
    assert effect_findings, "the seeded task-reachable write must fire"
    assert any(
        "_UNITS_DONE" in f.message and "_tally" in f.message
        for f in effect_findings
    )


def test_units_dump_over_src_is_deterministic(monkeypatch, capsys):
    """``repro lint units --format json`` is byte-stable (CI artifact)."""
    from repro.cli import main

    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "units", "src", "--format", "json"]) == 0
    first = capsys.readouterr().out
    assert main(["lint", "units", "src", "--format", "json"]) == 0
    second = capsys.readouterr().out
    assert first == second

    import json

    payload = json.loads(first)
    # The real tree is dimensionally clean: every ms<->s flow is
    # converted through repro.types and the clocks never mix, so the
    # gate stays green with an *empty* committed baseline.
    assert payload["findings"] == []
    # Every function in the model carries a unit summary row.
    rows = {row["function"]: row for row in payload["functions"]}
    assert len(rows) > 1000
    # Known anchors resolve to the expected lattice points.
    assert rows["repro.obs.profiling:perf_seconds"]["returns"] == (
        "host-s timestamp"
    )
    flush = rows["repro.obs.sampler:MetricsSampler.flush"]
    assert flush["params"]["tick_ms"] == "ms"
    backoff = rows["repro.faults.model:FaultModel.backoff_ms"]
    assert backoff["returns"] == "ms duration"


def test_seeded_unit_mismatch_in_figure_runner_is_caught(tmp_path):
    """A seconds slot fed milliseconds inside a real runner fails lint.

    The walkthrough in docs/static-analysis.md: append a helper pair to
    fig6 where a ``*_ms`` budget flows into a ``*_s`` window parameter —
    only the interprocedural binding check can see it.
    """
    victim = REPO_ROOT / "src" / "repro" / "experiments" / (
        "fig6_num_landmarks.py"
    )
    copy_root = tmp_path / "src" / "repro" / "experiments"
    copy_root.mkdir(parents=True)
    target = copy_root / "fig6_num_landmarks.py"
    text = victim.read_text()
    target.write_text(
        text
        + "\n\ndef _units_probe(budget_ms):\n"
          "    return _units_consume(budget_ms)\n\n\n"
          "def _units_consume(window_s):\n"
          "    return window_s * 2\n"
    )
    # The file ends with a newline, so the mismatched binding (the
    # `_units_consume(budget_ms)` call) is four lines past the end.
    injected_line = len(text.splitlines()) + 4

    report = lint_paths([tmp_path / "src"], root=tmp_path)
    seeded = [
        (f.rule_id, f.line) for f in report.findings
        if f.rule_id in ("unit-mismatch", "time-domain-mixing",
                         "magic-unit-conversion",
                         "unitless-duration-boundary")
    ]
    assert seeded == [("unit-mismatch", injected_line)]


def test_wallclock_injection_into_engine_is_caught(tmp_path):
    victim = REPO_ROOT / "src" / "repro" / "simulator" / "engine.py"
    copy_root = tmp_path / "src" / "repro" / "simulator"
    copy_root.mkdir(parents=True)
    target = copy_root / "engine.py"
    text = victim.read_text()
    target.write_text(
        text + "\n\ndef _host_now():\n    import time\n    return time.time()\n"
    )
    injected_line = len(text.splitlines()) + 5

    report = lint_paths([tmp_path / "src"], root=tmp_path)
    assert [
        (f.rule_id, f.line) for f in report.findings
    ] == [("sim-wallclock", injected_line)]
