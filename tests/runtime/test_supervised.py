"""Supervised scheduler execution: retries, deadlines, SchedulerError.

The crash/timeout tasks must be module-level (picklable by reference)
and fault at most once per payload, which they coordinate through
marker files in a tmp directory — the first attempt leaves a marker
and dies, the retried attempt finds it and completes.
"""

import os
import time
from pathlib import Path

import pytest

from repro.errors import SchedulerError
from repro.runtime.cache import reset_cache
from repro.runtime.scheduler import TaskScheduler


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_cache()
    yield
    reset_cache()


def _square(x):
    return x * x


def _crash_once(payload):
    """Die hard (os._exit) on the first attempt of flagged payloads."""
    x = payload["x"]
    if payload.get("kill"):
        marker = Path(payload["dir"]) / f"kill-{x}.marker"
        if not marker.exists():
            marker.write_text("died here")
            os._exit(86)
    return x * x


def _crash_always(payload):
    os._exit(86)


def _stall_once(payload):
    """Outlive any reasonable deadline on the first flagged attempt."""
    x = payload["x"]
    if payload.get("stall"):
        marker = Path(payload["dir"]) / f"stall-{x}.marker"
        if not marker.exists():
            marker.write_text("stalled here")
            time.sleep(30.0)
    return x + 100


def _raise_value_error(payload):
    raise ValueError(f"unit {payload} objects")


def _return_unpicklable(x):
    return lambda: x  # a result that cannot cross the process boundary


class _RetryRecorder:
    """Minimal perf hook capturing the retry protocol."""

    def __init__(self):
        self.retries = []
        self.tasks = []

    def on_map_begin(self, total):
        self.total = total

    def record_task(self, index, perf, cache_delta=None):
        self.tasks.append(index)

    def on_map_end(self, elapsed_s):
        self.elapsed = elapsed_s

    def record_retry(self, index, kind):
        self.retries.append((index, kind))


class TestCrashRecovery:
    def test_killed_worker_is_retried_and_results_match_serial(
        self, tmp_path
    ):
        payloads = [
            {"x": x, "dir": str(tmp_path), "kill": x == 1}
            for x in range(5)
        ]
        with TaskScheduler(2, retry_backoff_s=0.01) as scheduler:
            values = scheduler.map(_crash_once, payloads)
        assert values == [x * x for x in range(5)]
        assert scheduler.retry_stats()["retries"] >= 1
        assert scheduler.retry_stats()["timeouts"] == 0

    def test_every_inflight_task_is_charged_once_per_crash(self, tmp_path):
        payloads = [
            {"x": x, "dir": str(tmp_path), "kill": x == 0}
            for x in range(4)
        ]
        recorder = _RetryRecorder()
        from repro.runtime.scheduler import set_perf_hook

        previous = set_perf_hook(recorder)
        try:
            with TaskScheduler(2, retry_backoff_s=0.01) as scheduler:
                values = scheduler.map(_crash_once, payloads)
        finally:
            set_perf_hook(previous)
        assert values == [0, 1, 4, 9]
        assert recorder.retries, "the crash must reach the perf hook"
        assert all(kind == "crash" for _index, kind in recorder.retries)
        # Every task eventually completed and reported its perf record.
        assert sorted(set(recorder.tasks)) == [0, 1, 2, 3]

    def test_retry_exhaustion_raises_scheduler_error(self, tmp_path):
        with TaskScheduler(
            2, max_retries=1, retry_backoff_s=0.01
        ) as scheduler:
            with pytest.raises(SchedulerError) as excinfo:
                scheduler.map(_crash_always, [{"x": 1}, {"x": 2}])
        error = excinfo.value
        assert error.attempts == 2  # initial + max_retries
        assert "_crash_always" in error.qualname
        assert "worker crashed" in error.last_error
        assert error.task_index >= 0

    def test_pool_is_rebuilt_and_reusable_after_a_crash(self, tmp_path):
        payloads = [
            {"x": x, "dir": str(tmp_path), "kill": x == 2}
            for x in range(4)
        ]
        with TaskScheduler(2, retry_backoff_s=0.01) as scheduler:
            first = scheduler.map(_crash_once, payloads)
            # The next fan reuses the rebuilt pool without incident.
            second = scheduler.map(_square, [5, 6, 7])
        assert first == [0, 1, 4, 9]
        assert second == [25, 36, 49]


class TestDeadlines:
    def test_stalled_worker_is_timed_out_and_retried(self, tmp_path):
        payloads = [
            {"x": x, "dir": str(tmp_path), "stall": x == 1}
            for x in range(3)
        ]
        with TaskScheduler(
            2, task_timeout_s=0.8, max_retries=2, retry_backoff_s=0.01
        ) as scheduler:
            values = scheduler.map(_stall_once, payloads)
        assert values == [100, 101, 102]
        assert scheduler.retry_stats()["timeouts"] >= 1

    def test_timeout_exhaustion_raises_scheduler_error(self):
        with TaskScheduler(
            2, task_timeout_s=0.5, max_retries=1, retry_backoff_s=0.01
        ) as scheduler:
            with pytest.raises(SchedulerError) as excinfo:
                scheduler.map(_stall_forever, [{"x": 0}, {"x": 1}])
        assert "deadline" in str(excinfo.value)
        assert excinfo.value.attempts == 2


def _stall_forever(payload):
    if payload["x"] == 1:
        time.sleep(30.0)
    return payload["x"]


class TestErrorTaxonomy:
    def test_task_exceptions_propagate_unwrapped(self):
        with TaskScheduler(2, retry_backoff_s=0.01) as scheduler:
            with pytest.raises(ValueError, match="objects"):
                scheduler.map(_raise_value_error, [{"a": 1}, {"a": 2}])
        # No retries are charged for deterministic task errors.
        assert scheduler.retry_stats() == {"retries": 0, "timeouts": 0}

    def test_unpicklable_result_raises_scheduler_error(self):
        with TaskScheduler(2, retry_backoff_s=0.01) as scheduler:
            with pytest.raises(SchedulerError, match="process boundary"):
                scheduler.map(_return_unpicklable, [1, 2])

    def test_invalid_supervision_parameters_rejected(self):
        with pytest.raises(ValueError):
            TaskScheduler(2, task_timeout_s=0.0)
        with pytest.raises(ValueError):
            TaskScheduler(2, max_retries=-1)
        with pytest.raises(ValueError):
            TaskScheduler(2, retry_backoff_s=-0.1)


class TestClose:
    def test_close_is_idempotent(self):
        scheduler = TaskScheduler(2)
        scheduler.map(_square, [1, 2])
        scheduler.close()
        scheduler.close()
        assert scheduler._executor is None

    def test_close_after_broken_pool_does_not_leak_or_raise(self):
        scheduler = TaskScheduler(2, max_retries=0, retry_backoff_s=0.0)
        with pytest.raises(SchedulerError):
            scheduler.map(_crash_always, [{"x": 1}, {"x": 2}])
        # The broken executor was discarded during recovery, so close
        # finds nothing to tear down — and stays callable.
        assert scheduler._executor is None
        scheduler.close()
        scheduler.close()

    def test_close_is_usable_across_pool_rebuilds(self, tmp_path):
        payloads = [
            {"x": x, "dir": str(tmp_path), "kill": x == 0}
            for x in range(3)
        ]
        scheduler = TaskScheduler(2, retry_backoff_s=0.01)
        try:
            assert scheduler.map(_crash_once, payloads) == [0, 1, 4]
        finally:
            scheduler.close()
        assert scheduler._executor is None
