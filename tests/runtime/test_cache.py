"""Tests for the content-keyed testbed cache."""

import pytest

from repro.runtime import cache as runtime_cache
from repro.runtime.cache import (
    CACHE_FORMAT_VERSION,
    cached_network,
    configure_cache,
    get_cache,
    network_key,
    reset_cache,
    stats_delta,
)

# Aliased so pytest does not try to collect the ``TestbedCache`` class
# and ``testbed_key`` function (their names match its test patterns).
Cache = runtime_cache.TestbedCache
make_testbed_key = runtime_cache.testbed_key


@pytest.fixture(autouse=True)
def fresh_cache():
    """Isolate each test from the process-wide cache."""
    reset_cache()
    yield
    reset_cache()


class TestTestbedCache:
    def test_build_then_hit(self):
        cache = Cache()
        calls = []
        first = cache.get_or_build("k", lambda: calls.append(1) or "value")
        second = cache.get_or_build("k", lambda: calls.append(1) or "other")
        assert first == second == "value"
        assert calls == [1]
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction(self):
        cache = Cache(max_entries=2)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)
        cache.get_or_build("a", lambda: 0)  # refresh a
        cache.get_or_build("c", lambda: 3)  # evicts b
        assert cache.stats()["evictions"] == 1
        builds = []
        cache.get_or_build("b", lambda: builds.append(1) or 2)
        assert builds == [1]

    def test_shrink_evicts(self):
        cache = Cache(max_entries=3)
        for key in "abc":
            cache.get_or_build(key, lambda: key)
        cache.set_max_entries(1)
        assert len(cache) == 1
        assert cache.stats()["evictions"] == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Cache(max_entries=0)
        with pytest.raises(ValueError):
            Cache().set_max_entries(0)

    def test_disk_round_trip(self, tmp_path):
        writer = Cache(disk_dir=tmp_path)
        built = writer.get_or_build("key", lambda: {"payload": [1, 2, 3]})
        assert writer.stats()["disk_stores"] == 1

        reader = Cache(disk_dir=tmp_path)
        loaded = reader.get_or_build("key", lambda: pytest.fail("rebuilt"))
        assert loaded == built
        assert reader.stats()["disk_hits"] == 1
        assert reader.stats()["misses"] == 0

    def test_clear_memory_keeps_disk(self, tmp_path):
        cache = Cache(disk_dir=tmp_path)
        cache.get_or_build("key", lambda: "v")
        cache.clear_memory()
        assert len(cache) == 0
        value = cache.get_or_build("key", lambda: pytest.fail("rebuilt"))
        assert value == "v"

    def test_stats_delta(self):
        before = {"hits": 2, "misses": 1}
        after = {"hits": 5, "misses": 1, "evictions": 3}
        assert stats_delta(before, after) == {
            "hits": 3, "misses": 0, "evictions": 3,
        }

    def test_absorb_stats(self):
        cache = Cache()
        cache.absorb_stats({"hits": 4, "disk_hits": 2})
        assert cache.stats()["hits"] == 4
        assert cache.stats()["disk_hits"] == 2


class TestKeys:
    def test_keys_embed_version_and_inputs(self):
        key = network_key(100, 7, "topology")
        assert f"v{CACHE_FORMAT_VERSION}" in key
        assert "n=100" in key and "seed=7" in key
        assert network_key(100, 7, "topology") == key
        assert network_key(101, 7, "topology") != key
        assert network_key(100, 8, "topology") != key

    def test_testbed_key_distinguishes_workload(self):
        base = make_testbed_key(50, 3, 150, 400)
        assert make_testbed_key(50, 3, 151, 400) != base
        assert make_testbed_key(50, 3, 150, 401) != base


class TestModuleCache:
    def test_configure_preserves_counters(self, tmp_path):
        get_cache().get_or_build("k", lambda: 1)
        cache = configure_cache(max_entries=4, disk_dir=tmp_path)
        assert cache is get_cache()
        assert cache.stats()["misses"] == 1
        assert cache.max_entries == 4
        assert cache.disk_dir == tmp_path

    def test_reset_gives_fresh_cache(self):
        get_cache().get_or_build("k", lambda: 1)
        fresh = reset_cache()
        assert fresh is get_cache()
        assert fresh.stats()["misses"] == 0


class TestCachedNetwork:
    def test_hit_is_same_object(self):
        first = cached_network(20, 5)
        second = cached_network(20, 5)
        assert first is second
        assert get_cache().stats()["hits"] == 1

    def test_matches_direct_build(self):
        import numpy as np

        from repro.topology.network import build_network
        from repro.utils.rng import RngFactory

        cached = cached_network(20, 5)
        direct = build_network(
            num_caches=20, seed=RngFactory(5).stream("topology")
        )
        assert np.array_equal(
            cached.distances.as_array(), direct.distances.as_array()
        )
