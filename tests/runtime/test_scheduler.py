"""Tests for the process-pool task scheduler."""

import pytest

from repro.obs.profiling import PhaseRegistry, activate, phase_timer
from repro.runtime.cache import get_cache, reset_cache
from repro.runtime.scheduler import (
    TaskScheduler,
    active_scheduler,
    map_tasks,
    use_scheduler,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_cache()
    yield
    reset_cache()


def _square(x):
    return x * x


def _timed_square(x):
    with phase_timer("square"):
        return x * x


def _cache_probe(x):
    get_cache().get_or_build(f"probe-{x % 2}", lambda: x)
    return x


def _bump_engine_counter(n):
    # Stand-in for "the task ran a simulation": bump the worker-local
    # cumulative event counter the way SimulationEngine.run does.
    from repro.simulator.engine import absorb_events

    absorb_events(n)
    return n


class TestTaskScheduler:
    def test_inline_map_preserves_order(self):
        with TaskScheduler(1) as scheduler:
            assert scheduler.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_map_preserves_order(self):
        with TaskScheduler(2) as scheduler:
            assert scheduler.map(_square, list(range(8))) == [
                x * x for x in range(8)
            ]

    def test_single_item_runs_inline(self):
        with TaskScheduler(4) as scheduler:
            assert scheduler.map(_square, [5]) == [25]
            assert scheduler._executor is None  # pool never spun up

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            TaskScheduler(0)

    def test_worker_phase_totals_merged_under_open_phase(self):
        registry = PhaseRegistry()
        with activate(registry), registry.time("fig"):
            with TaskScheduler(2) as scheduler:
                scheduler.map(_timed_square, [1, 2, 3])
        totals = registry.total_seconds()
        assert "fig/square" in totals
        assert totals["fig/square"] >= 0.0

    def test_worker_cache_stats_merged(self):
        with TaskScheduler(2) as scheduler:
            scheduler.map(_cache_probe, [1, 2, 3, 4])
        stats = get_cache().stats()
        # Every worker miss/hit is visible in the parent's counters.
        assert stats["hits"] + stats["misses"] == 4

    def test_worker_event_deltas_fold_into_parent_counter(self):
        # Worker processes bump *their* copy of the engine counter;
        # the parent must end up exactly where a serial run would.
        from repro.simulator.engine import events_total

        before = events_total()
        with TaskScheduler(2) as scheduler:
            assert scheduler.map(_bump_engine_counter, [3, 4, 5]) == [
                3, 4, 5
            ]
        assert events_total() - before == 12

    def test_shutdown_idempotent(self):
        scheduler = TaskScheduler(2)
        scheduler.map(_square, [1, 2])
        scheduler.shutdown()
        scheduler.shutdown()


class TestAmbientScheduler:
    def test_no_scheduler_runs_inline(self):
        assert active_scheduler() is None
        assert map_tasks(_square, [2, 3]) == [4, 9]

    def test_use_scheduler_routes_map_tasks(self):
        with TaskScheduler(1) as scheduler:
            with use_scheduler(scheduler):
                assert active_scheduler() is scheduler
                assert map_tasks(_square, [2, 3]) == [4, 9]
            assert active_scheduler() is None
