"""TaskJournal: content keys, torn-line tolerance, scheduler resume."""

import json

import pytest

from repro.errors import JournalError
from repro.runtime import TaskScheduler
from repro.runtime.cache import reset_cache
from repro.runtime.journal import (
    TaskJournal,
    callable_name,
    sweep_id_for,
    task_key,
)
from repro.runtime.scheduler import set_task_journal
from repro.utils.rng import RngFactory


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_cache()
    yield
    reset_cache()


def _unit(payload):
    rng = RngFactory(payload["seed"]).stream(f"rep{payload['rep']}")
    return float(rng.random(4).sum())


def _payloads(count=6, seed=123):
    return [{"seed": seed, "rep": rep} for rep in range(count)]


def _other_unit(payload):
    return payload


class TestContentKeys:
    def test_key_depends_only_on_callable_and_payload(self):
        a = task_key(_unit, {"seed": 1, "rep": 0})
        b = task_key(_unit, {"rep": 0, "seed": 1})  # key order canonical
        assert a == b
        assert len(a) == 64

    def test_key_distinguishes_payloads_and_callables(self):
        arg = {"seed": 1, "rep": 0}
        assert task_key(_unit, arg) != task_key(_unit, {"seed": 1, "rep": 1})
        assert task_key(_unit, arg) != task_key(_other_unit, arg)

    def test_unserialisable_payload_raises_journal_error(self):
        with pytest.raises(JournalError, match="content-keyable"):
            task_key(_unit, {"bad": object()})

    def test_callable_name_is_module_qualified(self):
        assert callable_name(_unit) == f"{__name__}:_unit"

    def test_sweep_id_is_stable_and_kwarg_order_free(self):
        a = sweep_id_for("fig6", {"seed": 7, "repetitions": 2})
        b = sweep_id_for("fig6", {"repetitions": 2, "seed": 7})
        assert a == b
        assert len(a) == 12
        assert a != sweep_id_for("fig6", {"seed": 8, "repetitions": 2})
        assert a != sweep_id_for("fig5", {"seed": 7, "repetitions": 2})


class TestJournalStore:
    def test_record_and_resume_round_trip(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        writer = TaskJournal(path, resume=False)
        value = (1.5, {"nested": [1, 2]}, None)
        writer.record(_unit, {"seed": 1, "rep": 0}, value)
        assert writer.recorded == 1

        reader = TaskJournal(path, resume=True)
        hit, loaded = reader.lookup(_unit, {"seed": 1, "rep": 0})
        assert hit and loaded == value
        assert reader.hits == 1
        assert reader.lookup(_unit, {"seed": 1, "rep": 99}) == (False, None)

    def test_record_only_mode_never_serves_lookups(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        TaskJournal(path).record(_unit, {"seed": 1, "rep": 0}, 42.0)
        recorder = TaskJournal(path, resume=False)
        assert recorder.completed == 1
        assert recorder.lookup(_unit, {"seed": 1, "rep": 0}) == (False, None)
        assert recorder.hits == 0

    def test_record_is_idempotent_per_content_key(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = TaskJournal(path)
        for _ in range(3):
            journal.record(_unit, {"seed": 1, "rep": 0}, 42.0)
        assert journal.recorded == 1
        assert len(path.read_text().splitlines()) == 1

    def test_torn_final_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = TaskJournal(path)
        journal.record(_unit, {"seed": 1, "rep": 0}, 1.0)
        journal.record(_unit, {"seed": 1, "rep": 1}, 2.0)
        with path.open("a") as handle:
            handle.write('{"v": 1, "key": "abc", "val')  # torn append

        survivor = TaskJournal(path, resume=True)
        assert survivor.completed == 2
        assert survivor.torn_lines == 1
        assert survivor.lookup(_unit, {"seed": 1, "rep": 1}) == (True, 2.0)

    def test_garbage_value_lines_are_skipped(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        lines = [
            json.dumps({"v": 1, "key": "k1", "value": "!!notbase64!!"}),
            json.dumps(["not", "a", "dict"]),
            json.dumps({"v": 1, "key": 5, "value": "QQ=="}),
        ]
        path.write_text("\n".join(lines) + "\n")
        journal = TaskJournal(path, resume=True)
        assert journal.completed == 0
        assert journal.torn_lines == 3

    def test_missing_file_is_an_empty_journal(self, tmp_path):
        journal = TaskJournal(tmp_path / "absent.jsonl", resume=True)
        assert journal.completed == 0
        assert journal.lookup(_unit, {"seed": 1, "rep": 0}) == (False, None)


class TestSchedulerResume:
    def _run(self, journal, jobs=2):
        previous = set_task_journal(journal)
        try:
            with TaskScheduler(jobs, retry_backoff_s=0.01) as scheduler:
                return scheduler.map(_unit, _payloads())
        finally:
            set_task_journal(previous)

    def test_partial_journal_resumes_only_missing_units(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with TaskScheduler(1) as scheduler:
            expected = scheduler.map(_unit, _payloads())

        # Simulate an interrupted sweep: only the first 4 units landed.
        seeded = TaskJournal(path)
        for payload, value in zip(_payloads()[:4], expected[:4]):
            seeded.record(_unit, payload, value)

        resumed = TaskJournal(path, resume=True)
        values = self._run(resumed)
        assert values == expected
        assert resumed.hits == 4
        assert resumed.recorded == len(_payloads()) - 4
        # The journal is now complete: a further resume runs nothing.
        completed = TaskJournal(path, resume=True)
        assert self._run(completed) == expected
        assert completed.hits == len(_payloads())
        assert completed.recorded == 0

    def test_journal_records_under_serial_inline_path_too(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = TaskJournal(path)
        values = self._run(journal, jobs=1)
        assert journal.recorded == len(_payloads())
        assert TaskJournal(path, resume=True).completed == len(values)

    def test_resume_is_jobs_level_independent(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        self._run(TaskJournal(path), jobs=4)
        resumed = TaskJournal(path, resume=True)
        values = self._run(resumed, jobs=2)
        with TaskScheduler(1) as scheduler:
            assert values == scheduler.map(_unit, _payloads())
        assert resumed.hits == len(_payloads())
        assert resumed.recorded == 0
