"""Deterministic chaos: pure plans, and faulted runs == clean runs.

The end-to-end tests drive real fork pools with a ChaosPolicy
installed, so work units must be module-level (picklable by
reference).  Seed/rate pairs used here are pinned to combinations
verified to actually kill something — see the plan-determinism tests.
"""

import pytest

from repro.errors import ConfigurationError
from repro.runtime import TaskScheduler, map_tasks, use_scheduler
from repro.runtime import chaos as chaos_module
from repro.runtime.cache import reset_cache
from repro.runtime.chaos import ChaosAction, ChaosConfig, ChaosPolicy
from repro.runtime.scheduler import set_chaos_policy
from repro.sanitize import diff_ledgers, sanitize
from repro.utils.rng import RngFactory


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_cache()
    yield
    reset_cache()


@pytest.fixture()
def no_ambient_policy():
    """Guarantee the hook slot is clean before and after each test."""
    previous = set_chaos_policy(None)
    yield
    set_chaos_policy(previous)


def _unit(payload):
    """A science unit: draws from content-keyed streams, like the suite."""
    rng = RngFactory(payload["seed"]).stream(f"rep{payload['rep']}")
    return float(rng.random(4).sum()) + float(rng.integers(0, 100))


def _payloads(count=9, seed=123):
    return [{"seed": seed, "rep": rep} for rep in range(count)]


def _killing_policy(kill_rate=0.25, seed=0, **overrides):
    policy = ChaosPolicy(
        ChaosConfig(kill_rate=kill_rate, seed=seed, **overrides)
    )
    assert policy.preview(len(_payloads()))["kills"], (
        "test seed/rate must actually kill — re-pin via 'repro chaos plan'"
    )
    return policy


class TestPlan:
    def test_plan_is_deterministic_and_pure(self):
        a = ChaosPolicy(ChaosConfig(kill_rate=0.3, delay_rate=0.3, seed=42))
        b = ChaosPolicy(ChaosConfig(kill_rate=0.3, delay_rate=0.3, seed=42))
        for index in range(20):
            for attempt in range(3):
                assert a.plan(index, attempt) == b.plan(index, attempt)
        # Repeated calls on ONE policy are stable too (no stream state).
        assert a.plan(5, 0) == a.plan(5, 0)

    def test_plan_is_independent_of_query_order(self):
        policy = ChaosPolicy(ChaosConfig(kill_rate=0.5, seed=7))
        forward = [policy.plan(i, 0) for i in range(10)]
        fresh = ChaosPolicy(ChaosConfig(kill_rate=0.5, seed=7))
        backward = [fresh.plan(i, 0) for i in reversed(range(10))]
        assert forward == list(reversed(backward))

    def test_different_seeds_give_different_plans(self):
        count = 64
        a = ChaosPolicy(ChaosConfig(kill_rate=0.5, seed=1)).preview(count)
        b = ChaosPolicy(ChaosConfig(kill_rate=0.5, seed=2)).preview(count)
        assert a != b

    def test_faults_are_quiet_past_the_per_task_budget(self):
        policy = ChaosPolicy(ChaosConfig(kill_rate=1.0, faults_per_task=1))
        assert policy.plan(0, 0).kill
        assert policy.plan(0, 1).quiet
        eager = ChaosPolicy(ChaosConfig(kill_rate=1.0, faults_per_task=2))
        assert eager.plan(0, 1).kill
        assert eager.plan(0, 2).quiet

    def test_zero_faults_per_task_disables_injection(self):
        policy = ChaosPolicy(ChaosConfig(kill_rate=1.0, faults_per_task=0))
        assert policy.preview(10) == {"kills": [], "delays": []}

    def test_preview_reports_kills_and_delays(self):
        policy = ChaosPolicy(
            ChaosConfig(kill_rate=1.0, delay_rate=1.0, delay_s=0.01)
        )
        plan = policy.preview(3)
        assert plan["kills"] == [0, 1, 2]
        assert plan["delays"] == [0, 1, 2]

    def test_planning_never_perturbs_science_streams(self):
        """Chaos entropy is quarantined in the isolated "faults" fork:
        however much the policy draws, science streams replay exactly."""
        baseline = RngFactory(5).stream("workload").random(8).tolist()
        policy = ChaosPolicy(ChaosConfig(kill_rate=0.5, seed=5))
        factory = RngFactory(5)
        policy.preview(25)  # interleave heavy chaos planning
        replayed = factory.stream("workload").random(8).tolist()
        assert replayed == baseline


class TestConfigValidation:
    @pytest.mark.parametrize("field, value", [
        ("kill_rate", -0.1),
        ("kill_rate", 1.5),
        ("delay_rate", 2.0),
        ("delay_s", -1.0),
        ("faults_per_task", -1),
    ])
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError, match=field):
            ChaosPolicy(ChaosConfig(**{field: value}))

    def test_action_quiet(self):
        assert ChaosAction().quiet
        assert not ChaosAction(kill=True).quiet
        assert not ChaosAction(delay_s=0.01).quiet


class TestChaosUnderThePool:
    def run_clean_serial(self):
        with TaskScheduler(1) as scheduler, use_scheduler(scheduler):
            return scheduler.map(_unit, _payloads())

    def test_killed_workers_retry_to_clean_values(self, no_ambient_policy):
        expected = self.run_clean_serial()
        set_chaos_policy(_killing_policy())
        with TaskScheduler(
            2, max_retries=5, retry_backoff_s=0.01
        ) as scheduler, use_scheduler(scheduler):
            values = map_tasks(_unit, _payloads())
        assert values == expected
        assert scheduler.retry_stats()["retries"] >= 1

    def test_delays_are_injected_and_counted(self, no_ambient_policy):
        expected = self.run_clean_serial()
        before = chaos_module.delays_total()
        set_chaos_policy(ChaosPolicy(
            ChaosConfig(delay_rate=1.0, delay_s=0.01, seed=0)
        ))
        with TaskScheduler(2, retry_backoff_s=0.01) as scheduler, \
                use_scheduler(scheduler):
            values = map_tasks(_unit, _payloads())
        assert values == expected
        # Worker-local bumps rode back in TaskOutcome and were absorbed.
        assert chaos_module.delays_total() - before == len(_payloads())

    def test_chaotic_ledger_matches_clean_serial_ledger(
        self, no_ambient_policy
    ):
        with sanitize() as clean_state:
            clean_values = self.run_clean_serial()

        set_chaos_policy(_killing_policy())
        with sanitize() as chaos_state:
            with TaskScheduler(
                2, max_retries=5, retry_backoff_s=0.01
            ) as scheduler, use_scheduler(scheduler):
                chaotic_values = map_tasks(_unit, _payloads())

        assert chaotic_values == clean_values
        assert scheduler.retry_stats()["retries"] >= 1
        result = diff_ledgers(clean_state.ledger, chaos_state.ledger)
        assert result.clean, "\n" + "\n".join(
            d.describe() for d in result.divergences
        )
