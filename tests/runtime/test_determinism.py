"""Determinism guarantees of the runtime layer.

The contract the performance work rides on: parallel fan-out, testbed
caching, and the engine's sorted fast path are all *pure reshufflings*
of the same computation — every one must produce bit-identical results
to the plain serial path.
"""

import numpy as np
import pytest

from repro.experiments.base import build_testbed
from repro.experiments.fig6_num_landmarks import run_fig6
from repro.experiments.fig8_sdsl_vs_sl_size import run_fig8
from repro.experiments.suite import run_suite
from repro.experiments.registry import REGISTRY
from repro.runtime import (
    TaskScheduler,
    configure_cache,
    reset_cache,
    use_scheduler,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_cache()
    yield
    reset_cache()


def _small_fig6(**kwargs):
    kwargs.setdefault("num_caches", 40)
    kwargs.setdefault("landmark_counts", (4, 6))
    kwargs.setdefault("num_groups", 4)
    return run_fig6(**kwargs)


class TestParallelBitIdentity:
    def test_fig6_jobs4_identical_to_serial(self):
        serial = _small_fig6(repetitions=2)
        reset_cache()
        with TaskScheduler(4) as scheduler, use_scheduler(scheduler):
            parallel = _small_fig6(repetitions=2)
        # Dataclass equality compares every float exactly — any
        # re-ordering of rng streams or accumulation would show up here.
        assert parallel == serial

    def test_fig8_jobs2_identical_to_serial(self):
        kwargs = dict(
            network_sizes=(30, 40), num_landmarks=6, repetitions=1
        )
        serial = run_fig8(**kwargs)
        reset_cache()
        with TaskScheduler(2) as scheduler, use_scheduler(scheduler):
            parallel = run_fig8(**kwargs)
        assert parallel == serial

    def test_suite_archives_are_byte_identical(self, tmp_path, monkeypatch):
        monkeypatch.setitem(REGISTRY, "fig6", _small_fig6)

        serial_dir = tmp_path / "serial"
        run_suite(
            figures=["fig6"], output_dir=serial_dir,
            repetitions=1, seed=19, jobs=1,
        )
        reset_cache()
        parallel_dir = tmp_path / "parallel"
        run_suite(
            figures=["fig6"], output_dir=parallel_dir,
            repetitions=1, seed=19, jobs=4,
        )
        for name in ("fig6.json", "fig6.csv"):
            assert (
                (serial_dir / name).read_bytes()
                == (parallel_dir / name).read_bytes()
            ), f"{name} differs between jobs=1 and jobs=4"


class TestCacheTransparency:
    def test_disk_hit_equals_rebuild(self, tmp_path):
        configure_cache(disk_dir=tmp_path)
        built = build_testbed(30, 7)

        # New process-wide cache, same disk dir: the testbed comes back
        # from the pickle store instead of being rebuilt.
        reset_cache()
        configure_cache(disk_dir=tmp_path)
        loaded = build_testbed(30, 7)
        assert get_stats()["disk_hits"] == 1

        assert np.array_equal(
            built.network.distances.as_array(),
            loaded.network.distances.as_array(),
        )
        assert built.workload.requests == loaded.workload.requests

        # And it behaves identically downstream.
        from repro.core.groups import single_group
        from repro.experiments.base import run_simulation

        grouping = single_group(built.network.cache_nodes)
        fresh_run = run_simulation(built, grouping)
        cached_run = run_simulation(loaded, grouping)
        assert (
            fresh_run.average_latency_ms() == cached_run.average_latency_ms()
        )

    def test_memory_hit_is_same_object(self):
        assert build_testbed(30, 7) is build_testbed(30, 7)


def get_stats():
    from repro.runtime import get_cache

    return get_cache().stats()


class TestEngineFastPath:
    def test_sorted_loop_matches_heap_loop(self):
        from repro.core.groups import single_group
        from repro.simulator.runner import simulate

        testbed = build_testbed(25, 3, requests_per_cache=40)
        grouping = single_group(testbed.network.cache_nodes)
        fast = simulate(
            testbed.network, grouping, testbed.workload,
            event_loop="sorted",
        )
        slow = simulate(
            testbed.network, grouping, testbed.workload,
            event_loop="heap",
        )
        assert fast.average_latency_ms() == slow.average_latency_ms()
        assert fast.hit_rates() == slow.hit_rates()
        assert (
            fast.metrics.latency_p95_ms() == slow.metrics.latency_p95_ms()
        )
