"""Worker telemetry: collector math, progress heartbeat, invariants.

The load-bearing contract: enabling ``worker_perf``/``progress``/the
run registry must leave every archived result byte-identical to a plain
serial run — telemetry observes the computation, it never joins it.
"""

from __future__ import annotations

import io
import subprocess
import sys

import pytest

from repro.experiments.fig6_num_landmarks import run_fig6
from repro.experiments.registry import REGISTRY
from repro.experiments.suite import run_suite
from repro.runtime import TaskScheduler, reset_cache, use_scheduler
from repro.runtime.scheduler import map_tasks, perf_hook, set_perf_hook
from repro.runtime.telemetry import PerfCollector, ProgressReporter


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_cache()
    yield
    reset_cache()


@pytest.fixture(autouse=True)
def no_leaked_hook():
    yield
    assert perf_hook() is None, "a test leaked the scheduler perf hook"


def _small_fig6(**kwargs):
    kwargs.setdefault("num_caches", 40)
    kwargs.setdefault("landmark_counts", (4, 6))
    kwargs.setdefault("num_groups", 4)
    return run_fig6(**kwargs)


class TestPerfCollectorMath:
    def test_summary_reduces_synthetic_records(self):
        collector = PerfCollector(jobs=2)
        collector.on_map_begin(2)
        collector.record_task(
            0,
            {"wall_s": 1.0, "queue_wait_s": 0.1, "events": 100},
            {"hits": 2, "misses": 1},
        )
        collector.record_task(
            1,
            {"wall_s": 3.0, "queue_wait_s": 0.3, "events": 300},
            {"hits": 0, "misses": 0, "disk_hits": 1},
        )
        collector.on_map_end(2.5)
        summary = collector.summary()
        assert summary["worker_jobs"] == 2.0
        assert summary["worker_tasks"] == 2.0
        assert summary["worker_busy_s"] == pytest.approx(4.0)
        assert summary["worker_span_s"] == pytest.approx(2.5)
        assert summary["worker_task_mean_s"] == pytest.approx(2.0)
        assert summary["worker_task_max_s"] == pytest.approx(3.0)
        assert summary["worker_straggler_ratio"] == pytest.approx(1.5)
        # busy / (jobs * span) = 4 / 5
        assert summary["worker_utilization"] == pytest.approx(0.8)
        assert summary["worker_queue_wait_mean_s"] == pytest.approx(0.2)
        assert summary["worker_queue_wait_max_s"] == pytest.approx(0.3)
        assert summary["worker_events"] == 400.0
        assert summary["worker_events_per_sec"] == pytest.approx(160.0)
        assert summary["worker_cache_hits"] == 2.0
        assert summary["worker_cache_misses"] == 1.0
        assert summary["worker_cache_disk_hits"] == 1.0

    def test_empty_collector_yields_zeroes(self):
        summary = PerfCollector(jobs=4).summary()
        assert summary["worker_tasks"] == 0.0
        assert summary["worker_utilization"] == 0.0
        assert summary["worker_straggler_ratio"] == 0.0

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            PerfCollector(jobs=0)

    def test_retries_and_timeouts_flow_into_the_summary(self):
        collector = PerfCollector(jobs=2)
        collector.record_retry(0, kind="crash")
        collector.record_retry(1, kind="crash")
        collector.record_retry(2, kind="timeout")
        summary = collector.summary()
        assert summary["worker_retries"] == 2.0
        assert summary["worker_timeouts"] == 1.0

    def test_clean_runs_report_zero_retries(self):
        summary = PerfCollector(jobs=2).summary()
        assert summary["worker_retries"] == 0.0
        assert summary["worker_timeouts"] == 0.0

    def test_stragglers_names_outlier_task_indices(self):
        collector = PerfCollector(jobs=4)
        collector.on_map_begin(5)
        for index in range(4):
            collector.record_task(index, {"wall_s": 1.0}, None)
        collector.record_task(4, {"wall_s": 50.0}, None)
        # mean = 10.8; only the 50s task crosses 4x the mean.
        assert collector.stragglers() == [4]
        assert collector.stragglers(wall_ratio=1.0) == [4]
        assert PerfCollector(jobs=2).stragglers() == []
        with pytest.raises(ValueError):
            collector.stragglers(wall_ratio=0.0)


class TestProgressReporter:
    def test_reports_progress_and_final_line(self):
        stream = io.StringIO()
        reporter = ProgressReporter(
            label="fig6", stream=stream, interval_s=0.0
        )
        reporter.update(1, 3, events=500)
        reporter.update(3, 3, events=1500)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert "fig6" in lines[0]
        assert "1/3" in lines[0]
        assert "3/3" in lines[1] and "100%" in lines[1]
        assert "events/s" in lines[1]

    def test_throttles_between_emissions(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, interval_s=3600.0)
        for done in range(1, 5):
            reporter.update(done, 10, events=0)
        # Only the first update lands; the rest fall inside the window
        # (and none is the final task).
        assert len(stream.getvalue().strip().splitlines()) == 1


def _square(x):
    return x * x


class TestSchedulerIntegration:
    def _collect(self, jobs):
        collector = PerfCollector(jobs=jobs)
        previous = set_perf_hook(collector)
        try:
            with TaskScheduler(jobs) as sched, use_scheduler(sched):
                values = map_tasks(_square, [1, 2, 3, 4])
        finally:
            set_perf_hook(previous)
        assert values == [1, 4, 9, 16]
        return collector.summary()

    def test_inline_map_records_every_task(self):
        summary = self._collect(jobs=1)
        assert summary["worker_tasks"] == 4.0
        assert summary["worker_queue_wait_max_s"] == 0.0
        assert summary["worker_span_s"] > 0.0

    def test_pool_map_records_every_task(self):
        summary = self._collect(jobs=2)
        assert summary["worker_tasks"] == 4.0
        assert summary["worker_jobs"] == 2.0
        # Worker pickup necessarily happens after parent submission.
        assert summary["worker_queue_wait_mean_s"] >= 0.0
        assert summary["worker_span_s"] > 0.0

    def test_hook_restored_after_run_figure(self):
        from repro.experiments.suite import run_figure

        sentinel = object()
        previous = set_perf_hook(sentinel)
        try:
            run_figure(
                "fig3",
                {"num_caches": 20, "group_sizes": (5,)},
                worker_perf=True,
            )
            assert perf_hook() is sentinel
        finally:
            set_perf_hook(previous)


class TestTelemetryTransparency:
    def test_archives_identical_with_full_telemetry_enabled(
        self, tmp_path, monkeypatch
    ):
        """jobs=4 + worker-perf + progress + registry == plain serial."""
        monkeypatch.setitem(REGISTRY, "fig6", _small_fig6)
        monkeypatch.setattr(sys, "stderr", io.StringIO())

        plain_dir = tmp_path / "plain"
        run_suite(
            figures=["fig6"], output_dir=plain_dir,
            repetitions=1, seed=19, jobs=1,
        )
        reset_cache()
        telemetry_dir = tmp_path / "telemetry"
        run = run_suite(
            figures=["fig6"], output_dir=telemetry_dir,
            repetitions=1, seed=19, jobs=4,
            worker_perf=True, progress=True,
            registry_dir=tmp_path / "registry",
        )
        for name in ("fig6.json", "fig6.csv"):
            assert (
                (plain_dir / name).read_bytes()
                == (telemetry_dir / name).read_bytes()
            ), f"{name} differs once telemetry is enabled"
        summary = run.manifests["fig6"].run_stats
        assert summary["worker_jobs"] == 4.0
        assert summary["worker_tasks"] > 0.0

    def test_suite_appends_manifests_to_registry(self, tmp_path, monkeypatch):
        from repro.obs.registry import RunRegistry

        monkeypatch.setitem(REGISTRY, "fig6", _small_fig6)
        run_suite(
            figures=["fig6"], repetitions=1, seed=19,
            registry_dir=tmp_path / "registry",
        )
        records = RunRegistry(tmp_path / "registry").records()
        assert [r.label for r in records] == ["fig6"]
        assert records[0].kind == "experiment"

    def test_sanitize_diff_clean_under_telemetry(self, tmp_path, monkeypatch):
        """The draw ledger is unperturbed by the perf hook."""
        from repro.sanitize.cli import run_sanitize
        from repro.cli import build_parser

        monkeypatch.setitem(REGISTRY, "fig6", _small_fig6)
        parser = build_parser()
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"

        collector = PerfCollector(jobs=1)
        previous = set_perf_hook(collector)
        try:
            args = parser.parse_args([
                "sanitize", "run", "--figure", "fig6",
                "--repetitions", "1", "--out", str(serial),
            ])
            assert run_sanitize(args, stdout=io.StringIO()) == 0
        finally:
            set_perf_hook(previous)
        reset_cache()

        collector = PerfCollector(jobs=4)
        previous = set_perf_hook(collector)
        try:
            args = parser.parse_args([
                "sanitize", "run", "--figure", "fig6",
                "--repetitions", "1", "--jobs", "4", "--out", str(parallel),
            ])
            assert run_sanitize(args, stdout=io.StringIO()) == 0
        finally:
            set_perf_hook(previous)

        args = parser.parse_args([
            "sanitize", "diff", str(serial), str(parallel),
        ])
        assert run_sanitize(args, stdout=io.StringIO()) == 0
        assert collector.summary()["worker_tasks"] > 0.0


_PROBE = """
import sys
from repro.experiments.suite import run_suite
from repro.experiments.fig6_num_landmarks import run_fig6
from repro.experiments.registry import REGISTRY

def small(**kwargs):
    kwargs.setdefault("num_caches", 30)
    kwargs.setdefault("landmark_counts", (4,))
    kwargs.setdefault("num_groups", 3)
    return run_fig6(**kwargs)

REGISTRY["fig6"] = small
run_suite(figures=["fig6"], repetitions=1, seed=5, jobs=2)
for forbidden in (
    "repro.runtime.telemetry", "repro.obs.registry", "repro.bench",
):
    assert forbidden not in sys.modules, f"hot path imported {forbidden}"
print("clean")
"""


class TestZeroCostDisabled:
    def test_disabled_telemetry_imports_nothing(self):
        """A plain suite run must never load the new subsystems."""
        import os
        from pathlib import Path

        proc = subprocess.run(
            [sys.executable, "-c", _PROBE],
            capture_output=True, text=True, timeout=600,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=str(Path(__file__).resolve().parents[2]),
        )
        assert proc.returncode == 0, proc.stderr
        assert "clean" in proc.stdout
