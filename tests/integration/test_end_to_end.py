"""End-to-end integration tests across all subsystems.

These run the full pipeline the paper describes — topology, probing,
landmark selection, feature vectors, clustering, simulation, metrics —
and assert the headline relationships at small scale.
"""

import numpy as np
import pytest

from repro import (
    SDSLConfig,
    SDSLScheme,
    SLScheme,
    LandmarkConfig,
    average_group_interaction_cost,
    build_network,
    generate_workload,
    simulate,
)
from repro.config import DocumentConfig, WorkloadConfig
from repro.core import MinDistLandmarksScheme, RandomLandmarksScheme
from repro.core.groups import single_group, singleton_groups

LM = LandmarkConfig(num_landmarks=8, multiplier=3)


@pytest.fixture(scope="module")
def testbeds():
    """Three independent (network, workload) pairs at 40 caches."""
    beds = []
    for seed in (21, 22, 23):
        network = build_network(num_caches=40, seed=seed)
        workload = generate_workload(
            network.cache_nodes,
            WorkloadConfig(
                documents=DocumentConfig(num_documents=150),
                requests_per_cache=80,
            ),
            seed=seed,
        )
        beds.append((network, workload))
    return beds


class TestHeadlineResults:
    def test_sl_beats_mindist_on_gicost(self, testbeds):
        """Figure 4/5 shape: SL clustering accuracy beats min-dist."""
        sl_costs, mindist_costs = [], []
        for i, (network, _workload) in enumerate(testbeds):
            for seed in range(3):
                sl = SLScheme(landmark_config=LM).form_groups(
                    network, 6, seed=seed
                )
                sl_costs.append(average_group_interaction_cost(network, sl))
                md = MinDistLandmarksScheme(landmark_config=LM).form_groups(
                    network, 6, seed=seed
                )
                mindist_costs.append(
                    average_group_interaction_cost(network, md)
                )
        assert np.mean(sl_costs) < np.mean(mindist_costs)

    def test_sl_at_least_matches_random_on_gicost(self, testbeds):
        sl_costs, random_costs = [], []
        for network, _workload in testbeds:
            for seed in range(3):
                sl = SLScheme(landmark_config=LM).form_groups(
                    network, 6, seed=seed
                )
                sl_costs.append(average_group_interaction_cost(network, sl))
                rl = RandomLandmarksScheme(landmark_config=LM).form_groups(
                    network, 6, seed=seed
                )
                random_costs.append(
                    average_group_interaction_cost(network, rl)
                )
        assert np.mean(sl_costs) <= np.mean(random_costs) * 1.05

    def test_cooperation_beats_isolation_for_far_caches(self, testbeds):
        """Figure 3's left side: groups help the caches far from Os."""
        network, workload = testbeds[0]
        solo = simulate(
            network, singleton_groups(network.cache_nodes), workload
        )
        grouped_result = SLScheme(landmark_config=LM).form_groups(
            network, 6, seed=1
        )
        grouped = simulate(network, grouped_result, workload)
        assert (
            grouped.latency_farthest_origin(8)
            < solo.latency_farthest_origin(8)
        )

    def test_one_giant_group_worse_than_moderate(self, testbeds):
        """Figure 3's right side: the whole network in one group loses
        to moderate group sizes."""
        network, workload = testbeds[0]
        giant = simulate(
            network, single_group(network.cache_nodes), workload
        )
        moderate_grouping = SLScheme(landmark_config=LM).form_groups(
            network, 6, seed=1
        )
        moderate = simulate(network, moderate_grouping, workload)
        assert moderate.average_latency_ms() < giant.average_latency_ms()

    def test_sdsl_not_worse_than_sl_on_average(self, testbeds):
        """Figure 8/9 shape: SDSL ≤ SL averaged over runs."""
        sl_lat, sdsl_lat = [], []
        for network, workload in testbeds:
            for seed in range(2):
                sl_g = SLScheme(landmark_config=LM).form_groups(
                    network, 8, seed=seed
                )
                sl_lat.append(
                    simulate(network, sl_g, workload).average_latency_ms()
                )
                sdsl_g = SDSLScheme(
                    sdsl_config=SDSLConfig(theta=2.0), landmark_config=LM
                ).form_groups(network, 8, seed=seed)
                sdsl_lat.append(
                    simulate(network, sdsl_g, workload).average_latency_ms()
                )
        assert np.mean(sdsl_lat) <= np.mean(sl_lat) * 1.02


class TestPipelineConsistency:
    def test_full_pipeline_deterministic(self, testbeds):
        network, workload = testbeds[1]
        results = []
        for _ in range(2):
            grouping = SDSLScheme(landmark_config=LM).form_groups(
                network, 5, seed=77
            )
            result = simulate(network, grouping, workload)
            results.append(
                (grouping.membership(), result.average_latency_ms())
            )
        assert results[0] == results[1]

    def test_metrics_cross_check(self, testbeds):
        """Aggregate metrics agree with per-cache sums."""
        network, workload = testbeds[2]
        grouping = SLScheme(landmark_config=LM).form_groups(
            network, 5, seed=3
        )
        result = simulate(network, grouping, workload)
        metrics = result.metrics
        total = sum(
            metrics.cache_stats(c).requests for c in network.cache_nodes
        )
        assert total == metrics.total_requests()
        counted = metrics.total_requests() + metrics.warmup_skipped
        assert counted == workload.num_requests

    def test_grouping_provenance_preserved(self, testbeds):
        network, _workload = testbeds[0]
        grouping = SLScheme(landmark_config=LM).form_groups(
            network, 5, seed=4
        )
        assert grouping.landmarks is not None
        assert grouping.features is not None
        assert grouping.clustering is not None
        assert len(grouping.landmarks) == 8
        assert grouping.features.matrix.shape == (40, 8)
