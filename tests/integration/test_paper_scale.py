"""Paper-scale (N=500) integration checks.

Skipped by default (minutes of runtime); enable with::

    REPRO_PAPER_SCALE=1 pytest tests/integration/test_paper_scale.py

The assertions mirror the paper-scale appendix in EXPERIMENTS.md.
"""

import os

import numpy as np
import pytest

paper_scale = pytest.mark.skipif(
    not os.environ.get("REPRO_PAPER_SCALE"),
    reason="set REPRO_PAPER_SCALE=1 to run minutes-long 500-cache checks",
)


@paper_scale
class TestPaperScale:
    def test_fig4_mindist_gap_widens(self):
        from repro.experiments import run_fig4

        result = run_fig4(paper_scale=True, repetitions=2)
        sl = result.series_named("sl_ms").values
        mindist = result.series_named("mindist_ms").values
        # At 500 caches the min-dist penalty reaches the paper's band.
        gap_500 = (mindist[-1] - sl[-1]) / mindist[-1]
        assert gap_500 > 0.20

    def test_fig3_u_shapes_at_500(self):
        from repro.experiments import run_fig3

        result = run_fig3(paper_scale=True)
        for name in result.series:
            idx = name.min_index()
            assert 0 < idx < len(name) - 1

    def test_fig8_sdsl_wins_at_k20(self):
        from repro.experiments import run_fig8

        result = run_fig8(paper_scale=True, repetitions=2)
        sl = np.mean(result.series_named("sl_k20_ms").values)
        sdsl = np.mean(result.series_named("sdsl_k20_ms").values)
        assert sdsl < sl
