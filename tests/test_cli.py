"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def network_file(tmp_path):
    path = tmp_path / "net.npz"
    code = main(
        ["network", "--caches", "15", "--seed", "3", "--out", str(path)]
    )
    assert code == 0
    return path


@pytest.fixture
def groups_file(tmp_path, network_file):
    path = tmp_path / "groups.json"
    code = main(
        [
            "form-groups",
            "--network", str(network_file),
            "--scheme", "SL",
            "--k", "3",
            "--landmarks", "5",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


class TestNetworkCommand:
    def test_generates_and_reports(self, capsys, tmp_path):
        code = main(["network", "--caches", "10", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "caches=10" in out
        assert "server-dist" in out

    def test_writes_archive(self, network_file):
        assert network_file.exists()


class TestFormGroupsCommand:
    def test_forms_and_saves(self, capsys, groups_file):
        out = capsys.readouterr().out
        assert "SL:" in out
        assert "gicost" in out
        payload = json.loads(groups_file.read_text())
        assert payload["scheme"] == "SL"
        members = [m for g in payload["groups"] for m in g["members"]]
        assert sorted(members) == list(range(1, 16))

    def test_sdsl_scheme(self, capsys, network_file, tmp_path):
        code = main(
            [
                "form-groups",
                "--network", str(network_file),
                "--scheme", "SDSL",
                "--k", "3",
                "--landmarks", "5",
            ]
        )
        assert code == 0
        assert "SDSL" in capsys.readouterr().out

    def test_missing_network_errors(self, capsys, tmp_path):
        code = main(
            [
                "form-groups",
                "--network", str(tmp_path / "nope.npz"),
                "--k", "3",
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestSimulateCommand:
    def test_simulates_and_exports(
        self, capsys, tmp_path, network_file, groups_file
    ):
        csv_path = tmp_path / "stats.csv"
        code = main(
            [
                "simulate",
                "--network", str(network_file),
                "--groups", str(groups_file),
                "--requests-per-cache", "20",
                "--documents", "50",
                "--export-csv", str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "avg latency" in out
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("cache_node,")

    def test_per_group_and_trace_stats(
        self, capsys, network_file, groups_file
    ):
        code = main(
            [
                "simulate",
                "--network", str(network_file),
                "--groups", str(groups_file),
                "--requests-per-cache", "30",
                "--documents", "50",
                "--per-group",
                "--trace-stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "workload:" in out
        assert "zipf-alpha" in out
        assert "gicost_ms" in out         # per-group table header
        assert "server_dist_ms" in out


class TestExperimentCommand:
    def test_runs_and_saves(self, capsys, tmp_path):
        json_path = tmp_path / "fig4.json"
        csv_path = tmp_path / "fig4.csv"
        code = main(
            [
                "experiment", "fig4",
                "--repetitions", "1",
                "--out", str(json_path),
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "== fig4 ==" in out
        assert json.loads(json_path.read_text())["experiment_id"] == "fig4"
        assert csv_path.exists()

    def test_plot_flag(self, capsys):
        code = main(["experiment", "fig4", "--repetitions", "1", "--plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sl_ms" in out
        assert "(! = overlap)" in out

    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestExperimentAll:
    def test_all_archives_selected(self, capsys, tmp_path, monkeypatch):
        """'experiment all' runs the registry and archives results."""
        from repro.experiments import registry, run_fig4

        # Shrink the registry so the test stays fast.
        small = {
            "fig4": lambda **kw: run_fig4(
                network_sizes=(10,), num_landmarks=4, repetitions=1
            )
        }
        monkeypatch.setattr(registry, "REGISTRY", small)
        import repro.experiments.suite as suite

        monkeypatch.setattr(suite, "REGISTRY", small)
        out_dir = tmp_path / "results"
        code = main(
            [
                "experiment", "all",
                "--figures", "fig4",
                "--out-dir", str(out_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "== fig4 ==" in out
        assert (out_dir / "fig4.json").exists()
        assert (out_dir / "summary.md").exists()


class TestCompareCommand:
    def test_no_regression_exit_zero(self, capsys, tmp_path):
        from repro.analysis.report import ExperimentResult, SeriesResult
        from repro.persist import save_result

        result = ExperimentResult(
            experiment_id="figX",
            x_label="k",
            x_values=(1,),
            series=(SeriesResult("a_ms", (5.0,)),),
        )
        base = tmp_path / "base.json"
        save_result(result, base)
        code = main(["compare", str(base), str(base)])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exit_two(self, capsys, tmp_path):
        from repro.analysis.report import ExperimentResult, SeriesResult
        from repro.persist import save_result

        def result_of(value):
            return ExperimentResult(
                experiment_id="figX",
                x_label="k",
                x_values=(1,),
                series=(SeriesResult("a_ms", (value,)),),
            )

        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        save_result(result_of(5.0), base)
        save_result(result_of(9.0), cand)
        code = main(["compare", str(base), str(cand)])
        assert code == 2
        assert "REGRESSED" in capsys.readouterr().out


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestInstrumentedSimulate:
    def run_instrumented(self, tmp_path, network_file, extra):
        return main(
            [
                "simulate",
                "--network", str(network_file),
                "--scheme", "SDSL",
                "--landmarks", "5",
                "--requests-per-cache", "30",
                "--documents", "50",
                *extra,
            ]
        )

    def test_forms_groups_in_process(self, capsys, tmp_path, network_file):
        code = self.run_instrumented(tmp_path, network_file, [])
        assert code == 0
        out = capsys.readouterr().out
        assert "formed" in out
        assert "SDSL" in out
        assert "p95 latency" in out

    def test_trace_replays_to_reported_rates(
        self, capsys, tmp_path, network_file
    ):
        from repro.obs import read_jsonl, replay_hit_rates

        trace_path = tmp_path / "trace.jsonl"
        code = self.run_instrumented(
            tmp_path, network_file, ["--trace", str(trace_path)]
        )
        assert code == 0
        records = read_jsonl(trace_path)
        assert records
        rates = replay_hit_rates(records)
        out = capsys.readouterr().out
        assert f"local hit share            |   {rates['local']:.2f}" in out

    def test_trace_capacity_bounds_file(self, tmp_path, network_file):
        trace_path = tmp_path / "trace.jsonl"
        code = self.run_instrumented(
            tmp_path, network_file,
            ["--trace", str(trace_path), "--trace-capacity", "10"],
        )
        assert code == 0
        lines = trace_path.read_text().splitlines()
        assert len(lines) == 10

    def test_manifest_has_phases_and_series(self, tmp_path, network_file):
        from repro.persist import load_manifest

        manifest_path = tmp_path / "run.json"
        code = self.run_instrumented(
            tmp_path, network_file,
            ["--manifest", str(manifest_path), "--sample-ms", "500"],
        )
        assert code == 0
        manifest = load_manifest(manifest_path)
        # the GF-Coordinator steps are timed end to end
        for phase in ("gf/landmarks", "gf/features", "gf/cluster"):
            assert phase in manifest.phase_timings_s
        assert manifest.totals["requests"] > 0
        assert manifest.run_stats["events_per_sec"] > 0
        assert len(manifest.timeseries) >= 10

    def test_manifest_with_preformed_groups(
        self, tmp_path, network_file, groups_file
    ):
        from repro.persist import load_manifest

        manifest_path = tmp_path / "run.json"
        code = main(
            [
                "simulate",
                "--network", str(network_file),
                "--groups", str(groups_file),
                "--requests-per-cache", "20",
                "--documents", "50",
                "--manifest", str(manifest_path),
            ]
        )
        assert code == 0
        manifest = load_manifest(manifest_path)
        assert manifest.totals["requests"] > 0
        assert "workload" in manifest.phase_timings_s


class TestReportCommand:
    def test_pretty_prints_manifest(self, capsys, tmp_path, network_file):
        manifest_path = tmp_path / "run.json"
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "simulate",
                "--network", str(network_file),
                "--scheme", "SL",
                "--landmarks", "5",
                "--requests-per-cache", "30",
                "--documents", "50",
                "--trace", str(trace_path),
                "--sample-ms", "500",
                "--manifest", str(manifest_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        code = main(["report", str(manifest_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulate:SL" in out
        assert "gf/landmarks" in out
        assert "time series:" in out
        assert "hit_rate" in out
        assert "trace.records" in out

    def test_missing_manifest_errors(self, capsys, tmp_path):
        code = main(["report", str(tmp_path / "nope.json")])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestFaultFlags:
    def test_form_groups_with_faults_reports_degraded(
        self, capsys, tmp_path, network_file
    ):
        out_path = tmp_path / "degraded.json"
        code = main(
            [
                "form-groups",
                "--network", str(network_file),
                "--scheme", "SL",
                "--k", "3",
                "--landmarks", "5",
                "--probe-loss", "0.3",
                "--fail-landmarks", "1",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded formation" in out
        payload = json.loads(out_path.read_text())
        assert payload["degraded"] is True

    def test_zero_fault_flags_leave_archive_clean(
        self, tmp_path, network_file
    ):
        """Explicit zeros are a no-op: byte-identical archive."""
        paths = []
        for name, extra in (
            ("plain.json", []),
            ("zeros.json", ["--probe-loss", "0.0", "--fail-landmarks", "0"]),
        ):
            path = tmp_path / name
            code = main(
                [
                    "form-groups",
                    "--network", str(network_file),
                    "--scheme", "SL",
                    "--k", "3",
                    "--landmarks", "5",
                    "--out", str(path),
                ]
                + extra
            )
            assert code == 0
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_simulate_manifest_carries_fault_counters(
        self, tmp_path, network_file
    ):
        from repro.persist import load_manifest

        manifest_path = tmp_path / "run.json"
        code = main(
            [
                "simulate",
                "--network", str(network_file),
                "--scheme", "SL",
                "--k", "3",
                "--landmarks", "5",
                "--requests-per-cache", "20",
                "--documents", "50",
                "--probe-loss", "0.3",
                "--fail-landmarks", "1",
                "--crash", "2:100",
                "--crash", "3:200:400",
                "--partition", "150:300:4,5",
                "--manifest", str(manifest_path),
            ]
        )
        assert code == 0
        manifest = load_manifest(manifest_path)
        assert manifest.config["probe_loss"] == 0.3
        assert manifest.config["fail_landmarks"] == 1
        assert manifest.run_stats["degraded"] == 1.0
        for key in ("probes_lost", "retries", "timeouts"):
            assert key in manifest.run_stats
        assert manifest.run_stats["scheduled_crashes"] == 2.0
        assert manifest.run_stats["scheduled_partitions"] == 1.0
        assert "partition_timeouts" in manifest.run_stats

    def test_formation_faults_conflict_with_preformed_groups(
        self, capsys, network_file, groups_file
    ):
        code = main(
            [
                "simulate",
                "--network", str(network_file),
                "--groups", str(groups_file),
                "--probe-loss", "0.2",
            ]
        )
        assert code == 1
        assert "re-run form-groups" in capsys.readouterr().err

    def test_malformed_crash_spec_rejected(self, capsys, network_file):
        code = main(
            [
                "simulate",
                "--network", str(network_file),
                "--scheme", "SL",
                "--k", "3",
                "--landmarks", "5",
                "--crash", "banana",
            ]
        )
        assert code == 1
        assert "--crash" in capsys.readouterr().err

    def test_malformed_partition_spec_rejected(self, capsys, network_file):
        code = main(
            [
                "simulate",
                "--network", str(network_file),
                "--scheme", "SL",
                "--k", "3",
                "--landmarks", "5",
                "--partition", "10:20",
            ]
        )
        assert code == 1
        assert "--partition" in capsys.readouterr().err

    def test_invalid_probe_loss_rejected(self, capsys, network_file):
        code = main(
            [
                "form-groups",
                "--network", str(network_file),
                "--k", "3",
                "--landmarks", "5",
                "--probe-loss", "1.5",
            ]
        )
        assert code == 1
        assert "probe_loss_rate" in capsys.readouterr().err
