"""Tests for repro.topology.distance: RTT matrices."""

import numpy as np
import pytest

from repro.errors import DisconnectedTopologyError, TopologyError
from repro.topology.distance import (
    DistanceMatrix,
    compute_rtt_matrix,
    pairwise_rtt,
)
from repro.topology.graph import NetworkGraph, RouterTier


def line_graph():
    """0 --1ms-- 1 --2ms-- 2"""
    g = NetworkGraph()
    for r in range(3):
        g.add_router(r, RouterTier.STUB, "S0")
    g.add_link(0, 1, 1.0)
    g.add_link(1, 2, 2.0)
    return g


class TestDistanceMatrix:
    def test_basic_access(self):
        m = DistanceMatrix(np.array([[0.0, 2.0], [2.0, 0.0]]))
        assert m.size == 2
        assert m.rtt(0, 1) == 2.0
        assert m.one_way(0, 1) == 1.0
        assert m.rtt(1, 1) == 0.0

    def test_rejects_asymmetric(self):
        with pytest.raises(TopologyError):
            DistanceMatrix(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(TopologyError):
            DistanceMatrix(np.array([[1.0, 2.0], [2.0, 0.0]]))

    def test_rejects_negative(self):
        with pytest.raises(TopologyError):
            DistanceMatrix(np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_rejects_infinite(self):
        with pytest.raises(DisconnectedTopologyError):
            DistanceMatrix(np.array([[0.0, np.inf], [np.inf, 0.0]]))

    def test_rejects_non_square(self):
        with pytest.raises(TopologyError):
            DistanceMatrix(np.zeros((2, 3)))

    def test_out_of_range_node(self):
        m = DistanceMatrix(np.zeros((2, 2)))
        with pytest.raises(TopologyError):
            m.rtt(0, 5)

    def test_matrix_read_only(self):
        m = DistanceMatrix(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            m.as_array()[0, 1] = 5.0

    def test_submatrix(self):
        base = np.array(
            [[0.0, 1.0, 2.0], [1.0, 0.0, 3.0], [2.0, 3.0, 0.0]]
        )
        m = DistanceMatrix(base)
        sub = m.submatrix([0, 2])
        assert sub.tolist() == [[0.0, 2.0], [2.0, 0.0]]

    def test_submatrix_out_of_range(self):
        m = DistanceMatrix(np.zeros((2, 2)))
        with pytest.raises(TopologyError):
            m.submatrix([0, 5])

    def test_nearest_to(self):
        base = np.array(
            [[0.0, 5.0, 2.0], [5.0, 0.0, 3.0], [2.0, 3.0, 0.0]]
        )
        m = DistanceMatrix(base)
        assert m.nearest_to(0, [1, 2]) == 2

    def test_nearest_to_empty_candidates(self):
        m = DistanceMatrix(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            m.nearest_to(0, [])


class TestComputeRttMatrix:
    def test_shortest_paths_doubled(self):
        g = line_graph()
        m = compute_rtt_matrix(g, [0, 1, 2])
        assert m.rtt(0, 1) == pytest.approx(2.0)   # 2 * 1ms
        assert m.rtt(1, 2) == pytest.approx(4.0)   # 2 * 2ms
        assert m.rtt(0, 2) == pytest.approx(6.0)   # 2 * 3ms

    def test_subset_of_routers(self):
        g = line_graph()
        m = compute_rtt_matrix(g, [0, 2])
        assert m.size == 2
        assert m.rtt(0, 1) == pytest.approx(6.0)

    def test_same_router_zero(self):
        g = line_graph()
        m = compute_rtt_matrix(g, [0, 0])
        assert m.rtt(0, 1) == 0.0

    def test_takes_shortcut(self):
        g = line_graph()
        g.add_link(0, 2, 0.5)
        m = compute_rtt_matrix(g, [0, 2])
        assert m.rtt(0, 1) == pytest.approx(1.0)

    def test_disconnected_raises(self):
        g = line_graph()
        g.add_router(9, RouterTier.STUB, "S9")
        with pytest.raises(DisconnectedTopologyError):
            compute_rtt_matrix(g, [0, 9])

    def test_unknown_router_raises(self):
        g = line_graph()
        with pytest.raises(TopologyError):
            compute_rtt_matrix(g, [0, 77])

    def test_empty_placement_raises(self):
        with pytest.raises(TopologyError):
            compute_rtt_matrix(line_graph(), [])

    def test_triangle_inequality(self):
        """Shortest-path RTTs form a metric."""
        from repro.topology.transit_stub import generate_transit_stub
        from repro.config import TransitStubConfig

        g = generate_transit_stub(
            TransitStubConfig(
                transit_domains=2,
                transit_nodes_per_domain=2,
                stub_domains_per_transit_node=2,
                stub_nodes_per_domain=3,
            ),
            np.random.default_rng(2),
        )
        routers = list(g.routers())[:10]
        m = compute_rtt_matrix(g, routers)
        arr = m.as_array()
        n = arr.shape[0]
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert arr[i, j] <= arr[i, k] + arr[k, j] + 1e-9


class TestPairwiseRtt:
    def test_all_pairs(self):
        base = np.array(
            [[0.0, 1.0, 2.0], [1.0, 0.0, 3.0], [2.0, 3.0, 0.0]]
        )
        m = DistanceMatrix(base)
        assert sorted(pairwise_rtt(m, [0, 1, 2])) == [1.0, 2.0, 3.0]

    def test_single_node_no_pairs(self):
        m = DistanceMatrix(np.zeros((2, 2)))
        assert pairwise_rtt(m, [0]) == []
