"""Tests for repro.topology.network: EdgeCacheNetwork and build_network."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.network import (
    EdgeCacheNetwork,
    build_network,
    network_from_matrix,
)
from repro.types import ORIGIN_NODE_ID


class TestEdgeCacheNetwork:
    def test_from_matrix(self, paper_network):
        assert paper_network.num_caches == 6
        assert paper_network.origin == ORIGIN_NODE_ID
        assert paper_network.cache_nodes == [1, 2, 3, 4, 5, 6]
        assert paper_network.all_nodes == [0, 1, 2, 3, 4, 5, 6]

    def test_rtt_lookup(self, paper_network):
        assert paper_network.rtt(0, 1) == 12.0
        assert paper_network.rtt(1, 2) == 4.0

    def test_server_distance(self, paper_network):
        assert paper_network.server_distance(1) == 12.0
        assert paper_network.server_distance(2) == 8.0

    def test_origin_has_no_server_distance(self, paper_network):
        with pytest.raises(ValueError):
            paper_network.server_distance(ORIGIN_NODE_ID)

    def test_server_distances_vector(self, paper_network):
        dists = paper_network.server_distances()
        assert dists.tolist() == [12.0, 8.0, 12.0, 8.0, 12.0, 8.0]

    def test_nearest_and_farthest(self, paper_network):
        nearest = paper_network.caches_nearest_origin(3)
        farthest = paper_network.caches_farthest_origin(3)
        assert set(nearest) == {2, 4, 6}  # the 8ms caches
        assert set(farthest) == {1, 3, 5}  # the 12ms caches

    def test_nearest_count_bounds(self, paper_network):
        with pytest.raises(ValueError):
            paper_network.caches_nearest_origin(0)
        with pytest.raises(ValueError):
            paper_network.caches_nearest_origin(7)

    def test_too_small_matrix_rejected(self):
        with pytest.raises(TopologyError):
            network_from_matrix([[0.0]])


class TestBuildNetwork:
    def test_sizes(self):
        net = build_network(num_caches=20, seed=5)
        assert net.num_caches == 20
        assert net.distances.size == 21
        assert net.placement is not None
        assert net.graph is not None

    def test_reproducible(self):
        a = build_network(num_caches=15, seed=8)
        b = build_network(num_caches=15, seed=8)
        assert np.array_equal(a.distances.as_array(), b.distances.as_array())

    def test_different_seeds_differ(self):
        a = build_network(num_caches=15, seed=1)
        b = build_network(num_caches=15, seed=2)
        assert not np.array_equal(a.distances.as_array(), b.distances.as_array())

    def test_distances_form_metric(self):
        net = build_network(num_caches=12, seed=3)
        arr = net.distances.as_array()
        assert (arr >= 0).all()
        assert np.allclose(arr, arr.T)
        assert np.allclose(np.diag(arr), 0.0)
        n = arr.shape[0]
        for i in range(n):
            for j in range(n):
                assert (arr[i, j] <= arr[i] + arr[:, j] + 1e-9).all()

    def test_caches_have_close_peers(self):
        """Density scaling must give most caches a nearby peer.

        The paper's cooperative premise needs caches to share stub
        domains; after density sizing the median nearest-peer RTT must
        be far below the median origin distance.
        """
        net = build_network(num_caches=60, seed=9)
        arr = net.distances.as_array()
        cache_block = arr[1:, 1:] + np.diag(np.full(60, np.inf))
        nearest_peer = cache_block.min(axis=1)
        assert np.median(nearest_peer) < np.median(net.server_distances()) / 2

    def test_server_distances_spread(self):
        """Transit-stub topologies give a wide near/far origin spread."""
        net = build_network(num_caches=40, seed=10)
        dists = net.server_distances()
        assert dists.max() > 3 * dists.min()

    def test_placement_mismatch_rejected(self):
        net = build_network(num_caches=5, seed=1)
        with pytest.raises(TopologyError):
            EdgeCacheNetwork(
                distances=net.distances,
                placement=build_network(num_caches=6, seed=1).placement,
            )
