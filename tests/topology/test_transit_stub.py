"""Tests for repro.topology.transit_stub: the GT-ITM substitute."""

import numpy as np
import pytest

from repro.config import TransitStubConfig
from repro.topology.graph import RouterTier
from repro.topology.transit_stub import generate_transit_stub


def small_config(**overrides):
    defaults = dict(
        transit_domains=2,
        transit_nodes_per_domain=2,
        stub_domains_per_transit_node=2,
        stub_nodes_per_domain=3,
    )
    defaults.update(overrides)
    return TransitStubConfig(**defaults)


class TestStructure:
    def test_router_count_matches_config(self, rng):
        cfg = small_config()
        graph = generate_transit_stub(cfg, rng)
        assert graph.router_count == cfg.total_routers

    def test_tier_counts(self, rng):
        cfg = small_config()
        graph = generate_transit_stub(cfg, rng)
        transit = graph.routers_in_tier(RouterTier.TRANSIT)
        stub = graph.routers_in_tier(RouterTier.STUB)
        assert len(transit) == 4
        assert len(stub) == 4 * 2 * 3

    def test_always_connected(self):
        for seed in range(8):
            graph = generate_transit_stub(
                small_config(), np.random.default_rng(seed)
            )
            assert graph.is_connected()

    def test_domain_labels(self, rng):
        graph = generate_transit_stub(small_config(), rng)
        domains = graph.domains()
        transit_domains = [d for d in domains if d.startswith("T")]
        stub_domains = [d for d in domains if d.startswith("S")]
        assert len(transit_domains) == 2
        assert len(stub_domains) == 8

    def test_single_transit_domain(self, rng):
        cfg = small_config(transit_domains=1)
        graph = generate_transit_stub(cfg, rng)
        assert graph.is_connected()

    def test_no_stub_domains(self, rng):
        cfg = small_config(stub_domains_per_transit_node=0)
        graph = generate_transit_stub(cfg, rng)
        assert graph.router_count == 4
        assert graph.is_connected()

    def test_reproducible(self):
        a = generate_transit_stub(small_config(), np.random.default_rng(9))
        b = generate_transit_stub(small_config(), np.random.default_rng(9))
        assert a.router_count == b.router_count
        assert a.link_count == b.link_count
        for r in a.routers():
            assert a.domain_of(r) == b.domain_of(r)


class TestLatencyTiers:
    def test_intra_stub_links_fast(self, rng):
        cfg = small_config()
        graph = generate_transit_stub(cfg, rng)
        nx_graph = graph.as_networkx()
        low, high = cfg.intra_stub_latency_ms
        for a, b, data in nx_graph.edges(data=True):
            same_stub = (
                graph.tier_of(a) is RouterTier.STUB
                and graph.tier_of(b) is RouterTier.STUB
                and graph.domain_of(a) == graph.domain_of(b)
            )
            if same_stub:
                assert low <= data["latency_ms"] <= high

    def test_transit_transit_links_slow(self, rng):
        cfg = small_config()
        graph = generate_transit_stub(cfg, rng)
        nx_graph = graph.as_networkx()
        inter_low = cfg.transit_transit_latency_ms[0]
        crossings = [
            data["latency_ms"]
            for a, b, data in nx_graph.edges(data=True)
            if graph.tier_of(a) is RouterTier.TRANSIT
            and graph.tier_of(b) is RouterTier.TRANSIT
            and graph.domain_of(a) != graph.domain_of(b)
        ]
        assert crossings, "expected at least one inter-domain backbone link"
        assert all(latency >= inter_low for latency in crossings)

    def test_every_stub_domain_attached_to_transit(self, rng):
        graph = generate_transit_stub(small_config(), rng)
        nx_graph = graph.as_networkx()
        for domain, members in graph.domains().items():
            if not domain.startswith("S"):
                continue
            attached = any(
                graph.tier_of(neighbor) is RouterTier.TRANSIT
                for member in members
                for neighbor in nx_graph.neighbors(member)
            )
            assert attached, f"stub domain {domain} has no transit uplink"
