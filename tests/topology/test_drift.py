"""Tests for topology drift."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.drift import (
    drift_network,
    drift_series,
    mean_relative_rtt_change,
)


class TestDriftNetwork:
    def test_metric_preserved(self, small_network):
        drifted = drift_network(small_network, scale=0.2, seed=1)
        arr = drifted.distances.as_array()
        assert np.allclose(arr, arr.T)
        assert np.allclose(np.diag(arr), 0.0)
        n = arr.shape[0]
        for k in range(n):
            via_k = arr[:, k][:, None] + arr[k, :][None, :]
            assert (arr <= via_k + 1e-9).all()

    def test_placement_unchanged(self, small_network):
        drifted = drift_network(small_network, scale=0.1, seed=2)
        assert drifted.placement == small_network.placement
        assert drifted.num_caches == small_network.num_caches

    def test_zero_scale_identity(self, small_network):
        drifted = drift_network(small_network, scale=0.0, seed=3)
        assert np.allclose(
            drifted.distances.as_array(),
            small_network.distances.as_array(),
        )

    def test_drift_magnitude_tracks_scale(self, small_network):
        small = drift_network(small_network, scale=0.02, seed=4)
        large = drift_network(small_network, scale=0.4, seed=4)
        assert mean_relative_rtt_change(
            small_network, small
        ) < mean_relative_rtt_change(small_network, large)

    def test_reproducible(self, small_network):
        a = drift_network(small_network, scale=0.2, seed=5)
        b = drift_network(small_network, scale=0.2, seed=5)
        assert np.allclose(
            a.distances.as_array(), b.distances.as_array()
        )

    def test_requires_graph(self, paper_network):
        with pytest.raises(TopologyError):
            drift_network(paper_network, scale=0.1)

    def test_negative_scale_rejected(self, small_network):
        with pytest.raises(TopologyError):
            drift_network(small_network, scale=-0.1)


class TestDriftSeries:
    def test_accumulating_walk(self, small_network):
        series = list(drift_series(small_network, steps=5, scale=0.1, seed=6))
        assert len(series) == 5
        changes = [
            mean_relative_rtt_change(small_network, net) for net in series
        ]
        # A random walk drifts away on average: the last step is farther
        # from the origin than the first.
        assert changes[-1] > changes[0]

    def test_each_step_valid(self, small_network):
        for net in drift_series(small_network, steps=3, scale=0.15, seed=7):
            assert net.num_caches == small_network.num_caches
            assert np.isfinite(net.distances.as_array()).all()

    def test_bad_steps_rejected(self, small_network):
        with pytest.raises(TopologyError):
            list(drift_series(small_network, steps=0))


class TestMeanRelativeChange:
    def test_identity_zero(self, small_network):
        assert mean_relative_rtt_change(small_network, small_network) == 0.0

    def test_size_mismatch_rejected(self, small_network, paper_network):
        with pytest.raises(TopologyError):
            mean_relative_rtt_change(small_network, paper_network)
