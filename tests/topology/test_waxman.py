"""Tests for repro.topology.waxman."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.waxman import scale_distances_to_latencies, waxman_graph


def components_of(n, edges):
    parent = list(range(n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i, j, _d in edges:
        parent[find(i)] = find(j)
    return len({find(i) for i in range(n)})


class TestWaxmanGraph:
    def test_connected_for_various_sizes(self, rng):
        for n in (1, 2, 3, 10, 40):
            _pos, edges = waxman_graph(n, rng)
            if n > 1:
                assert components_of(n, edges) == 1

    def test_positions_shape(self, rng):
        pos, _ = waxman_graph(12, rng)
        assert pos.shape == (12, 2)
        assert ((pos >= 0) & (pos <= 1)).all()

    def test_single_node(self, rng):
        pos, edges = waxman_graph(1, rng)
        assert pos.shape == (1, 2)
        assert edges == []

    def test_edges_canonical_order(self, rng):
        _pos, edges = waxman_graph(20, rng)
        for i, j, d in edges:
            assert i < j
            assert d >= 0

    def test_no_duplicate_edges(self, rng):
        _pos, edges = waxman_graph(25, rng)
        pairs = [(i, j) for i, j, _ in edges]
        assert len(pairs) == len(set(pairs))

    def test_higher_alpha_more_edges(self):
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        _, sparse = waxman_graph(40, rng_a, alpha=0.1, beta=0.3)
        _, dense = waxman_graph(40, rng_b, alpha=0.9, beta=0.9)
        assert len(dense) > len(sparse)

    def test_bad_n_rejected(self, rng):
        with pytest.raises(TopologyError):
            waxman_graph(0, rng)

    def test_bad_params_rejected(self, rng):
        with pytest.raises(TopologyError):
            waxman_graph(5, rng, alpha=0.0)
        with pytest.raises(TopologyError):
            waxman_graph(5, rng, beta=1.5)

    def test_reproducible(self):
        a = waxman_graph(15, np.random.default_rng(3))
        b = waxman_graph(15, np.random.default_rng(3))
        assert np.array_equal(a[0], b[0])
        assert a[1] == b[1]


class TestScaleDistances:
    def test_latencies_within_range(self, rng):
        edges = [(0, 1, 0.1), (1, 2, 0.5), (0, 2, 0.9)]
        out = scale_distances_to_latencies(edges, (2.0, 10.0), rng)
        for _i, _j, latency in out:
            assert 2.0 <= latency <= 10.0

    def test_monotone_mapping_before_jitter(self):
        # With a jitter-free check we can only assert the endpoints:
        # min-distance edges land near the low end, max near the high.
        rng = np.random.default_rng(0)
        edges = [(0, 1, 0.0), (1, 2, 1.0)]
        out = scale_distances_to_latencies(edges, (2.0, 10.0), rng)
        assert out[0][2] < out[1][2]

    def test_empty_edges(self, rng):
        assert scale_distances_to_latencies([], (1.0, 2.0), rng) == []

    def test_equal_distances_mid_range(self, rng):
        edges = [(0, 1, 0.5), (1, 2, 0.5)]
        out = scale_distances_to_latencies(edges, (4.0, 6.0), rng)
        for _i, _j, latency in out:
            assert 4.0 <= latency <= 6.0

    def test_bad_range_rejected(self, rng):
        with pytest.raises(TopologyError):
            scale_distances_to_latencies([(0, 1, 0.5)], (5.0, 1.0), rng)
