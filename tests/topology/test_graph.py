"""Tests for repro.topology.graph: the router graph model."""

import pytest

from repro.errors import DisconnectedTopologyError, TopologyError
from repro.topology.graph import NetworkGraph, RouterTier


def make_triangle():
    g = NetworkGraph()
    g.add_router(0, RouterTier.TRANSIT, "T0")
    g.add_router(1, RouterTier.STUB, "S0")
    g.add_router(2, RouterTier.STUB, "S0")
    g.add_link(0, 1, 5.0)
    g.add_link(1, 2, 2.0)
    g.add_link(0, 2, 9.0)
    return g


class TestConstruction:
    def test_counts(self):
        g = make_triangle()
        assert g.router_count == 3
        assert g.link_count == 3

    def test_duplicate_router_rejected(self):
        g = NetworkGraph()
        g.add_router(0, RouterTier.STUB, "S0")
        with pytest.raises(TopologyError):
            g.add_router(0, RouterTier.STUB, "S0")

    def test_self_loop_rejected(self):
        g = NetworkGraph()
        g.add_router(0, RouterTier.STUB, "S0")
        with pytest.raises(TopologyError):
            g.add_link(0, 0, 1.0)

    def test_link_to_missing_router_rejected(self):
        g = NetworkGraph()
        g.add_router(0, RouterTier.STUB, "S0")
        with pytest.raises(TopologyError):
            g.add_link(0, 99, 1.0)

    def test_non_positive_latency_rejected(self):
        g = NetworkGraph()
        g.add_router(0, RouterTier.STUB, "S0")
        g.add_router(1, RouterTier.STUB, "S0")
        with pytest.raises(TopologyError):
            g.add_link(0, 1, 0.0)

    def test_parallel_link_keeps_minimum(self):
        g = NetworkGraph()
        g.add_router(0, RouterTier.STUB, "S0")
        g.add_router(1, RouterTier.STUB, "S0")
        g.add_link(0, 1, 5.0)
        g.add_link(0, 1, 3.0)
        assert g.link_latency(0, 1) == 3.0
        g.add_link(0, 1, 7.0)
        assert g.link_latency(0, 1) == 3.0
        assert g.link_count == 1


class TestInspection:
    def test_tiers(self):
        g = make_triangle()
        assert g.tier_of(0) is RouterTier.TRANSIT
        assert g.routers_in_tier(RouterTier.STUB) == [1, 2]

    def test_domains(self):
        g = make_triangle()
        assert g.domain_of(1) == "S0"
        assert g.domains() == {"T0": [0], "S0": [1, 2]}

    def test_neighbors(self):
        g = make_triangle()
        assert sorted(g.neighbors(0)) == [1, 2]

    def test_unknown_router_raises(self):
        g = make_triangle()
        with pytest.raises(TopologyError):
            g.tier_of(42)
        with pytest.raises(TopologyError):
            g.neighbors(42)
        with pytest.raises(TopologyError):
            g.link_latency(0, 42)

    def test_position_default_none(self):
        g = make_triangle()
        assert g.position_of(0) is None

    def test_position_roundtrip(self):
        g = NetworkGraph()
        g.add_router(0, RouterTier.STUB, "S0", position=(0.25, 0.75))
        assert g.position_of(0) == (0.25, 0.75)


class TestConnectivity:
    def test_connected(self):
        assert make_triangle().is_connected()

    def test_disconnected(self):
        g = make_triangle()
        g.add_router(9, RouterTier.STUB, "S9")
        assert not g.is_connected()
        with pytest.raises(DisconnectedTopologyError):
            g.require_connected()

    def test_empty_graph_not_connected(self):
        assert not NetworkGraph().is_connected()


class TestSparseExport:
    def test_adjacency_symmetric(self):
        g = make_triangle()
        routers, matrix, index_of = g.to_sparse_adjacency()
        dense = matrix.toarray()
        assert dense.shape == (3, 3)
        assert (dense == dense.T).all()
        assert dense[index_of[0], index_of[1]] == 5.0

    def test_router_index_consistent(self):
        g = make_triangle()
        routers, _matrix, index_of = g.to_sparse_adjacency()
        for router in g.routers():
            assert routers[index_of[router]] == router
