"""Tests for network statistics."""

import pytest

from repro.errors import TopologyError
from repro.topology import network_from_matrix
from repro.topology.stats import network_stats


class TestNetworkStats:
    def test_paper_network_values(self, paper_network):
        stats = network_stats(paper_network)
        assert stats.num_caches == 6
        # Pairwise RTTs among the 6 caches: 4.0 x3, 11.3 x..., etc.
        assert stats.diameter_ms == 17.0
        assert stats.min_server_distance_ms == 8.0
        assert stats.max_server_distance_ms == 12.0
        assert stats.mean_server_distance_ms == pytest.approx(10.0)
        # Every cache's nearest peer is its 4.0ms partner.
        assert stats.median_nearest_peer_rtt_ms == 4.0

    def test_generated_network(self, small_network):
        stats = network_stats(small_network)
        assert stats.num_caches == 30
        assert 0 < stats.median_pairwise_rtt_ms <= stats.mean_pairwise_rtt_ms * 2
        assert stats.diameter_ms >= stats.mean_pairwise_rtt_ms
        assert stats.median_nearest_peer_rtt_ms < stats.median_pairwise_rtt_ms

    def test_str_form(self, paper_network):
        text = str(network_stats(paper_network))
        assert "caches=6" in text
        assert "diameter" in text

    def test_too_small_rejected(self):
        net = network_from_matrix([[0.0, 5.0], [5.0, 0.0]])
        with pytest.raises(TopologyError):
            network_stats(net)
