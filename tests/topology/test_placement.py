"""Tests for repro.topology.placement."""

import numpy as np
import pytest

from repro.config import PlacementConfig, TransitStubConfig
from repro.errors import PlacementError
from repro.topology.graph import NetworkGraph, RouterTier
from repro.topology.placement import place_network
from repro.topology.transit_stub import generate_transit_stub


@pytest.fixture
def topology(rng):
    return generate_transit_stub(
        TransitStubConfig(
            transit_domains=2,
            transit_nodes_per_domain=2,
            stub_domains_per_transit_node=2,
            stub_nodes_per_domain=4,
        ),
        rng,
    )


class TestPlaceNetwork:
    def test_origin_on_transit(self, topology, rng):
        placement = place_network(topology, PlacementConfig(num_caches=5), rng)
        assert topology.tier_of(placement.origin_router) is RouterTier.TRANSIT

    def test_origin_on_stub_when_requested(self, topology, rng):
        placement = place_network(
            topology,
            PlacementConfig(num_caches=5, origin_on_transit=False),
            rng,
        )
        assert topology.tier_of(placement.origin_router) is RouterTier.STUB

    def test_caches_on_distinct_stub_routers(self, topology, rng):
        placement = place_network(topology, PlacementConfig(num_caches=10), rng)
        assert len(set(placement.cache_routers)) == 10
        for router in placement.cache_routers:
            assert topology.tier_of(router) is RouterTier.STUB

    def test_node_routers_layout(self, topology, rng):
        placement = place_network(topology, PlacementConfig(num_caches=3), rng)
        nodes = placement.node_routers
        assert nodes[0] == placement.origin_router
        assert tuple(nodes[1:]) == placement.cache_routers
        assert placement.num_caches == 3

    def test_too_many_caches_rejected(self, topology, rng):
        with pytest.raises(PlacementError):
            place_network(topology, PlacementConfig(num_caches=1000), rng)

    def test_colocation_allows_overflow(self, topology, rng):
        placement = place_network(
            topology,
            PlacementConfig(num_caches=100, allow_colocation=True),
            rng,
        )
        assert placement.num_caches == 100

    def test_transit_only_topology(self, rng):
        g = NetworkGraph()
        g.add_router(0, RouterTier.TRANSIT, "T0")
        g.add_router(1, RouterTier.TRANSIT, "T0")
        g.add_link(0, 1, 1.0)
        placement = place_network(g, PlacementConfig(num_caches=1), rng)
        assert placement.origin_router in (0, 1)
        assert placement.cache_routers[0] != placement.origin_router

    def test_single_router_topology_rejected(self, rng):
        g = NetworkGraph()
        g.add_router(0, RouterTier.TRANSIT, "T0")
        with pytest.raises(PlacementError):
            place_network(g, PlacementConfig(num_caches=1), rng)

    def test_reproducible(self, topology):
        a = place_network(
            topology, PlacementConfig(num_caches=6), np.random.default_rng(4)
        )
        b = place_network(
            topology, PlacementConfig(num_caches=6), np.random.default_rng(4)
        )
        assert a == b
