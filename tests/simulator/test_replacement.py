"""Tests for the replacement policies."""

import pytest

from repro.errors import SimulationError
from repro.simulator import LFUPolicy, LRUPolicy, UtilityPolicy, make_policy


class TestLRU:
    def test_evicts_least_recent(self):
        p = LRUPolicy()
        p.on_insert(1, 10, 1.0, now_ms=0.0)
        p.on_insert(2, 10, 1.0, now_ms=1.0)
        p.on_access(1, now_ms=2.0)
        assert p.select_victim() == 2

    def test_insert_order_without_access(self):
        p = LRUPolicy()
        for doc in (1, 2, 3):
            p.on_insert(doc, 10, 1.0, now_ms=float(doc))
        assert p.select_victim() == 1

    def test_remove(self):
        p = LRUPolicy()
        p.on_insert(1, 10, 1.0, 0.0)
        p.on_insert(2, 10, 1.0, 1.0)
        p.on_remove(1, invalidated=False)
        assert p.select_victim() == 2

    def test_double_insert_rejected(self):
        p = LRUPolicy()
        p.on_insert(1, 10, 1.0, 0.0)
        with pytest.raises(SimulationError):
            p.on_insert(1, 10, 1.0, 1.0)

    def test_untracked_access_rejected(self):
        with pytest.raises(SimulationError):
            LRUPolicy().on_access(1, 0.0)

    def test_empty_victim_rejected(self):
        with pytest.raises(SimulationError):
            LRUPolicy().select_victim()


class TestLFU:
    def test_evicts_least_frequent(self):
        p = LFUPolicy()
        p.on_insert(1, 10, 1.0, 0.0)
        p.on_insert(2, 10, 1.0, 0.0)
        p.on_access(1, 1.0)
        p.on_access(1, 2.0)
        p.on_access(2, 3.0)
        assert p.select_victim() == 2

    def test_remove_clears_tracking(self):
        p = LFUPolicy()
        p.on_insert(1, 10, 1.0, 0.0)
        p.on_insert(2, 10, 1.0, 0.0)
        p.on_access(2, 1.0)
        p.on_remove(1, invalidated=False)
        assert p.select_victim() == 2

    def test_stale_heap_entries_skipped(self):
        p = LFUPolicy()
        p.on_insert(1, 10, 1.0, 0.0)
        p.on_insert(2, 10, 1.0, 0.0)
        # Bump doc 1 many times, leaving stale low-count entries.
        for i in range(5):
            p.on_access(1, float(i))
        assert p.select_victim() == 2

    def test_empty_victim_rejected(self):
        with pytest.raises(SimulationError):
            LFUPolicy().select_victim()


class TestUtilityPolicy:
    def test_utility_formula(self):
        p = UtilityPolicy()
        p.on_insert(1, size_bytes=100, fetch_cost_ms=50.0, now_ms=0.0)
        # utility = accesses * cost / (size * (1 + invalidations))
        assert p.utility_of(1) == pytest.approx(1 * 50.0 / 100)
        p.on_access(1, 1.0)
        assert p.utility_of(1) == pytest.approx(2 * 50.0 / 100)

    def test_invalidation_feedback_lowers_utility(self):
        p = UtilityPolicy()
        p.on_insert(1, 100, 50.0, 0.0)
        before = p.utility_of(1)
        p.on_invalidation_feedback(1)
        assert p.utility_of(1) == pytest.approx(before / 2)

    def test_invalidation_history_survives_reinsert(self):
        """A repeatedly-invalidated document stays a poor candidate."""
        p = UtilityPolicy()
        p.on_insert(1, 100, 50.0, 0.0)
        p.on_invalidation_feedback(1)
        p.on_remove(1, invalidated=True)
        p.on_insert(1, 100, 50.0, 1.0)
        assert p.utility_of(1) == pytest.approx(1 * 50.0 / (100 * 2))

    def test_evicts_lowest_utility(self):
        p = UtilityPolicy()
        p.on_insert(1, size_bytes=100, fetch_cost_ms=10.0, now_ms=0.0)
        p.on_insert(2, size_bytes=10, fetch_cost_ms=10.0, now_ms=0.0)
        p.on_insert(3, size_bytes=10, fetch_cost_ms=200.0, now_ms=0.0)
        # utilities: doc1 = 0.1, doc2 = 1.0, doc3 = 20.0
        assert p.select_victim() == 1

    def test_large_cheap_documents_evicted_first(self):
        p = UtilityPolicy()
        p.on_insert(1, size_bytes=10_000, fetch_cost_ms=5.0, now_ms=0.0)
        p.on_insert(2, size_bytes=100, fetch_cost_ms=5.0, now_ms=0.0)
        assert p.select_victim() == 1

    def test_frequent_access_protects(self):
        p = UtilityPolicy()
        p.on_insert(1, 100, 10.0, 0.0)
        p.on_insert(2, 100, 10.0, 0.0)
        for i in range(10):
            p.on_access(1, float(i))
        assert p.select_victim() == 2

    def test_zero_fetch_cost_floored(self):
        p = UtilityPolicy()
        p.on_insert(1, 100, 0.0, 0.0)
        assert p.utility_of(1) > 0

    def test_bad_size_rejected(self):
        p = UtilityPolicy()
        with pytest.raises(SimulationError):
            p.on_insert(1, 0, 1.0, 0.0)

    def test_untracked_operations_rejected(self):
        p = UtilityPolicy()
        with pytest.raises(SimulationError):
            p.on_access(1, 0.0)
        with pytest.raises(SimulationError):
            p.on_remove(1, invalidated=False)
        with pytest.raises(SimulationError):
            p.utility_of(1)


class TestMakePolicy:
    @pytest.mark.parametrize(
        "name,cls",
        [("utility", UtilityPolicy), ("lru", LRUPolicy), ("lfu", LFUPolicy)],
    )
    def test_known(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(SimulationError):
            make_policy("arc")
