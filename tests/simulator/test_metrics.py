"""Tests for simulation metrics collection."""

import pytest

from repro.errors import SimulationError
from repro.simulator import SimulationMetrics
from repro.simulator.latency import ServiceAccount, ServicePath


def account(path, total=10.0):
    return ServiceAccount(
        path=path, total_ms=total, query_ms=0.0, fetch_ms=0.0, transfer_ms=0.0
    )


@pytest.fixture
def metrics():
    return SimulationMetrics([1, 2, 3])


class TestRecording:
    def test_request_types_counted(self, metrics):
        metrics.record_request(
            1, account(ServicePath.LOCAL_HIT), 0, 0, counted=True
        )
        metrics.record_request(
            1, account(ServicePath.GROUP_HIT), 2, 500, counted=True
        )
        metrics.record_request(
            1, account(ServicePath.ORIGIN_FETCH), 2, 800, counted=True
        )
        stats = metrics.cache_stats(1)
        assert stats.local_hits == 1
        assert stats.group_hits == 1
        assert stats.origin_fetches == 1
        assert stats.requests == 3
        assert stats.peer_bytes == 500
        assert stats.origin_bytes == 800
        assert stats.query_messages == 4

    def test_warmup_not_counted(self, metrics):
        metrics.record_request(
            1, account(ServicePath.LOCAL_HIT), 0, 0, counted=False
        )
        assert metrics.warmup_skipped == 1
        assert metrics.total_requests() == 0

    def test_invalidations(self, metrics):
        metrics.record_invalidation(2)
        metrics.record_invalidation(2)
        assert metrics.invalidation_messages == 2
        assert metrics.cache_stats(2).invalidations_received == 2

    def test_unknown_cache_rejected(self, metrics):
        with pytest.raises(SimulationError):
            metrics.record_invalidation(9)


class TestAggregates:
    def test_average_latency_all(self, metrics):
        metrics.record_request(
            1, account(ServicePath.LOCAL_HIT, 10.0), 0, 0, counted=True
        )
        metrics.record_request(
            2, account(ServicePath.LOCAL_HIT, 30.0), 0, 0, counted=True
        )
        assert metrics.average_latency_ms() == pytest.approx(20.0)

    def test_average_latency_subset(self, metrics):
        metrics.record_request(
            1, account(ServicePath.LOCAL_HIT, 10.0), 0, 0, counted=True
        )
        metrics.record_request(
            2, account(ServicePath.LOCAL_HIT, 30.0), 0, 0, counted=True
        )
        assert metrics.average_latency_ms([2]) == pytest.approx(30.0)

    def test_average_latency_weighted_by_requests(self, metrics):
        """Per the paper: mean over requests, not mean of cache means."""
        for _ in range(3):
            metrics.record_request(
                1, account(ServicePath.LOCAL_HIT, 10.0), 0, 0, counted=True
            )
        metrics.record_request(
            2, account(ServicePath.LOCAL_HIT, 50.0), 0, 0, counted=True
        )
        assert metrics.average_latency_ms() == pytest.approx(20.0)

    def test_no_requests_raises(self, metrics):
        with pytest.raises(SimulationError):
            metrics.average_latency_ms()

    def test_hit_rates(self, metrics):
        metrics.record_request(
            1, account(ServicePath.LOCAL_HIT), 0, 0, counted=True
        )
        metrics.record_request(
            1, account(ServicePath.GROUP_HIT), 0, 0, counted=True
        )
        metrics.record_request(
            2, account(ServicePath.ORIGIN_FETCH), 0, 0, counted=True
        )
        metrics.record_request(
            2, account(ServicePath.ORIGIN_FETCH), 0, 0, counted=True
        )
        rates = metrics.hit_rates()
        assert rates["local"] == 0.25
        assert rates["group"] == 0.25
        assert rates["origin"] == 0.5

    def test_group_hit_rate(self, metrics):
        metrics.record_request(
            1, account(ServicePath.GROUP_HIT), 0, 0, counted=True
        )
        metrics.record_request(
            1, account(ServicePath.ORIGIN_FETCH), 0, 0, counted=True
        )
        assert metrics.group_hit_rate() == 0.5

    def test_group_hit_rate_no_misses(self, metrics):
        metrics.record_request(
            1, account(ServicePath.LOCAL_HIT), 0, 0, counted=True
        )
        assert metrics.group_hit_rate() == 0.0

    def test_conservation(self, metrics):
        metrics.record_request(
            1, account(ServicePath.LOCAL_HIT), 0, 0, counted=True
        )
        assert metrics.conservation_holds()

    def test_cache_hit_rate(self, metrics):
        metrics.record_request(
            1, account(ServicePath.LOCAL_HIT), 0, 0, counted=True
        )
        metrics.record_request(
            1, account(ServicePath.ORIGIN_FETCH), 0, 0, counted=True
        )
        assert metrics.cache_stats(1).hit_rate() == 0.5

    def test_hit_rate_no_requests_is_zero(self, metrics):
        """Zero-denominator convention: empty sub-populations yield 0.0."""
        assert metrics.cache_stats(1).hit_rate() == 0.0

    def test_zero_denominator_convention_is_consistent(self, metrics):
        """Both per-cache hit rate and group hit rate use the same
        convention: an empty denominator returns 0.0 instead of raising."""
        assert metrics.cache_stats(2).hit_rate() == 0.0
        assert metrics.group_hit_rate() == 0.0

    def test_latency_percentiles(self, metrics):
        for total in (10.0, 20.0, 30.0, 40.0):
            metrics.record_request(
                1, account(ServicePath.LOCAL_HIT, total), 0, 0, counted=True
            )
        assert 30.0 <= metrics.latency_p95_ms() <= 40.0
        assert metrics.latency_percentile(0.0) <= 10.1

    def test_latency_percentile_empty_raises(self, metrics):
        with pytest.raises(SimulationError):
            metrics.latency_p95_ms()

    def test_empty_cache_list_rejected(self):
        with pytest.raises(SimulationError):
            SimulationMetrics([])
