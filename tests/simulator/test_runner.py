"""Tests for the high-level simulate() entry point."""

import pytest

from repro.config import SimulationConfig
from repro.core.groups import single_group, singleton_groups
from repro.core.schemes import SLScheme
from repro.config import LandmarkConfig
from repro.simulator import simulate


class TestSimulate:
    def test_returns_result(self, small_network, small_workload):
        result = simulate(
            small_network,
            singleton_groups(small_network.cache_nodes),
            small_workload,
        )
        assert result.average_latency_ms() > 0
        assert result.metrics.total_requests() > 0

    def test_latency_subsets(self, small_network, small_workload):
        result = simulate(
            small_network,
            single_group(small_network.cache_nodes),
            small_workload,
        )
        near = result.latency_nearest_origin(5)
        far = result.latency_farthest_origin(5)
        assert near > 0 and far > 0
        overall = result.average_latency_ms()
        assert min(near, far) <= overall <= max(near, far) + 1e-9

    def test_far_caches_slower_without_cooperation(
        self, small_network, small_workload
    ):
        result = simulate(
            small_network,
            singleton_groups(small_network.cache_nodes),
            small_workload,
        )
        assert result.latency_farthest_origin(5) > result.latency_nearest_origin(5)

    def test_hit_rates_sum_to_one(self, small_network, small_workload):
        result = simulate(
            small_network,
            single_group(small_network.cache_nodes),
            small_workload,
        )
        rates = result.hit_rates()
        assert sum(rates.values()) == pytest.approx(1.0)

    def test_cooperation_raises_hit_rate(self, small_network, small_workload):
        solo = simulate(
            small_network,
            singleton_groups(small_network.cache_nodes),
            small_workload,
        )
        grouped = simulate(
            small_network,
            single_group(small_network.cache_nodes),
            small_workload,
        )
        assert grouped.group_hit_rate() > solo.group_hit_rate()
        assert grouped.hit_rates()["origin"] < solo.hit_rates()["origin"]

    def test_deterministic(self, small_network, small_workload):
        grouping = SLScheme(
            landmark_config=LandmarkConfig(num_landmarks=4)
        ).form_groups(small_network, 4, seed=1)
        a = simulate(small_network, grouping, small_workload)
        b = simulate(small_network, grouping, small_workload)
        assert a.average_latency_ms() == b.average_latency_ms()

    def test_latency_lower_bound(self, small_network, small_workload):
        """No request can beat local processing time."""
        config = SimulationConfig()
        result = simulate(
            small_network,
            singleton_groups(small_network.cache_nodes),
            small_workload,
            config=config,
        )
        for cache in small_network.cache_nodes:
            stats = result.metrics.cache_stats(cache)
            if stats.latency.count:
                assert (
                    stats.latency.minimum
                    >= config.cache.local_processing_ms
                )

    def test_group_protocol_mode_forwarded(
        self, small_network, small_workload
    ):
        directory = simulate(
            small_network,
            single_group(small_network.cache_nodes),
            small_workload,
            group_protocol_mode="directory",
        )
        beacon = simulate(
            small_network,
            single_group(small_network.cache_nodes),
            small_workload,
            group_protocol_mode="beacon",
        )
        # Directory lookups are free of distance costs, so latency is lower.
        assert directory.average_latency_ms() < beacon.average_latency_ms()
