"""Tests for cooperative placement (near-peer duplicate avoidance)."""

import pytest

from repro.config import (
    CacheConfig,
    DocumentConfig,
    SimulationConfig,
)
from repro.core.groups import CacheGroup, GroupingResult
from repro.errors import ConfigurationError
from repro.simulator import SimulationEngine
from repro.topology import network_from_matrix
from repro.workload import Workload, build_catalog
from repro.workload.trace import RequestRecord


@pytest.fixture
def network():
    """Ec0 and Ec1 are 4 ms apart; Ec2 is 100 ms from both."""
    return network_from_matrix(
        [
            [0.0, 10.0, 12.0, 80.0],
            [10.0, 0.0, 4.0, 100.0],
            [12.0, 4.0, 0.0, 100.0],
            [80.0, 100.0, 100.0, 0.0],
        ]
    )


@pytest.fixture
def catalog():
    return build_catalog(
        DocumentConfig(
            num_documents=4, mean_size_bytes=1000.0, size_sigma=0.0,
            dynamic_fraction=0.0,
        ),
        seed=1,
    )


def config(cooperative, threshold=10.0):
    return SimulationConfig(
        cache=CacheConfig(
            capacity_fraction=0.5,
            cooperative_placement=cooperative,
            placement_rtt_threshold_ms=threshold,
        ),
        warmup_fraction=0.0,
    )


def one_group():
    return GroupingResult(
        scheme="manual", groups=(CacheGroup(0, (1, 2, 3)),)
    )


def run(network, catalog, requests, cfg):
    workload = Workload(
        catalog=catalog, requests=tuple(requests), updates=()
    )
    engine = SimulationEngine(network, one_group(), workload, cfg)
    return engine, engine.run()


class TestCooperativePlacement:
    def test_near_peer_copy_not_duplicated(self, network, catalog):
        requests = [
            RequestRecord(0.0, 1, 0),   # Ec0 stores doc 0
            RequestRecord(10.0, 2, 0),  # Ec1 group-hits Ec0 (4ms, near)
        ]
        engine, metrics = run(network, catalog, requests, config(True))
        assert metrics.cache_stats(2).group_hits == 1
        assert not engine.cache(2).holds(0)
        assert metrics.cache_stats(2).placement_skips == 1

    def test_far_peer_copy_is_duplicated(self, network, catalog):
        requests = [
            RequestRecord(0.0, 1, 0),
            RequestRecord(10.0, 3, 0),  # Ec2 group-hits Ec0 (100ms, far)
        ]
        engine, metrics = run(network, catalog, requests, config(True))
        assert metrics.cache_stats(3).group_hits == 1
        assert engine.cache(3).holds(0)
        assert metrics.cache_stats(3).placement_skips == 0

    def test_disabled_always_duplicates(self, network, catalog):
        requests = [
            RequestRecord(0.0, 1, 0),
            RequestRecord(10.0, 2, 0),
        ]
        engine, metrics = run(network, catalog, requests, config(False))
        assert engine.cache(2).holds(0)
        assert metrics.cache_stats(2).placement_skips == 0

    def test_skipped_copy_is_refetched_from_peer(self, network, catalog):
        """The skipping cache keeps group-hitting its near peer."""
        requests = [
            RequestRecord(0.0, 1, 0),
            RequestRecord(10.0, 2, 0),
            RequestRecord(20.0, 2, 0),
        ]
        _engine, metrics = run(network, catalog, requests, config(True))
        assert metrics.cache_stats(2).group_hits == 2
        assert metrics.cache_stats(2).local_hits == 0

    def test_threshold_zero_never_skips(self, network, catalog):
        requests = [
            RequestRecord(0.0, 1, 0),
            RequestRecord(10.0, 2, 0),
        ]
        engine, metrics = run(
            network, catalog, requests, config(True, threshold=0.0)
        )
        assert engine.cache(2).holds(0)

    def test_saves_storage_for_other_documents(self, network, catalog):
        """The freed space serves extra documents locally."""
        # Capacity = 2 documents.  Without cooperative placement,
        # cache 2 stores doc 0 (peer-duplicated) + two others with
        # churn; with it, doc 0 stays remote and docs 1,2 both fit.
        requests = [
            RequestRecord(0.0, 1, 0),
            RequestRecord(10.0, 2, 0),
            RequestRecord(20.0, 2, 1),
            RequestRecord(30.0, 2, 2),
            RequestRecord(40.0, 2, 1),
            RequestRecord(50.0, 2, 2),
        ]
        engine, metrics = run(network, catalog, requests, config(True))
        assert engine.cache(2).holds(1)
        assert engine.cache(2).holds(2)
        assert metrics.cache_stats(2).local_hits == 2

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(placement_rtt_threshold_ms=-1.0).validate()
