"""Tests for simulation events and the event queue."""

import pytest

from repro.errors import SimulationError
from repro.simulator import EventQueue, OriginUpdateEvent, RequestEvent


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        q.push(RequestEvent(5.0, 1, 0))
        q.push(RequestEvent(1.0, 2, 0))
        q.push(RequestEvent(3.0, 3, 0))
        times = [q.pop().timestamp_ms for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_updates_before_requests_at_same_time(self):
        q = EventQueue()
        q.push(RequestEvent(2.0, 1, 0))
        q.push(OriginUpdateEvent(2.0, 0))
        first = q.pop()
        assert isinstance(first, OriginUpdateEvent)

    def test_insertion_order_tiebreak(self):
        q = EventQueue()
        a = RequestEvent(1.0, 1, 0)
        b = RequestEvent(1.0, 2, 0)
        q.push(a)
        q.push(b)
        assert q.pop() is a
        assert q.pop() is b

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        q.push(RequestEvent(1.0, 1, 0))
        assert q
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(RequestEvent(4.0, 1, 0))
        assert q.peek_time() == 4.0

    def test_no_scheduling_into_past(self):
        q = EventQueue()
        q.push(RequestEvent(5.0, 1, 0))
        q.pop()
        with pytest.raises(SimulationError):
            q.push(RequestEvent(4.0, 1, 0))

    def test_scheduling_at_current_time_allowed(self):
        q = EventQueue()
        q.push(RequestEvent(5.0, 1, 0))
        q.pop()
        q.push(RequestEvent(5.0, 1, 0))
        assert q.pop().timestamp_ms == 5.0

    def test_negative_timestamp_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.push(RequestEvent(-1.0, 1, 0))


class TestNowMs:
    """Regression tests: ``now_ms`` before any pop used to be -inf."""

    def test_empty_queue_is_time_zero(self):
        assert EventQueue().now_ms == 0.0

    def test_pushed_but_never_popped_is_time_zero(self):
        q = EventQueue()
        q.push(RequestEvent(5.0, 1, 0))
        assert q.now_ms == 0.0

    def test_tracks_last_pop(self):
        q = EventQueue()
        q.push(RequestEvent(5.0, 1, 0))
        q.push(RequestEvent(2.0, 1, 0))
        q.pop()
        assert q.now_ms == 2.0
        q.pop()
        assert q.now_ms == 5.0

    def test_exhausted_queue_keeps_final_time(self):
        q = EventQueue()
        q.push(RequestEvent(7.0, 1, 0))
        q.pop()
        assert q.now_ms == 7.0


class TestDrainSorted:
    def test_matches_pop_order(self):
        events = [
            RequestEvent(5.0, 1, 0),
            OriginUpdateEvent(2.0, 0),
            RequestEvent(2.0, 2, 0),
            RequestEvent(2.0, 3, 0),
        ]
        by_pop = EventQueue()
        by_drain = EventQueue()
        for event in events:
            by_pop.push(event)
            by_drain.push(event)
        popped = [by_pop.pop() for _ in range(len(events))]
        assert by_drain.drain_sorted() == popped

    def test_empties_queue_and_advances_clock(self):
        q = EventQueue()
        q.push(RequestEvent(9.0, 1, 0))
        q.push(RequestEvent(3.0, 1, 0))
        q.drain_sorted()
        assert len(q) == 0
        assert q.now_ms == 9.0

    def test_empty_drain(self):
        q = EventQueue()
        assert q.drain_sorted() == []
        assert q.now_ms == 0.0
