"""Failure injection tests: transient cache crashes and recovery."""

import pytest

from repro.config import CacheConfig, DocumentConfig, SimulationConfig
from repro.core.groups import CacheGroup, GroupingResult
from repro.errors import SimulationError
from repro.simulator import (
    CacheFailEvent,
    CacheRecoverEvent,
    SimulationEngine,
    simulate,
)
from repro.topology import network_from_matrix
from repro.workload import Workload, build_catalog
from repro.workload.trace import RequestRecord


@pytest.fixture
def network():
    return network_from_matrix(
        [
            [0.0, 10.0, 20.0, 30.0],
            [10.0, 0.0, 4.0, 25.0],
            [20.0, 4.0, 0.0, 25.0],
            [30.0, 25.0, 25.0, 0.0],
        ]
    )


@pytest.fixture
def catalog():
    return build_catalog(
        DocumentConfig(
            num_documents=4, mean_size_bytes=1000.0, size_sigma=0.0,
            dynamic_fraction=0.0,
        ),
        seed=1,
    )


def config():
    return SimulationConfig(
        cache=CacheConfig(capacity_fraction=0.5), warmup_fraction=0.0
    )


def one_group():
    return GroupingResult(
        scheme="manual", groups=(CacheGroup(0, (1, 2, 3)),)
    )


def engine_for(network, catalog, requests, failures):
    workload = Workload(
        catalog=catalog, requests=tuple(requests), updates=()
    )
    return SimulationEngine(
        network, one_group(), workload, config(), failures=failures
    )


class TestFailure:
    def test_failed_cache_serves_from_origin(self, network, catalog):
        requests = [
            RequestRecord(0.0, 1, 0),
            RequestRecord(20.0, 1, 0),  # while down
        ]
        failures = [CacheFailEvent(10.0, 1)]
        engine = engine_for(network, catalog, requests, failures)
        metrics = engine.run()
        stats = metrics.cache_stats(1)
        assert stats.requests_while_down == 1
        assert stats.origin_fetches == 2  # initial + while-down
        assert stats.local_hits == 0

    def test_crash_loses_contents(self, network, catalog):
        requests = [RequestRecord(0.0, 1, 0)]
        failures = [CacheFailEvent(10.0, 1)]
        engine = engine_for(network, catalog, requests, failures)
        engine.run()
        assert engine.cache(1).document_count == 0
        assert engine.cache(1).used_bytes == 0

    def test_crash_cleans_directory(self, network, catalog):
        requests = [
            RequestRecord(0.0, 1, 0),    # cache 1 stores doc 0
            RequestRecord(20.0, 3, 0),   # cache 3 must go to origin
        ]
        failures = [CacheFailEvent(10.0, 1)]
        engine = engine_for(network, catalog, requests, failures)
        metrics = engine.run()
        assert metrics.cache_stats(3).group_hits == 0
        assert metrics.cache_stats(3).origin_fetches == 1
        # The crashed cache left the directory (cache 3's own fetched
        # copy is the only holder now).
        assert engine.protocol.all_holders(0) == [3]

    def test_recovery_restores_service(self, network, catalog):
        requests = [
            RequestRecord(30.0, 1, 0),   # after recovery: normal fetch
            RequestRecord(40.0, 1, 0),   # local hit again
        ]
        failures = [CacheFailEvent(10.0, 1), CacheRecoverEvent(20.0, 1)]
        engine = engine_for(network, catalog, requests, failures)
        metrics = engine.run()
        stats = metrics.cache_stats(1)
        assert stats.requests_while_down == 0
        assert stats.local_hits == 1

    def test_down_peer_not_selected_as_holder(self, network, catalog):
        requests = [
            RequestRecord(0.0, 2, 0),    # cache 2 stores doc 0
            RequestRecord(20.0, 1, 0),   # cache 2 down: no group hit
        ]
        failures = [CacheFailEvent(10.0, 2)]
        engine = engine_for(network, catalog, requests, failures)
        metrics = engine.run()
        assert metrics.cache_stats(1).group_hits == 0

    def test_double_fail_rejected(self, network, catalog):
        requests = [RequestRecord(0.0, 1, 0)]
        failures = [CacheFailEvent(10.0, 1), CacheFailEvent(20.0, 1)]
        engine = engine_for(network, catalog, requests, failures)
        with pytest.raises(SimulationError):
            engine.run()

    def test_recover_without_fail_rejected(self, network, catalog):
        requests = [RequestRecord(0.0, 1, 0)]
        failures = [CacheRecoverEvent(10.0, 1)]
        engine = engine_for(network, catalog, requests, failures)
        with pytest.raises(SimulationError):
            engine.run()

    def test_unknown_cache_rejected(self, network, catalog):
        requests = [RequestRecord(0.0, 1, 0)]
        with pytest.raises(SimulationError):
            engine_for(network, catalog, requests, [CacheFailEvent(5.0, 99)])

    def test_simulate_accepts_failures(self, network, catalog):
        workload = Workload(
            catalog=catalog,
            requests=(RequestRecord(0.0, 1, 0), RequestRecord(20.0, 1, 0)),
            updates=(),
        )
        result = simulate(
            network, one_group(), workload, config(),
            failures=[CacheFailEvent(10.0, 1)],
        )
        assert result.metrics.cache_stats(1).requests_while_down == 1

    def test_conservation_under_failures(self, network, catalog):
        requests = [
            RequestRecord(float(i * 5), 1 + (i % 3), i % 4)
            for i in range(30)
        ]
        failures = [
            CacheFailEvent(40.0, 2),
            CacheRecoverEvent(90.0, 2),
            CacheFailEvent(100.0, 3),
        ]
        engine = engine_for(network, catalog, requests, failures)
        metrics = engine.run()
        assert metrics.conservation_holds()
        assert metrics.total_requests() == 30

    def test_conservation_with_warmup_and_failures(self, network, catalog):
        """Regression: run() must leave every served request accounted
        for even when warm-up exclusion and mid-run crashes overlap."""
        requests = [
            RequestRecord(float(i * 5), 1 + (i % 3), i % 4)
            for i in range(60)
        ]
        failures = [
            CacheFailEvent(30.0, 2),    # crash during warm-up
            CacheRecoverEvent(80.0, 2),
            CacheFailEvent(150.0, 1),   # crash after warm-up
            CacheRecoverEvent(220.0, 1),
        ]
        workload = Workload(
            catalog=catalog, requests=tuple(requests), updates=()
        )
        config_obj = SimulationConfig(
            cache=CacheConfig(capacity_fraction=0.5), warmup_fraction=0.2
        )
        engine = SimulationEngine(
            network, one_group(), workload, config_obj, failures=failures
        )
        metrics = engine.run()  # run() itself asserts conservation
        assert metrics.conservation_holds()
        # warm-up requests are excluded from the counted totals
        assert metrics.total_requests() == 48
        shares = metrics.hit_rates()
        assert sum(shares.values()) == pytest.approx(1.0)
