"""Tests for the simulation engine's event handling."""

import pytest

from repro.config import (
    CacheConfig,
    DocumentConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.core.groups import CacheGroup, GroupingResult, single_group
from repro.errors import SimulationError
from repro.simulator import SimulationEngine
from repro.workload import Workload, build_catalog
from repro.workload.trace import RequestRecord, UpdateRecord
from repro.topology import network_from_matrix


@pytest.fixture
def tiny_network():
    """Origin + 2 caches: Os--10ms--Ec0, Os--20ms--Ec1, Ec0--4ms--Ec1."""
    return network_from_matrix(
        [
            [0.0, 10.0, 20.0],
            [10.0, 0.0, 4.0],
            [20.0, 4.0, 0.0],
        ]
    )


@pytest.fixture
def tiny_catalog():
    return build_catalog(
        DocumentConfig(
            num_documents=4, mean_size_bytes=1000.0, size_sigma=0.0,
            dynamic_fraction=0.5,
        ),
        seed=1,
    )


def workload_of(catalog, requests, updates=()):
    return Workload(
        catalog=catalog, requests=tuple(requests), updates=tuple(updates)
    )


def sim_config(**overrides):
    defaults = dict(
        # Half the catalog fits in each cache (the default 10% of a
        # 4-document catalog would be smaller than one document).
        cache=CacheConfig(capacity_fraction=0.5, local_processing_ms=0.5),
        origin_processing_ms=40.0,
        link_bandwidth_bytes_per_ms=1000.0,
        group_lookup_ms=0.0,
        warmup_fraction=0.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def pair_grouping():
    return GroupingResult(
        scheme="manual", groups=(CacheGroup(0, (1, 2)),)
    )


class TestRequestHandling:
    def test_first_request_is_origin_fetch(self, tiny_network, tiny_catalog):
        w = workload_of(tiny_catalog, [RequestRecord(0.0, 1, 0)])
        engine = SimulationEngine(
            tiny_network, pair_grouping(), w, config=sim_config()
        )
        metrics = engine.run()
        stats = metrics.cache_stats(1)
        assert stats.origin_fetches == 1
        # local 0.5 + query (beacon may be self or peer) + rtt 10
        # + origin 40 + transfer 1.
        base = 0.5 + 10.0 + 40.0 + 1.0
        assert stats.latency.mean in (
            pytest.approx(base),          # beacon was self
            pytest.approx(base + 4.0),    # beacon was the peer
        )

    def test_second_request_local_hit(self, tiny_network, tiny_catalog):
        w = workload_of(
            tiny_catalog,
            [RequestRecord(0.0, 1, 0), RequestRecord(1.0, 1, 0)],
        )
        engine = SimulationEngine(
            tiny_network, pair_grouping(), w, config=sim_config()
        )
        metrics = engine.run()
        stats = metrics.cache_stats(1)
        assert stats.origin_fetches == 1
        assert stats.local_hits == 1

    def test_peer_copy_gives_group_hit(self, tiny_network, tiny_catalog):
        w = workload_of(
            tiny_catalog,
            [RequestRecord(0.0, 1, 0), RequestRecord(1.0, 2, 0)],
        )
        engine = SimulationEngine(
            tiny_network, pair_grouping(), w, config=sim_config()
        )
        metrics = engine.run()
        assert metrics.cache_stats(2).group_hits == 1

    def test_singleton_groups_never_group_hit(
        self, tiny_network, tiny_catalog
    ):
        from repro.core.groups import singleton_groups

        w = workload_of(
            tiny_catalog,
            [RequestRecord(0.0, 1, 0), RequestRecord(1.0, 2, 0)],
        )
        engine = SimulationEngine(
            tiny_network,
            singleton_groups([1, 2]),
            w,
            config=sim_config(),
        )
        metrics = engine.run()
        assert metrics.cache_stats(2).group_hits == 0
        assert metrics.cache_stats(2).origin_fetches == 1

    def test_conservation_across_run(self, tiny_network, tiny_catalog):
        requests = [
            RequestRecord(float(i), 1 + (i % 2), i % 4) for i in range(40)
        ]
        w = workload_of(tiny_catalog, requests)
        engine = SimulationEngine(
            tiny_network, pair_grouping(), w, config=sim_config()
        )
        metrics = engine.run()
        assert metrics.total_requests() == 40
        assert metrics.conservation_holds()


class TestUpdateHandling:
    def test_update_invalidates_cached_copies(
        self, tiny_network, tiny_catalog
    ):
        dynamic_doc = tiny_catalog.dynamic_ids()[0]
        w = workload_of(
            tiny_catalog,
            [
                RequestRecord(0.0, 1, dynamic_doc),
                RequestRecord(10.0, 1, dynamic_doc),
            ],
            updates=[UpdateRecord(5.0, dynamic_doc)],
        )
        engine = SimulationEngine(
            tiny_network, pair_grouping(), w, config=sim_config()
        )
        metrics = engine.run()
        stats = metrics.cache_stats(1)
        # The copy was invalidated between the requests: two origin trips.
        assert stats.origin_fetches == 2
        assert stats.local_hits == 0
        assert stats.invalidations_received == 1
        assert metrics.invalidation_messages == 1

    def test_consistency_disabled_serves_stale(
        self, tiny_network, tiny_catalog
    ):
        dynamic_doc = tiny_catalog.dynamic_ids()[0]
        w = workload_of(
            tiny_catalog,
            [
                RequestRecord(0.0, 1, dynamic_doc),
                RequestRecord(10.0, 1, dynamic_doc),
            ],
            updates=[UpdateRecord(5.0, dynamic_doc)],
        )
        engine = SimulationEngine(
            tiny_network,
            pair_grouping(),
            w,
            config=sim_config(consistency_enabled=False),
        )
        metrics = engine.run()
        assert metrics.cache_stats(1).local_hits == 1
        assert metrics.invalidation_messages == 0

    def test_update_before_request_at_same_time(
        self, tiny_network, tiny_catalog
    ):
        """Simultaneous update+request: the request sees the new version."""
        dynamic_doc = tiny_catalog.dynamic_ids()[0]
        w = workload_of(
            tiny_catalog,
            [
                RequestRecord(0.0, 1, dynamic_doc),
                RequestRecord(5.0, 1, dynamic_doc),
            ],
            updates=[UpdateRecord(5.0, dynamic_doc)],
        )
        engine = SimulationEngine(
            tiny_network, pair_grouping(), w, config=sim_config()
        )
        engine.run()
        assert engine.cache(1).entry(dynamic_doc).version == 1


class TestWarmup:
    def test_warmup_requests_excluded_from_metrics(
        self, tiny_network, tiny_catalog
    ):
        requests = [RequestRecord(float(i), 1, 0) for i in range(10)]
        w = workload_of(tiny_catalog, requests)
        engine = SimulationEngine(
            tiny_network,
            pair_grouping(),
            w,
            config=sim_config(warmup_fraction=0.5),
        )
        metrics = engine.run()
        assert metrics.total_requests() == 5
        assert metrics.warmup_skipped == 5

    def test_warmup_still_populates_cache(self, tiny_network, tiny_catalog):
        requests = [RequestRecord(0.0, 1, 0), RequestRecord(1.0, 1, 0)]
        w = workload_of(tiny_catalog, requests)
        engine = SimulationEngine(
            tiny_network,
            pair_grouping(),
            w,
            config=sim_config(warmup_fraction=0.5),
        )
        metrics = engine.run()
        # Only the second request is counted, and it is a local hit
        # because the warm-up request populated the cache.
        assert metrics.cache_stats(1).local_hits == 1


class TestValidation:
    def test_grouping_must_cover_network(self, tiny_network, tiny_catalog):
        w = workload_of(tiny_catalog, [RequestRecord(0.0, 1, 0)])
        partial = GroupingResult(
            scheme="manual", groups=(CacheGroup(0, (1,)),)
        )
        with pytest.raises(SimulationError):
            SimulationEngine(tiny_network, partial, w, config=sim_config())

    def test_request_for_unknown_cache_rejected(
        self, tiny_network, tiny_catalog
    ):
        w = workload_of(tiny_catalog, [RequestRecord(0.0, 9, 0)])
        with pytest.raises(SimulationError):
            SimulationEngine(
                tiny_network, pair_grouping(), w, config=sim_config()
            )

    def test_directory_tracks_evictions(self, tiny_network):
        """Evicted copies disappear from the group directory."""
        catalog = build_catalog(
            DocumentConfig(
                num_documents=10, mean_size_bytes=1000.0, size_sigma=0.0,
                dynamic_fraction=0.0,
            ),
            seed=2,
        )
        # Capacity fraction sized to hold exactly 1 of the 10 documents.
        config = sim_config(
            cache=CacheConfig(capacity_fraction=0.1, local_processing_ms=0.5),
        )
        requests = [RequestRecord(float(i), 1, i % 3) for i in range(9)]
        w = workload_of(catalog, requests)
        engine = SimulationEngine(
            tiny_network, pair_grouping(), w, config=config
        )
        engine.run()
        held = set(engine.cache(1).stored_ids())
        for doc in range(3):
            holders = set(engine.protocol.all_holders(doc))
            assert (1 in holders) == (doc in held)
