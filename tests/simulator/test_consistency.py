"""Tests for consistency maintenance: invalidation vs TTL vs disabled."""

import pytest

from repro.config import (
    CacheConfig,
    DocumentConfig,
    SimulationConfig,
)
from repro.core.groups import CacheGroup, GroupingResult
from repro.errors import ConfigurationError
from repro.simulator import SimulationEngine
from repro.topology import network_from_matrix
from repro.workload import Workload, build_catalog
from repro.workload.trace import RequestRecord, UpdateRecord


@pytest.fixture
def tiny_network():
    return network_from_matrix(
        [
            [0.0, 10.0, 20.0],
            [10.0, 0.0, 4.0],
            [20.0, 4.0, 0.0],
        ]
    )


@pytest.fixture
def catalog():
    return build_catalog(
        DocumentConfig(
            num_documents=4, mean_size_bytes=1000.0, size_sigma=0.0,
            dynamic_fraction=1.0,
        ),
        seed=1,
    )


def sim_config(**overrides):
    defaults = dict(
        cache=CacheConfig(capacity_fraction=0.5),
        warmup_fraction=0.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def pair_grouping():
    return GroupingResult(scheme="manual", groups=(CacheGroup(0, (1, 2)),))


def run(network, catalog, requests, updates, config):
    workload = Workload(
        catalog=catalog, requests=tuple(requests), updates=tuple(updates)
    )
    engine = SimulationEngine(network, pair_grouping(), workload, config)
    return engine, engine.run()


class TestConfigValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(consistency_mode="gossip").validate()

    def test_bad_ttl_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(ttl_ms=0.0).validate()


class TestInvalidateMode:
    def test_never_serves_stale(self, tiny_network, catalog):
        requests = [RequestRecord(float(i * 10), 1, 0) for i in range(10)]
        updates = [UpdateRecord(25.0, 0), UpdateRecord(55.0, 0)]
        _engine, metrics = run(
            tiny_network, catalog, requests, updates,
            sim_config(consistency_mode="invalidate"),
        )
        assert metrics.stale_serve_fraction() == 0.0
        assert metrics.invalidation_messages == 2


class TestTTLMode:
    def test_copy_expires_after_ttl(self, tiny_network, catalog):
        requests = [
            RequestRecord(0.0, 1, 0),
            RequestRecord(100.0, 1, 0),  # within TTL: local hit
            RequestRecord(9_000.0, 1, 0),  # past TTL: re-fetch
        ]
        engine, metrics = run(
            tiny_network, catalog, requests, [],
            sim_config(consistency_mode="ttl", ttl_ms=5_000.0),
        )
        stats = metrics.cache_stats(1)
        assert stats.local_hits == 1
        assert stats.origin_fetches == 2

    def test_no_invalidation_fanout(self, tiny_network, catalog):
        requests = [RequestRecord(0.0, 1, 0), RequestRecord(10.0, 1, 0)]
        updates = [UpdateRecord(5.0, 0)]
        _engine, metrics = run(
            tiny_network, catalog, requests, updates,
            sim_config(consistency_mode="ttl"),
        )
        assert metrics.invalidation_messages == 0

    def test_stale_serves_counted(self, tiny_network, catalog):
        requests = [RequestRecord(0.0, 1, 0), RequestRecord(10.0, 1, 0)]
        updates = [UpdateRecord(5.0, 0)]
        _engine, metrics = run(
            tiny_network, catalog, requests, updates,
            sim_config(consistency_mode="ttl", ttl_ms=60_000.0),
        )
        # The second request hits a copy predating the update.
        assert metrics.cache_stats(1).stale_serves == 1
        assert metrics.stale_serve_fraction() == 0.5

    def test_stale_group_fetch_counted(self, tiny_network, catalog):
        """Fetching a stale copy from a peer is a stale serve too."""
        requests = [
            RequestRecord(0.0, 1, 0),    # cache 1 stores v0
            RequestRecord(10.0, 2, 0),   # cache 2 fetches v0 from cache 1
        ]
        updates = [UpdateRecord(5.0, 0)]
        _engine, metrics = run(
            tiny_network, catalog, requests, updates,
            sim_config(consistency_mode="ttl", ttl_ms=60_000.0),
        )
        assert metrics.cache_stats(2).group_hits == 1
        assert metrics.cache_stats(2).stale_serves == 1

    def test_expired_holder_degrades_to_origin(self, tiny_network, catalog):
        """A directory entry whose copy has TTL-expired cannot serve."""
        requests = [
            RequestRecord(0.0, 1, 0),
            RequestRecord(9_000.0, 2, 0),  # holder's copy expired
        ]
        _engine, metrics = run(
            tiny_network, catalog, requests, [],
            sim_config(consistency_mode="ttl", ttl_ms=5_000.0),
        )
        assert metrics.cache_stats(2).group_hits == 0
        assert metrics.cache_stats(2).origin_fetches == 1

    def test_refetch_after_expiry_is_fresh(self, tiny_network, catalog):
        requests = [
            RequestRecord(0.0, 1, 0),
            RequestRecord(9_000.0, 1, 0),   # expired -> refetch v1
            RequestRecord(9_100.0, 1, 0),   # fresh local hit
        ]
        updates = [UpdateRecord(5.0, 0)]
        _engine, metrics = run(
            tiny_network, catalog, requests, updates,
            sim_config(consistency_mode="ttl", ttl_ms=5_000.0),
        )
        assert metrics.cache_stats(1).stale_serves == 0


class TestDisabled:
    def test_serves_stale_forever(self, tiny_network, catalog):
        requests = [RequestRecord(0.0, 1, 0), RequestRecord(10.0, 1, 0)]
        updates = [UpdateRecord(5.0, 0)]
        _engine, metrics = run(
            tiny_network, catalog, requests, updates,
            sim_config(consistency_enabled=False),
        )
        assert metrics.cache_stats(1).local_hits == 1
        assert metrics.cache_stats(1).stale_serves == 1
        assert metrics.invalidation_messages == 0
