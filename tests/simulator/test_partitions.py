"""Network partitions: degraded cooperation, timeouts, stale serves."""

import pytest

from repro.config import CacheConfig, DocumentConfig, SimulationConfig
from repro.core.groups import CacheGroup, GroupingResult
from repro.errors import SimulationError
from repro.faults import FaultSchedule, PartitionSpec, random_fault_schedule
from repro.simulator import SimulationEngine, simulate
from repro.topology import network_from_matrix
from repro.utils.rng import RngFactory
from repro.workload import Workload, build_catalog
from repro.workload.trace import RequestRecord, UpdateRecord


@pytest.fixture
def network():
    return network_from_matrix(
        [
            [0.0, 10.0, 20.0, 30.0],
            [10.0, 0.0, 4.0, 25.0],
            [20.0, 4.0, 0.0, 25.0],
            [30.0, 25.0, 25.0, 0.0],
        ]
    )


@pytest.fixture
def catalog():
    return build_catalog(
        DocumentConfig(
            num_documents=4, mean_size_bytes=1000.0, size_sigma=0.0,
            dynamic_fraction=0.0,
        ),
        seed=1,
    )


def config(**overrides):
    return SimulationConfig(
        cache=CacheConfig(capacity_fraction=0.5), warmup_fraction=0.0,
        **overrides,
    )


def one_group():
    return GroupingResult(
        scheme="manual", groups=(CacheGroup(0, (1, 2, 3)),)
    )


def engine_for(network, catalog, requests, faults, updates=(), cfg=None):
    workload = Workload(
        catalog=catalog, requests=tuple(requests), updates=tuple(updates)
    )
    return SimulationEngine(
        network, one_group(), workload, cfg or config(), faults=faults
    )


def window(nodes, start=10.0, end=30.0, timeout=500.0):
    return FaultSchedule(
        partitions=(
            PartitionSpec(start_ms=start, end_ms=end, nodes=tuple(nodes)),
        ),
        partition_timeout_ms=timeout,
    )


class TestCooperationAcrossTheCut:
    def test_partitioned_holder_not_a_group_hit(self, network, catalog):
        requests = [
            RequestRecord(0.0, 2, 0),   # cache 2 stores doc 0
            RequestRecord(20.0, 1, 0),  # 2 is cut off: no group hit
        ]
        engine = engine_for(network, catalog, requests, window([2]))
        metrics = engine.run()
        assert metrics.cache_stats(1).group_hits == 0
        assert metrics.cache_stats(1).origin_fetches == 1

    def test_unreachable_beacon_costs_the_timeout(self, network, catalog):
        # Doc 1 hashes to beacon member 2 of the sorted group [1, 2, 3].
        assert one_group().groups[0].members == (1, 2, 3)
        requests = [RequestRecord(20.0, 1, 1)]
        engine = engine_for(
            network, catalog, requests, window([2], timeout=500.0)
        )
        assert engine.protocol.beacon_of(1, 1) == 2
        metrics = engine.run()
        stats = metrics.cache_stats(1)
        assert stats.origin_fetches == 1
        # Latency includes the wasted partition timeout on the beacon.
        assert stats.latency.mean >= 500.0

    def test_heal_restores_group_hits(self, network, catalog):
        requests = [
            RequestRecord(0.0, 2, 0),   # cache 2 stores doc 0
            RequestRecord(40.0, 3, 0),  # after heal: cooperative hit
        ]
        engine = engine_for(network, catalog, requests, window([2]))
        metrics = engine.run()
        assert metrics.cache_stats(3).group_hits == 1

    def test_multicast_waits_out_partitioned_peer(self, network, catalog):
        requests = [RequestRecord(20.0, 1, 0)]
        workload = Workload(
            catalog=catalog, requests=tuple(requests), updates=()
        )
        engine = SimulationEngine(
            network, one_group(), workload, config(),
            group_protocol_mode="multicast",
            faults=window([3], timeout=500.0),
        )
        metrics = engine.run()
        stats = metrics.cache_stats(1)
        # The group-wide miss cannot conclude before the timeout.
        assert stats.latency.mean >= 500.0


class TestOriginPartition:
    def test_cut_from_origin_pays_timeout(self, network, catalog):
        origin = network.origin
        schedule = window([origin, 1], timeout=400.0)
        # Cache 1 shares the origin's side: free.  Cache 3 is on the
        # other side of the cut: every origin fetch waits the timeout.
        requests = [
            RequestRecord(20.0, 1, 0),
            RequestRecord(21.0, 3, 1),
        ]
        engine = engine_for(network, catalog, requests, schedule)
        metrics = engine.run()
        assert metrics.cache_stats(1).partition_timeouts == 0
        assert metrics.cache_stats(3).partition_timeouts == 1
        assert metrics.cache_stats(3).latency.mean >= 400.0


class TestStaleServes:
    @pytest.fixture
    def dynamic_catalog(self):
        # Updates only target dynamic documents.
        return build_catalog(
            DocumentConfig(
                num_documents=4, mean_size_bytes=1000.0, size_sigma=0.0,
                dynamic_fraction=1.0,
            ),
            seed=1,
        )

    def test_invalidation_skipped_across_the_cut(
        self, network, dynamic_catalog
    ):
        requests = [
            RequestRecord(0.0, 2, 0),    # cache 2 stores doc 0
            RequestRecord(25.0, 2, 0),   # stale local hit inside window
        ]
        updates = [UpdateRecord(15.0, 0)]
        engine = engine_for(
            network, dynamic_catalog, requests, window([2]), updates=updates
        )
        metrics = engine.run()
        stats = metrics.cache_stats(2)
        assert stats.local_hits == 1
        assert stats.stale_serves == 1
        assert stats.invalidations_received == 0

    def test_invalidation_reaches_connected_holders(
        self, network, dynamic_catalog
    ):
        requests = [
            RequestRecord(0.0, 1, 0),
            RequestRecord(25.0, 1, 0),   # invalidated: origin again
        ]
        updates = [UpdateRecord(15.0, 0)]
        engine = engine_for(
            network, dynamic_catalog, requests, window([2]), updates=updates
        )
        metrics = engine.run()
        stats = metrics.cache_stats(1)
        assert stats.invalidations_received == 1
        assert stats.stale_serves == 0


class TestScheduleValidationInEngine:
    def test_overlapping_partition_rejected_at_runtime(
        self, network, catalog
    ):
        schedule = FaultSchedule(
            partitions=(
                PartitionSpec(start_ms=10.0, end_ms=40.0, nodes=(2,)),
                PartitionSpec(start_ms=20.0, end_ms=30.0, nodes=(2, 3)),
            )
        )
        engine = engine_for(
            network, catalog, [RequestRecord(0.0, 1, 0)], schedule
        )
        with pytest.raises(SimulationError, match="already in partition"):
            engine.run()

    def test_unknown_partition_node_rejected(self, network, catalog):
        with pytest.raises(SimulationError, match="unknown node"):
            engine_for(
                network, catalog, [RequestRecord(0.0, 1, 0)], window([99])
            )

    def test_crash_schedule_of_unknown_cache_rejected(self, network, catalog):
        schedule = FaultSchedule(crashes=((5.0, 42),))
        with pytest.raises(SimulationError, match="unknown cache"):
            engine_for(
                network, catalog, [RequestRecord(0.0, 1, 0)], schedule
            )


class TestNoFaultEquivalence:
    def requests(self):
        return [
            RequestRecord(float(i * 3), 1 + (i % 3), i % 4)
            for i in range(24)
        ]

    def test_empty_schedule_matches_no_schedule(self, network, catalog):
        a = engine_for(
            network, catalog, self.requests(), FaultSchedule()
        ).run()
        b = engine_for(network, catalog, self.requests(), None).run()
        assert a.hit_rates() == b.hit_rates()
        assert a.average_latency_ms() == b.average_latency_ms()


class TestSimulateIntegration:
    def test_simulate_accepts_fault_schedule(self, network, catalog):
        workload = Workload(
            catalog=catalog,
            requests=tuple(
                RequestRecord(float(i * 5), 1 + (i % 3), i % 4)
                for i in range(40)
            ),
            updates=(),
        )
        schedule = FaultSchedule(
            crashes=((40.0, 2),),
            recoveries=((120.0, 2),),
            partitions=(
                PartitionSpec(start_ms=60.0, end_ms=100.0, nodes=(3,)),
            ),
        )
        result = simulate(
            network, one_group(), workload, config(), faults=schedule
        )
        assert result.metrics.conservation_holds()
        assert result.metrics.total_requests() == 40

    def test_random_schedule_runs_clean(self, network, catalog):
        schedule = random_fault_schedule(
            [1, 2, 3], 200.0, RngFactory(4),
            crash_fraction=0.4, partition_count=1, partition_size=1,
        )
        workload = Workload(
            catalog=catalog,
            requests=tuple(
                RequestRecord(float(i * 5), 1 + (i % 3), i % 4)
                for i in range(40)
            ),
            updates=(),
        )
        result = simulate(
            network, one_group(), workload, config(), faults=schedule
        )
        assert result.metrics.conservation_holds()
