"""Bit-identity of the ``"batched"`` event loop against the legacy loops.

The batched columnar loop (:mod:`repro.simulator.batched`) is a pure
performance rewrite: every metric, trace record, sample, archived
figure byte, and sanitize-ledger digest must equal the ``"sorted"``
loop's exactly — not approximately.  These tests pin that contract
across replacement policies, protocol modes, consistency modes,
failures, and partitions, and through the figure/ sanitize layers that
consume the engine.
"""

import json

import pytest

from repro.config import (
    CacheConfig,
    DocumentConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.core.groups import GroupingResult, groups_from_labels
from repro.faults.schedule import FaultSchedule, PartitionSpec
from repro.obs import MetricsSampler, Observer, TraceCollector
from repro.sanitize import diff_ledgers, sanitize
from repro.simulator import CacheFailEvent, CacheRecoverEvent, simulate
from repro.topology import build_network
from repro.workload import generate_workload

LOOPS = ("sorted", "heap", "batched")


@pytest.fixture(scope="module")
def testbed():
    network = build_network(num_caches=20, seed=31)
    workload = generate_workload(
        network.cache_nodes,
        WorkloadConfig(
            documents=DocumentConfig(
                num_documents=120, dynamic_fraction=0.5
            ),
            requests_per_cache=150,
        ),
        seed=31,
    )
    nodes = network.cache_nodes
    grouping = GroupingResult(
        scheme="test",
        groups=groups_from_labels(nodes, [n % 4 for n in nodes]),
    )
    return network, workload, grouping


def faults_for(network, workload):
    horizon = workload.horizon_ms
    nodes = network.cache_nodes
    failures = (
        CacheFailEvent(horizon * 0.2, nodes[4]),
        CacheRecoverEvent(horizon * 0.7, nodes[4]),
    )
    faults = FaultSchedule(
        crashes=((horizon * 0.3, nodes[7]),),
        recoveries=((horizon * 0.8, nodes[7]),),
        partitions=(
            PartitionSpec(
                horizon * 0.4, horizon * 0.6, nodes=tuple(nodes[:6])
            ),
        ),
    )
    return failures, faults


def fingerprint(result):
    """Canonical JSON of every number a run produces (reprs keep bits)."""
    metrics = result.metrics
    rows = []
    for node in metrics.cache_nodes():
        stats = metrics.cache_stats(node)
        latency = stats.latency
        rows.append([
            node, stats.local_hits, stats.group_hits,
            stats.origin_fetches, stats.query_messages, stats.peer_bytes,
            stats.origin_bytes, stats.invalidations_received,
            stats.stale_serves, stats.placement_skips,
            stats.requests_while_down, stats.partition_timeouts,
            repr(latency.mean), repr(latency.variance),
            repr(latency.minimum), repr(latency.maximum), latency.count,
        ])
    rows.append([
        metrics.warmup_skipped,
        metrics.invalidation_messages,
        repr(metrics.latency_p95_ms()),
        repr(
            metrics.average_latency_ms()
            if metrics.total_requests()
            else None
        ),
    ])
    return json.dumps(rows)


ALL_CONFIGS = [
    pytest.param(SimulationConfig(), id="default"),
    pytest.param(
        SimulationConfig(consistency_mode="ttl", ttl_ms=1_500.0),
        id="ttl",
    ),
    pytest.param(
        SimulationConfig(
            cache=CacheConfig(
                cooperative_placement=True,
                placement_rtt_threshold_ms=15.0,
            )
        ),
        id="coop-placement",
    ),
    pytest.param(
        SimulationConfig(
            origin_queueing=True, origin_capacity_rps=150.0
        ),
        id="origin-queueing",
    ),
    pytest.param(
        SimulationConfig(cache=CacheConfig(replacement_policy="lru")),
        id="lru",
    ),
    pytest.param(
        SimulationConfig(cache=CacheConfig(replacement_policy="lfu")),
        id="lfu",
    ),
]


class TestMetricsEquivalence:
    @pytest.mark.parametrize("config", ALL_CONFIGS)
    def test_plain(self, testbed, config):
        network, workload, grouping = testbed
        prints = {
            loop: fingerprint(
                simulate(
                    network, grouping, workload, config, event_loop=loop
                )
            )
            for loop in LOOPS
        }
        assert prints["batched"] == prints["sorted"] == prints["heap"]

    @pytest.mark.parametrize("config", ALL_CONFIGS)
    def test_with_failures_and_partitions(self, testbed, config):
        network, workload, grouping = testbed
        failures, faults = faults_for(network, workload)
        prints = {
            loop: fingerprint(
                simulate(
                    network, grouping, workload, config,
                    failures=failures, faults=faults, event_loop=loop,
                )
            )
            for loop in LOOPS
        }
        assert prints["batched"] == prints["sorted"] == prints["heap"]

    @pytest.mark.parametrize(
        "mode", ["beacon", "directory", "multicast"]
    )
    def test_protocol_modes(self, testbed, mode):
        network, workload, grouping = testbed
        prints = {
            loop: fingerprint(
                simulate(
                    network, grouping, workload,
                    group_protocol_mode=mode, event_loop=loop,
                )
            )
            for loop in ("sorted", "batched")
        }
        assert prints["batched"] == prints["sorted"]

    def test_batched_is_the_default(self, testbed):
        from repro.simulator.engine import DEFAULT_EVENT_LOOP

        assert DEFAULT_EVENT_LOOP == "batched"
        network, workload, grouping = testbed
        default = fingerprint(simulate(network, grouping, workload))
        explicit = fingerprint(
            simulate(network, grouping, workload, event_loop="batched")
        )
        assert default == explicit

    def test_unknown_loop_rejected(self, testbed):
        from repro.errors import SimulationError

        network, workload, grouping = testbed
        with pytest.raises(SimulationError, match="unknown event loop"):
            simulate(
                network, grouping, workload, event_loop="vectorised"
            )


class TestInstrumentedEquivalence:
    def run(self, testbed, loop, capacity=None):
        network, workload, grouping = testbed
        trace = (
            TraceCollector(capacity=capacity)
            if capacity
            else TraceCollector()
        )
        observer = Observer(
            trace=trace, sampler=MetricsSampler(interval_ms=500.0)
        )
        result = simulate(
            network, grouping, workload,
            observer=observer, event_loop=loop,
        )
        return result, trace

    @pytest.mark.parametrize("capacity", [None, 300])
    def test_trace_jsonl_is_byte_identical(
        self, testbed, tmp_path, capacity
    ):
        paths = {}
        for loop in ("sorted", "batched"):
            _, trace = self.run(testbed, loop, capacity=capacity)
            paths[loop] = tmp_path / f"{loop}-{capacity}.jsonl"
            trace.write_jsonl(paths[loop])
        assert (
            paths["sorted"].read_bytes() == paths["batched"].read_bytes()
        )

    def test_sampled_series_is_identical(self, testbed):
        series = {}
        for loop in ("sorted", "batched"):
            result, _ = self.run(testbed, loop)
            series[loop] = json.dumps(
                result.timeseries().to_dict(), sort_keys=True
            )
        assert series["sorted"] == series["batched"]


class TestFigureArchive:
    """The figure layer on top of the engine archives identical bytes."""

    def archive(self, tmp_path, monkeypatch, loop):
        import repro.simulator.engine as engine_module
        from repro.experiments import run_fig3
        from repro.persist import save_result

        monkeypatch.setattr(engine_module, "DEFAULT_EVENT_LOOP", loop)
        result = run_fig3(
            num_caches=16, group_sizes=(1, 4, 16), subset_count=3, seed=9
        )
        path = tmp_path / f"fig3-{loop}.json"
        save_result(result, path)
        return path.read_bytes()

    def test_fig3_archive_bytes_match(self, tmp_path, monkeypatch):
        archives = {
            loop: self.archive(tmp_path, monkeypatch, loop)
            for loop in ("sorted", "batched")
        }
        assert archives["sorted"] == archives["batched"]


class TestSanitizeLedger:
    """The draw ledger sees the same event stream from every loop."""

    def ledger_for(self, testbed, loop):
        network, workload, grouping = testbed
        with sanitize() as state:
            simulate(network, grouping, workload, event_loop=loop)
        return state.ledger

    def test_ledger_matches_across_loops(self, testbed):
        ledgers = {
            loop: self.ledger_for(testbed, loop) for loop in LOOPS
        }
        for loop in ("heap", "batched"):
            result = diff_ledgers(ledgers["sorted"], ledgers[loop])
            assert result.clean, "\n".join(
                divergence.describe()
                for divergence in result.divergences
            )

    def test_fig3_serial_vs_jobs2_zero_divergence(self):
        from repro.experiments import run_fig3
        from repro.runtime.scheduler import TaskScheduler, use_scheduler

        def ledger_at(jobs):
            with sanitize() as state:
                with TaskScheduler(jobs) as scheduler, \
                        use_scheduler(scheduler):
                    run_fig3(
                        num_caches=16, group_sizes=(2, 8),
                        subset_count=3, seed=9,
                    )
            return state.ledger

        result = diff_ledgers(ledger_at(1), ledger_at(2))
        assert result.clean, "\n".join(
            divergence.describe() for divergence in result.divergences
        )
