"""Cross-feature engine tests: TTL x failures x cooperative placement.

The simulator's optional mechanisms must compose without breaking the
core invariants (conservation, capacity, directory exactness).
"""

import pytest

from repro.config import (
    CacheConfig,
    DocumentConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.core.groups import GroupingResult, groups_from_labels
from repro.core.schemes import SLScheme
from repro.config import LandmarkConfig
from repro.simulator import CacheFailEvent, CacheRecoverEvent, simulate
from repro.topology import build_network
from repro.workload import generate_workload

import numpy as np


@pytest.fixture(scope="module")
def testbed():
    network = build_network(num_caches=20, seed=55)
    workload = generate_workload(
        network.cache_nodes,
        WorkloadConfig(
            documents=DocumentConfig(num_documents=80),
            requests_per_cache=60,
        ),
        seed=55,
    )
    grouping = SLScheme(
        landmark_config=LandmarkConfig(num_landmarks=5)
    ).form_groups(network, 4, seed=55)
    return network, workload, grouping


def failures_for(network, workload):
    horizon = workload.horizon_ms
    return [
        CacheFailEvent(horizon * 0.3, network.cache_nodes[0]),
        CacheRecoverEvent(horizon * 0.6, network.cache_nodes[0]),
        CacheFailEvent(horizon * 0.5, network.cache_nodes[5]),
    ]


ALL_CONFIGS = [
    pytest.param(
        SimulationConfig(consistency_mode="ttl", ttl_ms=2_000.0),
        id="ttl",
    ),
    pytest.param(
        SimulationConfig(
            cache=CacheConfig(
                cooperative_placement=True,
                placement_rtt_threshold_ms=15.0,
            )
        ),
        id="coop-placement",
    ),
    pytest.param(
        SimulationConfig(
            consistency_mode="ttl",
            ttl_ms=2_000.0,
            cache=CacheConfig(
                cooperative_placement=True,
                placement_rtt_threshold_ms=15.0,
            ),
            origin_queueing=True,
            origin_capacity_rps=500.0,
        ),
        id="everything-on",
    ),
]


class TestModeCombinations:
    @pytest.mark.parametrize("config", ALL_CONFIGS)
    def test_invariants_hold_with_failures(self, testbed, config):
        network, workload, grouping = testbed
        result = simulate(
            network, grouping, workload, config,
            failures=failures_for(network, workload),
        )
        metrics = result.metrics
        assert metrics.conservation_holds()
        assert metrics.total_requests() + metrics.warmup_skipped == (
            workload.num_requests
        )
        rates = result.hit_rates()
        assert sum(rates.values()) == pytest.approx(1.0)
        assert result.average_latency_ms() > 0

    @pytest.mark.parametrize("config", ALL_CONFIGS)
    @pytest.mark.parametrize(
        "mode", ["beacon", "multicast", "directory"]
    )
    def test_all_protocol_modes(self, testbed, config, mode):
        network, workload, grouping = testbed
        result = simulate(
            network, grouping, workload, config,
            group_protocol_mode=mode,
        )
        assert result.metrics.conservation_holds()

    def test_random_groupings_with_everything_on(self, testbed):
        network, workload, _ = testbed
        rng = np.random.default_rng(3)
        config = ALL_CONFIGS[2].values[0]
        for k in (1, 5, 20):
            labels = rng.integers(k, size=20)
            grouping = GroupingResult(
                scheme="random",
                groups=groups_from_labels(network.cache_nodes, labels),
            )
            result = simulate(
                network, grouping, workload, config,
                failures=failures_for(network, workload),
            )
            assert result.metrics.conservation_holds()

    def test_deterministic_under_all_features(self, testbed):
        network, workload, grouping = testbed
        config = ALL_CONFIGS[2].values[0]
        failures = failures_for(network, workload)
        a = simulate(network, grouping, workload, config, failures=failures)
        b = simulate(network, grouping, workload, config, failures=failures)
        assert a.average_latency_ms() == b.average_latency_ms()
        assert a.hit_rates() == b.hit_rates()
