"""Tests for the origin server."""

import pytest

from repro.config import DocumentConfig
from repro.errors import SimulationError
from repro.simulator import OriginServer
from repro.workload import build_catalog


@pytest.fixture
def origin():
    catalog = build_catalog(
        DocumentConfig(num_documents=10, dynamic_fraction=0.5), seed=1
    )
    return OriginServer(catalog)


class TestOriginServer:
    def test_initial_versions_zero(self, origin):
        for doc in range(10):
            assert origin.version_of(doc) == 0

    def test_update_bumps_version(self, origin):
        dynamic = origin.catalog.dynamic_ids()[0]
        assert origin.apply_update(dynamic) == 1
        assert origin.apply_update(dynamic) == 2
        assert origin.version_of(dynamic) == 2
        assert origin.updates_applied == 2

    def test_static_update_rejected(self, origin):
        static = [
            d for d in range(10) if not origin.catalog.is_dynamic(d)
        ][0]
        with pytest.raises(SimulationError):
            origin.apply_update(static)

    def test_size_of(self, origin):
        assert origin.size_of(0) == origin.catalog.size_of(0)

    def test_unknown_document_rejected(self, origin):
        with pytest.raises(SimulationError):
            origin.version_of(99)
        with pytest.raises(SimulationError):
            origin.apply_update(99)
        with pytest.raises(SimulationError):
            origin.size_of(99)
