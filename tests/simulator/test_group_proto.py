"""Tests for the cooperative group protocol."""

import pytest

from repro.core.groups import CacheGroup, GroupingResult
from repro.errors import SimulationError
from repro.simulator import GroupProtocol, LookupOutcome


@pytest.fixture
def grouping(paper_network):
    """Paper network split into the natural pairs plus ids."""
    return GroupingResult(
        scheme="manual",
        groups=(
            CacheGroup(0, (1, 2)),
            CacheGroup(1, (3, 4)),
            CacheGroup(2, (5, 6)),
        ),
    )


@pytest.fixture
def singleton_grouping(paper_network):
    return GroupingResult(
        scheme="manual",
        groups=tuple(
            CacheGroup(i, (node,)) for i, node in enumerate(range(1, 7))
        ),
    )


def proto(network, grouping, mode="beacon", lookup_ms=0.3):
    return GroupProtocol(
        network, grouping, group_lookup_ms=lookup_ms, mode=mode
    )


class TestDirectoryMaintenance:
    def test_record_and_lookup(self, paper_network, grouping):
        p = proto(paper_network, grouping)
        p.record_copy(2, 7)  # Ec1 stores doc 7
        assert p.holders_in_group(1, 7) == [2]
        assert p.holders_in_group(3, 7) == []  # other group

    def test_drop_copy(self, paper_network, grouping):
        p = proto(paper_network, grouping)
        p.record_copy(2, 7)
        p.drop_copy(2, 7)
        assert p.holders_in_group(1, 7) == []

    def test_drop_idempotent(self, paper_network, grouping):
        p = proto(paper_network, grouping)
        p.drop_copy(2, 7)  # never recorded

    def test_all_holders_across_groups(self, paper_network, grouping):
        p = proto(paper_network, grouping)
        p.record_copy(1, 7)
        p.record_copy(3, 7)
        assert sorted(p.all_holders(7)) == [1, 3]

    def test_own_copy_not_a_peer_holder(self, paper_network, grouping):
        p = proto(paper_network, grouping)
        p.record_copy(1, 7)
        assert p.holders_in_group(1, 7) == []

    def test_ungrouped_cache_rejected(self, paper_network, grouping):
        p = proto(paper_network, grouping)
        with pytest.raises(SimulationError):
            p.record_copy(99, 7)
        with pytest.raises(SimulationError):
            p.peers_of(99)


class TestPeers:
    def test_peers_and_max_rtt(self, paper_network, grouping):
        p = proto(paper_network, grouping)
        assert p.peers_of(1) == [2]
        assert p.max_peer_rtt(1) == paper_network.rtt(1, 2)

    def test_singletons_no_peers(self, paper_network, singleton_grouping):
        p = proto(paper_network, singleton_grouping)
        assert p.peers_of(1) == []
        assert p.max_peer_rtt(1) == 0.0


class TestLookupBeacon:
    def test_no_peers(self, paper_network, singleton_grouping):
        p = proto(paper_network, singleton_grouping)
        result = p.lookup(1, 7)
        assert result.outcome is LookupOutcome.NO_PEERS
        assert result.query_ms == 0.0
        assert result.messages == 0

    def test_group_hit_returns_nearest_holder(self, paper_network):
        grouping = GroupingResult(
            scheme="manual", groups=(CacheGroup(0, (1, 2, 3, 4, 5, 6)),)
        )
        p = proto(paper_network, grouping)
        p.record_copy(4, 7)
        p.record_copy(3, 7)
        result = p.lookup(1, 7)
        assert result.outcome is LookupOutcome.GROUP_HIT
        # Ec0 (node 1): rtt to node 4 = 14.4, to node 3 = 17.0.
        assert result.holder == 4

    def test_beacon_cost_depends_on_member(self, paper_network, grouping):
        p = proto(paper_network, grouping, lookup_ms=0.0)
        # In group (1, 2), the beacon for a doc is either node 1 or 2.
        result = p.lookup(1, 7)
        beacon = p.beacon_of(1, 7)
        expected = 0.0 if beacon == 1 else paper_network.rtt(1, beacon)
        assert result.query_ms == pytest.approx(expected)
        assert result.messages == (0 if beacon == 1 else 2)

    def test_beacon_deterministic_and_agreed(self, paper_network, grouping):
        p = proto(paper_network, grouping)
        assert p.beacon_of(1, 7) == p.beacon_of(2, 7)
        assert p.beacon_of(1, 7) in (1, 2)

    def test_beacon_spreads_over_members(self, paper_network):
        grouping = GroupingResult(
            scheme="manual", groups=(CacheGroup(0, (1, 2, 3, 4, 5, 6)),)
        )
        p = proto(paper_network, grouping)
        beacons = {p.beacon_of(1, doc) for doc in range(100)}
        assert len(beacons) >= 4  # well spread over 6 members

    def test_group_miss(self, paper_network, grouping):
        p = proto(paper_network, grouping)
        result = p.lookup(1, 7)
        assert result.outcome is LookupOutcome.GROUP_MISS
        assert result.holder is None


class TestLookupMulticast:
    def test_miss_waits_for_farthest_peer(self, paper_network):
        grouping = GroupingResult(
            scheme="manual", groups=(CacheGroup(0, (1, 2, 3)),)
        )
        p = proto(paper_network, grouping, mode="multicast", lookup_ms=0.0)
        result = p.lookup(1, 7)
        assert result.outcome is LookupOutcome.GROUP_MISS
        assert result.query_ms == pytest.approx(
            max(paper_network.rtt(1, 2), paper_network.rtt(1, 3))
        )
        assert result.messages == 4  # 2 peers x (query + response)

    def test_hit_proceeds_on_nearest_positive(self, paper_network):
        grouping = GroupingResult(
            scheme="manual", groups=(CacheGroup(0, (1, 2, 3)),)
        )
        p = proto(paper_network, grouping, mode="multicast", lookup_ms=0.0)
        p.record_copy(2, 7)
        result = p.lookup(1, 7)
        assert result.outcome is LookupOutcome.GROUP_HIT
        assert result.holder == 2
        assert result.query_ms == pytest.approx(paper_network.rtt(1, 2))


class TestAvailabilityFiltering:
    def test_down_holder_invisible(self, paper_network):
        down = set()
        grouping = GroupingResult(
            scheme="manual", groups=(CacheGroup(0, (1, 2, 3)),)
        )
        p = GroupProtocol(paper_network, grouping, unavailable=down)
        p.record_copy(2, 7)
        assert p.holders_in_group(1, 7) == [2]
        down.add(2)
        assert p.holders_in_group(1, 7) == []
        down.discard(2)
        assert p.holders_in_group(1, 7) == [2]

    def test_beacon_down_forces_miss_even_with_live_holders(
        self, paper_network
    ):
        down = set()
        grouping = GroupingResult(
            scheme="manual", groups=(CacheGroup(0, (1, 2, 3)),)
        )
        p = GroupProtocol(
            paper_network, grouping, mode="beacon", unavailable=down
        )
        p.record_copy(3, 7)
        # Find a doc whose beacon (from cache 1's view) is cache 2.
        doc = next(
            d for d in range(50)
            if p.beacon_of(1, d) == 2
        )
        p.record_copy(3, doc)
        down.add(2)
        result = p.lookup(1, doc)
        assert result.outcome is LookupOutcome.GROUP_MISS
        assert result.messages == 1  # the unanswered query

    def test_multicast_miss_waits_only_for_live_peers(self, paper_network):
        down = {3}
        grouping = GroupingResult(
            scheme="manual", groups=(CacheGroup(0, (1, 2, 3)),)
        )
        p = GroupProtocol(
            paper_network, grouping, mode="multicast",
            group_lookup_ms=0.0, unavailable=down,
        )
        result = p.lookup(1, 7)
        assert result.outcome is LookupOutcome.GROUP_MISS
        # Only the live peer (node 2, RTT 4.0) is waited for.
        assert result.query_ms == pytest.approx(paper_network.rtt(1, 2))
        # 2 queries sent, 1 live reply.
        assert result.messages == 3

    def test_multicast_all_peers_down(self, paper_network):
        down = {2, 3}
        grouping = GroupingResult(
            scheme="manual", groups=(CacheGroup(0, (1, 2, 3)),)
        )
        p = GroupProtocol(
            paper_network, grouping, mode="multicast",
            group_lookup_ms=0.5, unavailable=down,
        )
        result = p.lookup(1, 7)
        assert result.outcome is LookupOutcome.GROUP_MISS
        assert result.query_ms == 0.5


class TestLookupDirectory:
    def test_constant_cost(self, paper_network, grouping):
        p = proto(paper_network, grouping, mode="directory", lookup_ms=0.7)
        result = p.lookup(1, 7)
        assert result.query_ms == 0.7
        assert result.messages == 2


class TestConstruction:
    def test_unknown_mode_rejected(self, paper_network, grouping):
        with pytest.raises(SimulationError):
            GroupProtocol(paper_network, grouping, mode="gossip")

    def test_negative_lookup_rejected(self, paper_network, grouping):
        with pytest.raises(SimulationError):
            GroupProtocol(paper_network, grouping, group_lookup_ms=-1.0)
