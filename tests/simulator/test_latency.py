"""Tests for the latency model."""

import pytest

from repro.config import CacheConfig, SimulationConfig
from repro.errors import SimulationError
from repro.simulator import LatencyModel, ServicePath


@pytest.fixture
def model(paper_network):
    config = SimulationConfig(
        cache=CacheConfig(local_processing_ms=0.5),
        origin_processing_ms=40.0,
        link_bandwidth_bytes_per_ms=1000.0,
        group_lookup_ms=0.3,
    )
    return LatencyModel(paper_network, config)


class TestTransfer:
    def test_bandwidth_division(self, model):
        assert model.transfer_ms(2000) == 2.0

    def test_zero_size(self, model):
        assert model.transfer_ms(0) == 0.0

    def test_negative_rejected(self, model):
        with pytest.raises(SimulationError):
            model.transfer_ms(-1)


class TestLocalHit:
    def test_processing_only(self, model):
        account = model.local_hit()
        assert account.path is ServicePath.LOCAL_HIT
        assert account.total_ms == 0.5
        assert account.fetch_ms == 0.0
        assert account.transfer_ms == 0.0


class TestGroupHit:
    def test_breakdown(self, model, paper_network):
        account = model.group_hit(1, 2, size_bytes=1000, query_ms=4.3)
        # local 0.5 + query 4.3 + rtt(1,2)=4.0 + transfer 1.0
        assert account.path is ServicePath.GROUP_HIT
        assert account.query_ms == 4.3
        assert account.fetch_ms == paper_network.rtt(1, 2)
        assert account.transfer_ms == 1.0
        assert account.total_ms == pytest.approx(0.5 + 4.3 + 4.0 + 1.0)

    def test_lower_bound_is_network_rtt(self, model, paper_network):
        """Latency is never below the pure network cost."""
        account = model.group_hit(1, 3, size_bytes=500, query_ms=0.0)
        assert account.total_ms >= paper_network.rtt(1, 3)


class TestOriginFetch:
    def test_breakdown(self, model, paper_network):
        account = model.origin_fetch(1, size_bytes=1000, query_ms=2.0)
        # local 0.5 + query 2.0 + rtt(1,Os)=12 + origin 40 + transfer 1
        assert account.path is ServicePath.ORIGIN_FETCH
        assert account.total_ms == pytest.approx(0.5 + 2.0 + 12.0 + 40.0 + 1.0)

    def test_far_cache_pays_more(self, model):
        near = model.origin_fetch(2, 1000, query_ms=0.0)  # 8ms to Os
        far = model.origin_fetch(1, 1000, query_ms=0.0)   # 12ms to Os
        assert far.total_ms > near.total_ms

    def test_processing_override(self, model):
        """The congestion model's inflated processing time is honoured."""
        flat = model.origin_fetch(1, 1000, query_ms=0.0)
        inflated = model.origin_fetch(
            1, 1000, query_ms=0.0, processing_ms=120.0
        )
        assert inflated.total_ms == pytest.approx(
            flat.total_ms - 40.0 + 120.0
        )

    def test_negative_processing_rejected(self, model):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            model.origin_fetch(1, 1000, query_ms=0.0, processing_ms=-1.0)


class TestServiceAccount:
    def test_negative_total_rejected(self):
        from repro.simulator.latency import ServiceAccount

        with pytest.raises(SimulationError):
            ServiceAccount(
                path=ServicePath.LOCAL_HIT,
                total_ms=-1.0,
                query_ms=0.0,
                fetch_ms=0.0,
                transfer_ms=0.0,
            )
