"""Tests for the EdgeCache bounded store."""

import pytest

from repro.errors import SimulationError
from repro.simulator import EdgeCache, LRUPolicy, UtilityPolicy


def make_cache(capacity=100, policy=None, on_evict=None):
    return EdgeCache(
        node=1,
        capacity_bytes=capacity,
        policy=policy or LRUPolicy(),
        on_evict=on_evict,
    )


class TestAdmit:
    def test_basic_store(self):
        c = make_cache()
        assert c.admit(1, 40, 1.0, now_ms=0.0, version=0)
        assert c.holds(1)
        assert c.used_bytes == 40
        assert c.document_count == 1

    def test_eviction_when_full(self):
        c = make_cache(capacity=100)
        c.admit(1, 60, 1.0, 0.0, 0)
        c.admit(2, 30, 1.0, 1.0, 0)
        assert c.admit(3, 50, 1.0, 2.0, 0)  # must evict doc 1 (LRU)
        assert not c.holds(1)
        assert c.holds(2) and c.holds(3)
        assert c.used_bytes == 80

    def test_multiple_evictions(self):
        c = make_cache(capacity=100)
        for doc in (1, 2, 3):
            c.admit(doc, 30, 1.0, float(doc), 0)
        assert c.admit(4, 90, 1.0, 4.0, 0)
        assert c.stored_ids() == [4]

    def test_oversized_document_not_admitted(self):
        c = make_cache(capacity=100)
        assert not c.admit(1, 150, 1.0, 0.0, 0)
        assert not c.holds(1)
        assert c.used_bytes == 0

    def test_exact_fit(self):
        c = make_cache(capacity=100)
        assert c.admit(1, 100, 1.0, 0.0, 0)
        assert c.used_bytes == 100

    def test_readmit_refreshes_in_place(self):
        c = make_cache()
        c.admit(1, 40, 1.0, 0.0, version=0)
        assert c.admit(1, 40, 1.0, 5.0, version=3)
        assert c.used_bytes == 40
        assert c.entry(1).version == 3
        assert c.entry(1).stored_at_ms == 5.0

    def test_zero_size_rejected(self):
        c = make_cache()
        with pytest.raises(SimulationError):
            c.admit(1, 0, 1.0, 0.0, 0)

    def test_capacity_never_exceeded_under_churn(self):
        c = make_cache(capacity=200)
        for doc in range(50):
            c.admit(doc, 30 + (doc % 40), 1.0, float(doc), 0)
            assert c.used_bytes <= 200


class TestAccess:
    def test_access_returns_entry(self):
        c = make_cache()
        c.admit(1, 40, 1.0, 0.0, 2)
        entry = c.access(1, now_ms=1.0)
        assert entry.doc_id == 1
        assert entry.version == 2

    def test_access_missing_raises(self):
        with pytest.raises(SimulationError):
            make_cache().access(1, 0.0)

    def test_access_updates_lru_order(self):
        c = make_cache(capacity=100)
        c.admit(1, 50, 1.0, 0.0, 0)
        c.admit(2, 50, 1.0, 1.0, 0)
        c.access(1, 2.0)
        c.admit(3, 50, 1.0, 3.0, 0)  # evicts 2, not 1
        assert c.holds(1)
        assert not c.holds(2)


class TestInvalidate:
    def test_drops_copy(self):
        c = make_cache()
        c.admit(1, 40, 1.0, 0.0, 0)
        assert c.invalidate(1)
        assert not c.holds(1)
        assert c.used_bytes == 0

    def test_idempotent(self):
        c = make_cache()
        assert not c.invalidate(1)

    def test_utility_feedback(self):
        policy = UtilityPolicy()
        c = make_cache(policy=policy)
        c.admit(1, 40, 10.0, 0.0, 0)
        c.invalidate(1)
        c.admit(1, 40, 10.0, 1.0, 1)
        # One invalidation on record halves the utility.
        assert policy.utility_of(1) == pytest.approx(1 * 10.0 / (40 * 2))


class TestEvictCallback:
    def test_called_on_eviction_and_invalidation(self):
        evicted = []
        c = make_cache(
            capacity=100, on_evict=lambda node, doc: evicted.append(doc)
        )
        c.admit(1, 80, 1.0, 0.0, 0)
        c.admit(2, 80, 1.0, 1.0, 0)   # evicts 1
        c.invalidate(2)
        assert evicted == [1, 2]

    def test_not_called_on_rejected_admit(self):
        evicted = []
        c = make_cache(
            capacity=50, on_evict=lambda node, doc: evicted.append(doc)
        )
        c.admit(1, 100, 1.0, 0.0, 0)
        assert evicted == []


class TestConstruction:
    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            EdgeCache(node=1, capacity_bytes=0, policy=LRUPolicy())

    def test_entry_missing_raises(self):
        with pytest.raises(SimulationError):
            make_cache().entry(9)
