"""Tests for the origin congestion model."""

import pytest

from repro.config import (
    CacheConfig,
    DocumentConfig,
    SimulationConfig,
)
from repro.core.groups import CacheGroup, GroupingResult, single_group
from repro.errors import ConfigurationError, SimulationError
from repro.simulator import SimulationEngine
from repro.simulator.origin_load import MAX_UTILISATION, OriginLoadTracker
from repro.topology import network_from_matrix
from repro.workload import Workload, build_catalog
from repro.workload.trace import RequestRecord


class TestOriginLoadTracker:
    def test_idle_utilisation_zero(self):
        tracker = OriginLoadTracker(capacity_rps=100, window_ms=1000)
        assert tracker.utilisation(0.0) == 0.0
        assert tracker.inflation_factor(0.0) == 1.0

    def test_utilisation_matches_rate(self):
        # 50 arrivals in a 1000ms window at 100 rps capacity -> rho=0.5.
        tracker = OriginLoadTracker(capacity_rps=100, window_ms=1000)
        for i in range(50):
            tracker.record_arrival(float(i * 20))
        assert tracker.utilisation(999.0) == pytest.approx(0.5)
        assert tracker.inflation_factor(999.0) == pytest.approx(2.0)

    def test_clamped_at_saturation(self):
        tracker = OriginLoadTracker(capacity_rps=10, window_ms=1000)
        for i in range(500):
            tracker.record_arrival(float(i))
        assert tracker.utilisation(500.0) == MAX_UTILISATION
        assert tracker.inflation_factor(500.0) == pytest.approx(
            1.0 / (1.0 - MAX_UTILISATION)
        )

    def test_window_eviction(self):
        tracker = OriginLoadTracker(capacity_rps=100, window_ms=1000)
        for i in range(50):
            tracker.record_arrival(float(i))
        # Long quiet period: the window empties.
        assert tracker.utilisation(10_000.0) == 0.0

    def test_peak_recorded(self):
        tracker = OriginLoadTracker(capacity_rps=100, window_ms=1000)
        for i in range(50):
            tracker.record_arrival(float(i * 20))
        tracker.utilisation(999.0)
        tracker.utilisation(50_000.0)
        assert tracker.peak_utilisation == pytest.approx(0.5)

    def test_out_of_order_rejected(self):
        tracker = OriginLoadTracker(capacity_rps=100, window_ms=1000)
        tracker.record_arrival(10.0)
        with pytest.raises(SimulationError):
            tracker.record_arrival(5.0)

    def test_bad_params_rejected(self):
        with pytest.raises(SimulationError):
            OriginLoadTracker(capacity_rps=0, window_ms=1000)
        with pytest.raises(SimulationError):
            OriginLoadTracker(capacity_rps=10, window_ms=0)


class TestEngineWithQueueing:
    @pytest.fixture
    def network(self):
        return network_from_matrix(
            [[0.0, 10.0, 12.0], [10.0, 0.0, 4.0], [12.0, 4.0, 0.0]]
        )

    @pytest.fixture
    def catalog(self):
        return build_catalog(
            DocumentConfig(
                num_documents=200, mean_size_bytes=1000.0, size_sigma=0.0,
                dynamic_fraction=0.0,
            ),
            seed=1,
        )

    def config(self, queueing, capacity_rps=50.0):
        return SimulationConfig(
            cache=CacheConfig(capacity_fraction=0.02),  # tiny: mostly misses
            origin_processing_ms=40.0,
            origin_queueing=queueing,
            origin_capacity_rps=capacity_rps,
            warmup_fraction=0.0,
        )

    def _run(self, network, catalog, queueing, capacity_rps=50.0):
        # A hot burst: 300 distinct docs in 3 seconds -> all misses.
        requests = [
            RequestRecord(float(i * 10), 1 + (i % 2), i % 200)
            for i in range(300)
        ]
        workload = Workload(
            catalog=catalog, requests=tuple(requests), updates=()
        )
        grouping = GroupingResult(
            scheme="manual", groups=(CacheGroup(0, (1, 2)),)
        )
        engine = SimulationEngine(
            network, grouping, workload,
            self.config(queueing, capacity_rps),
        )
        metrics = engine.run()
        return engine, metrics

    def test_congestion_raises_latency(self, network, catalog):
        _e1, flat = self._run(network, catalog, queueing=False)
        _e2, congested = self._run(network, catalog, queueing=True)
        assert (
            congested.average_latency_ms() > flat.average_latency_ms()
        )

    def test_tracker_active_and_loaded(self, network, catalog):
        engine, _metrics = self._run(network, catalog, queueing=True)
        assert engine.origin_load is not None
        assert engine.origin_load.peak_utilisation > 0.5

    def test_tracker_absent_when_disabled(self, network, catalog):
        engine, _metrics = self._run(network, catalog, queueing=False)
        assert engine.origin_load is None

    def test_high_capacity_negligible_effect(self, network, catalog):
        _e1, flat = self._run(network, catalog, queueing=False)
        _e2, fast = self._run(
            network, catalog, queueing=True, capacity_rps=100_000.0
        )
        assert fast.average_latency_ms() == pytest.approx(
            flat.average_latency_ms(), rel=0.02
        )

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(origin_capacity_rps=0).validate()
        with pytest.raises(ConfigurationError):
            SimulationConfig(origin_load_window_ms=0).validate()
