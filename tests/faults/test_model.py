"""FaultModel: liveness state, seeded draws, content-keyed determinism."""

import numpy as np
import pytest

from repro.errors import ProbingError
from repro.faults import FaultConfig, FaultModel
from repro.landmarks.base import LandmarkSet
from repro.types import ORIGIN_NODE_ID
from repro.utils.rng import RngFactory


def model(config=None, seed=42):
    return FaultModel(config or FaultConfig(), RngFactory(seed))


class TestLiveness:
    def test_crash_and_recover(self):
        m = model()
        assert not m.is_down(3)
        m.crash(3)
        assert m.is_down(3)
        assert m.crashed_nodes == frozenset({3})
        m.recover(3)
        assert not m.is_down(3)

    def test_crashed_node_blocks_every_pair(self):
        m = model()
        m.crash(5)
        assert m.pair_blocked(5, 1)
        assert m.pair_blocked(1, 5)
        assert not m.pair_blocked(1, 2)


class TestBlackholesAndSlowLinks:
    def test_blackhole_is_unordered(self):
        m = model(FaultConfig(blackhole_pairs=((4, 2),)))
        assert m.pair_blocked(2, 4)
        assert m.pair_blocked(4, 2)
        assert not m.pair_blocked(2, 3)

    def test_link_factor_is_unordered(self):
        m = model(FaultConfig(slow_links=((7, 3, 2.5),)))
        assert m.link_factor(3, 7) == 2.5
        assert m.link_factor(7, 3) == 2.5
        assert m.link_factor(3, 4) == 1.0

    def test_invalid_config_rejected_at_construction(self):
        with pytest.raises(ProbingError):
            model(FaultConfig(probe_loss_rate=2.0))


class TestLandmarkCrash:
    def landmarks(self):
        return LandmarkSet(nodes=(ORIGIN_NODE_ID, 3, 5, 8, 11))

    def test_crashes_requested_count(self):
        m = model(FaultConfig(crashed_landmarks=2))
        crashed = m.crash_landmarks(self.landmarks())
        assert len(crashed) == 2
        assert set(crashed) <= {3, 5, 8, 11}  # never the origin
        assert all(m.is_down(node) for node in crashed)

    def test_zero_count_is_free(self):
        m = model(FaultConfig(crashed_landmarks=0))
        assert m.crash_landmarks(self.landmarks()) == ()
        assert m.crashed_nodes == frozenset()

    def test_too_many_rejected(self):
        m = model(FaultConfig(crashed_landmarks=9))
        with pytest.raises(ProbingError, match="cannot crash 9"):
            m.crash_landmarks(self.landmarks())

    def test_same_seed_same_victims(self):
        picks = {
            tuple(
                model(FaultConfig(crashed_landmarks=2), seed=7)
                .crash_landmarks(self.landmarks())
            )
            for _ in range(5)
        }
        assert len(picks) == 1


class TestDeterminism:
    def test_loss_stream_is_content_keyed(self):
        """The same pair's stream yields the same draws regardless of
        which other pairs were touched first (call order freedom)."""
        m1 = model(FaultConfig(probe_loss_rate=0.5), seed=11)
        m2 = model(FaultConfig(probe_loss_rate=0.5), seed=11)
        m2.loss_stream(9, 1).random(100)  # unrelated pair first
        a = m1.loss_stream(2, 6).random(10)
        b = m2.loss_stream(2, 6).random(10)
        np.testing.assert_array_equal(a, b)

    def test_loss_stream_is_ordered_pair_keyed(self):
        m = model(FaultConfig(probe_loss_rate=0.5), seed=11)
        a = m.loss_stream(2, 6).random(10)
        b = m.loss_stream(6, 2).random(10)
        assert not np.array_equal(a, b)

    def test_fault_fork_isolated_from_parent_streams(self):
        """Attaching a model must not shift the parent factory's streams."""
        factory = RngFactory(123)
        before = factory.stream("probe").random(5)
        FaultModel(FaultConfig(probe_loss_rate=0.5), factory).loss_stream(
            1, 2
        ).random(50)
        after = RngFactory(123).stream("probe").random(5)
        np.testing.assert_array_equal(before, after)


class TestBackoff:
    def test_exponential_with_cap(self):
        m = model(FaultConfig(backoff_base_ms=50.0, backoff_cap_ms=150.0))
        assert m.backoff_ms(1) == 50.0
        assert m.backoff_ms(2) == 100.0
        assert m.backoff_ms(3) == 150.0  # capped, not 200
        assert m.backoff_ms(4) == 150.0
