"""Coordinator degraded mode: imputation, landmark failover, provenance."""

import numpy as np
import pytest

from repro.config import LandmarkConfig
from repro.core.schemes import SLScheme
from repro.faults import FaultConfig
from repro.persist import load_grouping, save_grouping


def form(network, faults=None, seed=3, k=5, num_landmarks=6):
    scheme = SLScheme(
        landmark_config=LandmarkConfig(num_landmarks=num_landmarks)
    )
    return scheme.form_groups(network, k, seed=seed, faults=faults)


class TestNoopFaults:
    def test_noop_config_identical_to_no_faults(self, small_network):
        baseline = form(small_network)
        noop = form(small_network, faults=FaultConfig())
        assert noop.groups == baseline.groups
        assert not noop.degraded
        assert noop.fault_report is None

    def test_active_faults_set_provenance(self, small_network):
        grouping = form(
            small_network, faults=FaultConfig(probe_loss_rate=0.3)
        )
        assert grouping.fault_report is not None
        assert grouping.fault_report["probes_lost"] > 0


class TestLandmarkFailover:
    def faults(self):
        return FaultConfig(crashed_landmarks=1)

    def test_crashed_landmark_replaced(self, small_network):
        grouping = form(small_network, faults=self.faults())
        assert grouping.degraded
        report = grouping.fault_report
        assert report["landmarks_crashed"] == 1.0
        assert report["landmarks_replaced"] >= 1.0
        # The final grouping still covers every cache with k groups.
        assert sorted(grouping.all_members) == sorted(
            small_network.cache_nodes
        )

    def test_features_are_finite_after_failover(self, small_network):
        grouping = form(small_network, faults=self.faults())
        assert grouping.features is not None
        assert np.isfinite(grouping.features.matrix).all()

    def test_failover_is_deterministic(self, small_network):
        a = form(small_network, faults=self.faults())
        b = form(small_network, faults=self.faults())
        assert a.groups == b.groups
        assert a.landmarks.nodes == b.landmarks.nodes
        assert a.fault_report == b.fault_report

    def test_different_seed_may_pick_other_victims(self, small_network):
        a = form(small_network, faults=self.faults(), seed=3)
        b = form(small_network, faults=self.faults(), seed=4)
        # Both degrade; the groupings need not match.
        assert a.degraded and b.degraded


class TestLossDegradation:
    def test_heavy_loss_imputes_and_reports(self, small_network):
        grouping = form(
            small_network,
            faults=FaultConfig(probe_loss_rate=0.45, max_retries=1),
        )
        report = grouping.fault_report
        assert report["probes_lost"] > 0
        assert report["retries"] > 0
        assert report["timeout_wait_ms"] > 0
        assert grouping.features is not None
        assert np.isfinite(grouping.features.matrix).all()

    def test_loss_run_is_deterministic(self, small_network):
        config = FaultConfig(probe_loss_rate=0.45, max_retries=1)
        a = form(small_network, faults=config)
        b = form(small_network, faults=config)
        assert a.groups == b.groups
        assert a.fault_report == b.fault_report


class TestDegradedPersistence:
    def test_degraded_flag_round_trips(self, small_network, tmp_path):
        grouping = form(
            small_network, faults=FaultConfig(crashed_landmarks=1)
        )
        assert grouping.degraded
        path = tmp_path / "grouping.json"
        save_grouping(grouping, path)
        assert load_grouping(path).degraded

    def test_clean_grouping_json_has_no_degraded_key(
        self, small_network, tmp_path
    ):
        """Fault-free archives stay byte-compatible with pre-fault ones."""
        import json

        grouping = form(small_network)
        path = tmp_path / "grouping.json"
        save_grouping(grouping, path)
        payload = json.loads(path.read_text())
        assert "degraded" not in payload
        assert not load_grouping(path).degraded


class TestValidationAtEntry:
    def test_invalid_fault_config_rejected(self, small_network):
        from repro.errors import ProbingError

        with pytest.raises(ProbingError, match="probe_loss_rate"):
            form(small_network, faults=FaultConfig(probe_loss_rate=-0.5))
