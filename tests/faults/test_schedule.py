"""FaultSchedule and PartitionSpec: validation and event lowering."""

import pytest

from repro.errors import SimulationError
from repro.faults import (
    FaultSchedule,
    PartitionSpec,
    merge_fault_events,
    random_fault_schedule,
)
from repro.simulator.events import (
    CacheFailEvent,
    CacheRecoverEvent,
    PartitionEndEvent,
    PartitionStartEvent,
)
from repro.utils.rng import RngFactory


class TestPartitionSpecValidation:
    def test_valid_spec(self):
        PartitionSpec(start_ms=10.0, end_ms=20.0, nodes=(1, 2)).validate()

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError, match="start_ms"):
            PartitionSpec(start_ms=-1.0, end_ms=5.0, nodes=(1,)).validate()

    def test_end_not_after_start_rejected(self):
        with pytest.raises(SimulationError, match="end_ms must be >"):
            PartitionSpec(start_ms=10.0, end_ms=10.0, nodes=(1,)).validate()

    def test_empty_node_set_rejected(self):
        with pytest.raises(SimulationError, match="at least one node"):
            PartitionSpec(start_ms=0.0, end_ms=5.0, nodes=()).validate()

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(SimulationError, match="duplicates"):
            PartitionSpec(start_ms=0.0, end_ms=5.0, nodes=(2, 2)).validate()

    def test_negative_node_rejected(self):
        with pytest.raises(SimulationError, match="node id"):
            PartitionSpec(start_ms=0.0, end_ms=5.0, nodes=(-3,)).validate()


class TestScheduleValidation:
    def test_empty_schedule_is_valid(self):
        schedule = FaultSchedule()
        schedule.validate()
        assert schedule.is_empty()

    def test_negative_event_time_rejected(self):
        with pytest.raises(SimulationError, match="fault event time"):
            FaultSchedule(crashes=((-1.0, 2),)).validate()

    def test_negative_cache_id_rejected(self):
        with pytest.raises(SimulationError, match="cache id"):
            FaultSchedule(recoveries=((5.0, -2),)).validate()

    def test_bad_partition_timeout_rejected(self):
        with pytest.raises(SimulationError, match="partition_timeout_ms"):
            FaultSchedule(partition_timeout_ms=0.0).validate()

    def test_nested_partition_validated(self):
        with pytest.raises(SimulationError, match="duplicates"):
            FaultSchedule(
                partitions=(
                    PartitionSpec(start_ms=0.0, end_ms=5.0, nodes=(1, 1)),
                )
            ).validate()


class TestEventLowering:
    def test_events_cover_the_timeline(self):
        schedule = FaultSchedule(
            crashes=((10.0, 3),),
            recoveries=((50.0, 3),),
            partitions=(
                PartitionSpec(start_ms=20.0, end_ms=40.0, nodes=(1, 2)),
            ),
        )
        events = schedule.events()
        kinds = [type(e).__name__ for e in events]
        assert kinds == [
            "CacheFailEvent", "CacheRecoverEvent",
            "PartitionStartEvent", "PartitionEndEvent",
        ]
        start = events[2]
        assert isinstance(start, PartitionStartEvent)
        assert start.nodes == (1, 2)
        assert start.partition_id == 1
        end = events[3]
        assert isinstance(end, PartitionEndEvent)
        assert end.timestamp_ms == 40.0

    def test_partition_ids_are_distinct(self):
        schedule = FaultSchedule(
            partitions=(
                PartitionSpec(start_ms=0.0, end_ms=5.0, nodes=(1,)),
                PartitionSpec(start_ms=10.0, end_ms=15.0, nodes=(2,)),
            )
        )
        ids = [
            e.partition_id for e in schedule.events()
            if isinstance(e, PartitionStartEvent)
        ]
        assert ids == [1, 2]

    def test_events_validate_first(self):
        with pytest.raises(SimulationError):
            FaultSchedule(crashes=((-5.0, 1),)).events()

    def test_merge_appends_extra_failures(self):
        schedule = FaultSchedule(crashes=((10.0, 3),))
        extra = [CacheFailEvent(99.0, 7)]
        merged = merge_fault_events(schedule, extra)
        assert len(merged) == 2
        assert merged[-1] is extra[0]


class TestRandomSchedule:
    def nodes(self):
        return list(range(1, 21))

    def test_same_factory_same_schedule(self):
        a = random_fault_schedule(self.nodes(), 10_000.0, RngFactory(5))
        b = random_fault_schedule(self.nodes(), 10_000.0, RngFactory(5))
        assert a == b

    def test_different_seed_different_schedule(self):
        a = random_fault_schedule(self.nodes(), 10_000.0, RngFactory(5))
        b = random_fault_schedule(self.nodes(), 10_000.0, RngFactory(6))
        assert a != b

    def test_crashes_recover_within_run(self):
        schedule = random_fault_schedule(
            self.nodes(), 10_000.0, RngFactory(5), crash_fraction=0.5
        )
        assert schedule.crashes
        recovery_of = {node: when for when, node in schedule.recoveries}
        for fail_at, node in schedule.crashes:
            assert node in recovery_of
            assert fail_at < recovery_of[node] < 10_000.0

    def test_partitions_avoid_crashed_caches(self):
        schedule = random_fault_schedule(
            self.nodes(), 10_000.0, RngFactory(5),
            crash_fraction=0.5, partition_count=3, partition_size=3,
        )
        crashed = {node for _, node in schedule.crashes}
        for spec in schedule.partitions:
            assert not (set(spec.nodes) & crashed)
            spec.validate()

    def test_bad_duration_rejected(self):
        with pytest.raises(SimulationError, match="duration_ms"):
            random_fault_schedule(self.nodes(), 0.0, RngFactory(5))

    def test_generated_schedule_lowers_cleanly(self):
        schedule = random_fault_schedule(
            self.nodes(), 5_000.0, RngFactory(9), partition_count=2
        )
        events = schedule.events()
        assert all(
            isinstance(e, (CacheFailEvent, CacheRecoverEvent,
                           PartitionStartEvent, PartitionEndEvent))
            for e in events
        )
