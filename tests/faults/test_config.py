"""FaultConfig validation: every bad parameter gets an actionable error."""

import pytest

from repro.errors import ProbingError
from repro.faults import FaultConfig


class TestValidation:
    def test_default_is_valid_and_noop(self):
        config = FaultConfig()
        config.validate()
        assert config.is_noop()

    def test_loss_rate_out_of_range(self):
        with pytest.raises(ProbingError, match="probe_loss_rate"):
            FaultConfig(probe_loss_rate=1.5).validate()
        with pytest.raises(ProbingError, match="probe_loss_rate"):
            FaultConfig(probe_loss_rate=-0.1).validate()

    def test_timeout_must_be_positive(self):
        with pytest.raises(ProbingError, match="probe_timeout_ms"):
            FaultConfig(probe_timeout_ms=0.0).validate()

    def test_negative_retries_rejected(self):
        with pytest.raises(ProbingError, match="max_retries"):
            FaultConfig(max_retries=-1).validate()

    def test_backoff_cap_below_base_rejected(self):
        with pytest.raises(ProbingError, match="backoff_cap_ms"):
            FaultConfig(backoff_base_ms=100.0, backoff_cap_ms=10.0).validate()

    def test_negative_backoff_base_rejected(self):
        with pytest.raises(ProbingError, match="backoff_base_ms"):
            FaultConfig(backoff_base_ms=-1.0).validate()

    def test_blackhole_self_pair_rejected(self):
        with pytest.raises(ProbingError, match="blackhole_pairs"):
            FaultConfig(blackhole_pairs=((3, 3),)).validate()

    def test_blackhole_negative_node_rejected(self):
        with pytest.raises(ProbingError, match="blackhole_pairs"):
            FaultConfig(blackhole_pairs=((-1, 2),)).validate()

    def test_slow_link_factor_below_one_rejected(self):
        with pytest.raises(ProbingError, match="slow_links factor"):
            FaultConfig(slow_links=((1, 2, 0.5),)).validate()

    def test_slow_link_self_pair_rejected(self):
        with pytest.raises(ProbingError, match="slow_links"):
            FaultConfig(slow_links=((2, 2, 2.0),)).validate()

    def test_negative_crashed_landmarks_rejected(self):
        with pytest.raises(ProbingError, match="crashed_landmarks"):
            FaultConfig(crashed_landmarks=-1).validate()

    def test_quorum_out_of_range_rejected(self):
        with pytest.raises(ProbingError, match="quorum"):
            FaultConfig(quorum=1.2).validate()

    def test_zero_replacement_budget_rejected(self):
        with pytest.raises(ProbingError, match="max_landmark_replacements"):
            FaultConfig(max_landmark_replacements=0).validate()


class TestNoop:
    def test_loss_defeats_noop(self):
        assert not FaultConfig(probe_loss_rate=0.1).is_noop()

    def test_blackhole_defeats_noop(self):
        assert not FaultConfig(blackhole_pairs=((1, 2),)).is_noop()

    def test_slow_link_defeats_noop(self):
        assert not FaultConfig(slow_links=((1, 2, 2.0),)).is_noop()

    def test_crashed_landmarks_defeats_noop(self):
        assert not FaultConfig(crashed_landmarks=1).is_noop()

    def test_timeout_tuning_alone_stays_noop(self):
        # Pure accounting knobs never alter a measurement.
        assert FaultConfig(
            probe_timeout_ms=10.0, max_retries=5, backoff_base_ms=1.0
        ).is_noop()
