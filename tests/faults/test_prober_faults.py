"""The prober's fault overlay: loss, retries, timeouts, byte-identity."""

import math

import numpy as np
import pytest

from repro.faults import FaultConfig, FaultModel
from repro.probing import NoNoise, Prober
from repro.utils.rng import RngFactory


def fault_prober(network, config, seed=0, fault_seed=99, noise=None):
    model = FaultModel(config, RngFactory(fault_seed))
    return Prober(network, seed=seed, faults=model, noise=noise)


class TestZeroFaultByteIdentity:
    """A model whose faults cannot touch a pair must change nothing."""

    def test_measure_many_identical(self, paper_network):
        plain = Prober(paper_network, seed=7)
        # Non-noop config (a blackhole exists) but it blocks no probed
        # pair, and the loss rate is zero.
        overlay = fault_prober(
            paper_network, FaultConfig(blackhole_pairs=((5, 6),)), seed=7
        )
        targets = [0, 1, 2, 3]
        np.testing.assert_array_equal(
            plain.measure_many(4, targets), overlay.measure_many(4, targets)
        )

    def test_measure_matrix_identical(self, paper_network):
        plain = Prober(paper_network, seed=7)
        overlay = fault_prober(paper_network, FaultConfig(), seed=7)
        np.testing.assert_array_equal(
            plain.measure_matrix([0, 1, 2, 3]),
            overlay.measure_matrix([0, 1, 2, 3]),
        )

    def test_measure_identical(self, paper_network):
        plain = Prober(paper_network, seed=7)
        overlay = fault_prober(paper_network, FaultConfig(), seed=7)
        assert plain.measure(1, 2) == overlay.measure(1, 2)


class TestBlockedPairs:
    def test_blackholed_pair_is_nan_with_full_accounting(self, paper_network):
        prober = fault_prober(
            paper_network, FaultConfig(blackhole_pairs=((1, 2),))
        )
        value = prober.measure(1, 2)
        assert math.isnan(value)
        count = prober.config.probe_count
        retries = prober.faults.config.max_retries
        assert prober.stats.timeouts == count
        assert prober.stats.probes_lost == count * (1 + retries)
        assert prober.stats.retries == count * retries
        assert prober.stats.timeout_wait_ms > 0

    def test_crashed_node_is_nan(self, paper_network):
        prober = fault_prober(paper_network, FaultConfig())
        prober.faults.crash(2)
        assert math.isnan(prober.measure(1, 2))
        assert not math.isnan(prober.measure(1, 3))

    def test_total_loss_is_nan(self, paper_network):
        prober = fault_prober(paper_network, FaultConfig(probe_loss_rate=1.0))
        value = prober.measure(1, 2)
        assert math.isnan(value)
        assert prober.stats.timeouts == prober.config.probe_count


class TestLossAndRetries:
    def test_retried_slots_inflate_the_measurement(self, paper_network):
        """End-to-end slot timing: losses add timeout waits to the mean."""
        true_rtt = paper_network.rtt(1, 2)
        prober = fault_prober(
            paper_network,
            FaultConfig(probe_loss_rate=0.6, probe_timeout_ms=500.0),
            noise=NoNoise(),
        )
        value = prober.measure(1, 2)
        assert prober.stats.probes_lost > 0
        assert value > true_rtt  # some slot waited out >= one timeout

    def test_zero_loss_mean_is_exact(self, paper_network):
        prober = fault_prober(
            paper_network, FaultConfig(blackhole_pairs=((5, 6),)),
            noise=NoNoise(),
        )
        assert prober.measure(1, 2) == paper_network.rtt(1, 2)

    def test_retries_charged_to_probe_budget(self, paper_network):
        prober = fault_prober(
            paper_network, FaultConfig(probe_loss_rate=0.5)
        )
        prober.measure_many(1, [0, 2, 3, 4, 5, 6])
        base = 6 * prober.config.probe_count
        assert prober.stats.probes_sent == base + prober.stats.retries

    def test_slow_link_scales_the_mean(self, paper_network):
        prober = fault_prober(
            paper_network, FaultConfig(slow_links=((1, 2, 3.0),)),
            noise=NoNoise(),
        )
        assert prober.measure(1, 2) == pytest.approx(
            3.0 * paper_network.rtt(1, 2)
        )

    def test_reset_clears_fault_counters(self, paper_network):
        prober = fault_prober(
            paper_network, FaultConfig(probe_loss_rate=1.0)
        )
        prober.measure(1, 2)
        prober.stats.reset()
        assert prober.stats.probes_lost == 0
        assert prober.stats.retries == 0
        assert prober.stats.timeouts == 0
        assert prober.stats.timeout_wait_ms == 0.0


class TestFaultDeterminism:
    def config(self):
        return FaultConfig(probe_loss_rate=0.4)

    def test_same_seeds_same_matrix(self, small_network):
        nodes = list(small_network.cache_nodes)[:12]
        a = fault_prober(small_network, self.config()).measure_matrix(nodes)
        b = fault_prober(small_network, self.config()).measure_matrix(nodes)
        np.testing.assert_array_equal(a, b)

    def test_measure_many_matches_per_pair_measure(self, paper_network):
        """The vectorised path must equal per-target calls bit-for-bit,
        faults included (loss streams are content-keyed, not ordered)."""
        targets = [0, 2, 3, 4, 5, 6]
        batched = fault_prober(paper_network, self.config(), seed=3)
        looped = fault_prober(paper_network, self.config(), seed=3)
        many = batched.measure_many(1, targets)
        singles = np.array([looped.measure(1, t) for t in targets])
        np.testing.assert_array_equal(many, singles)
