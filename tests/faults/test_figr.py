"""Figure R: the fault sweep's structure and degradation signal."""

import pytest

from repro.experiments.figr_fault_sweep import run_figr
from repro.experiments.registry import _load


@pytest.fixture(scope="module")
def result():
    # The pipeline is fully seeded, so this miniature sweep is
    # deterministic; at this scale the SL-vs-random margin is noisy
    # across seeds, and the fixed seed pins a configuration where the
    # selection advantage is visible (the full-scale figR run averages
    # it out properly).
    return run_figr(
        loss_rates=(0.0, 0.4),
        fail_landmark_counts=(0, 1),
        num_caches=24,
        num_landmarks=5,
        seed=23,
        repetitions=1,
        requests_per_cache=30,
        num_documents=60,
    )


class TestStructure:
    def test_registered_in_registry(self):
        assert _load()["figR"] is run_figr

    def test_series_cover_schemes_and_metrics(self, result):
        assert result.experiment_id == "figR"
        assert result.x_label == "probe_loss_rate"
        assert result.x_values == (0.0, 0.4)
        names = {s.name for s in result.series}
        assert len(names) == 9
        for scheme in ("sl", "sdsl", "random"):
            for metric in ("gicost_ms", "hit_rate", "p95_ms"):
                assert f"{scheme}_{metric}" in names

    def test_notes_carry_failover_sweep(self, result):
        for fails in (0, 1):
            assert f"sl_gicost_fail{fails}" in result.notes
            assert f"random_gicost_fail{fails}" in result.notes
            assert f"sl_margin_fail{fails}" in result.notes
        assert result.notes["degraded_runs"] > 0


class TestDegradationSignal:
    def test_loss_degrades_grouping_quality(self, result):
        """Probe loss inflates measured RTTs, so every scheme's gicost
        at heavy loss should be no better than its zero-loss value."""
        for scheme in ("sl", "sdsl"):
            series = next(
                s for s in result.series if s.name == f"{scheme}_gicost_ms"
            )
            clean, lossy = series.values
            assert lossy >= clean

    def test_failover_beats_random_landmarks(self, result):
        """SL with a crashed-landmark replacement keeps its selection
        advantage over the random-landmark baseline."""
        assert result.notes["sl_margin_fail1"] > 0


class TestValidation:
    def test_bad_repetitions_rejected(self):
        with pytest.raises(ValueError, match="repetitions"):
            run_figr(repetitions=0)

    def test_bad_loss_rate_rejected(self):
        from repro.errors import ProbingError

        with pytest.raises(ProbingError, match="probe_loss_rate"):
            run_figr(loss_rates=(0.0, 1.5), num_caches=12)
