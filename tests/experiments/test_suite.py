"""Tests for the experiment suite runner."""

import json

import pytest

from repro.errors import ReproError
from repro.experiments import run_suite


class TestRunSuite:
    def test_selected_figures(self, tmp_path):
        run = run_suite(
            figures=["fig4"],
            output_dir=tmp_path / "out",
            repetitions=1,
        )
        assert set(run.results) == {"fig4"}
        assert (tmp_path / "out" / "fig4.json").exists()
        assert (tmp_path / "out" / "fig4.csv").exists()
        assert (tmp_path / "out" / "summary.md").exists()

    def test_summary_contains_tables(self, tmp_path):
        run = run_suite(
            figures=["fig4"], output_dir=tmp_path, repetitions=1
        )
        summary = (tmp_path / "summary.md").read_text()
        assert "## fig4" in summary
        assert "sl_ms" in summary

    def test_archived_json_loadable(self, tmp_path):
        from repro.persist import load_result

        run_suite(figures=["fig4"], output_dir=tmp_path, repetitions=1)
        loaded = load_result(tmp_path / "fig4.json")
        assert loaded.experiment_id == "fig4"

    def test_no_output_dir(self):
        run = run_suite(figures=["fig4"], repetitions=1)
        assert run.output_dir is None
        assert "fig4" in run.results

    def test_manifests_collected_and_archived(self, tmp_path):
        run = run_suite(
            figures=["fig4"], output_dir=tmp_path, repetitions=1, seed=9
        )
        manifest = run.manifests["fig4"]
        assert manifest.label == "fig4"
        assert manifest.seed == 9
        assert manifest.config == {"seed": 9, "repetitions": 1, "jobs": 1}
        # the figure phase plus the nested GF-Coordinator stages
        assert "fig4" in manifest.phase_timings_s
        assert any(
            name.startswith("fig4/landmarks")
            for name in manifest.phase_timings_s
        )
        path = tmp_path / "fig4.manifest.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["kind"] == "run_manifest"
        assert payload["label"] == "fig4"

    def test_unknown_figure_rejected(self):
        with pytest.raises(ReproError):
            run_suite(figures=["fig99"])

    def test_repetitions_skipped_for_fig3(self, tmp_path, monkeypatch):
        """fig3 takes no repetitions; the suite must not pass one."""
        calls = {}

        def fake_fig3(**kwargs):
            calls.update(kwargs)
            from repro.experiments import run_fig4

            return run_fig4(network_sizes=(10,), num_landmarks=4,
                            repetitions=1)

        from repro.experiments import registry

        monkeypatch.setitem(registry.REGISTRY, "fig3", fake_fig3)
        run_suite(figures=["fig3"], repetitions=5, seed=2)
        assert "repetitions" not in calls
        assert calls.get("seed") == 2
