"""Tests for shared experiment plumbing."""

import pytest

from repro.experiments.base import (
    build_testbed,
    default_workload_config,
    landmark_config,
    run_simulation,
)
from repro.core.groups import singleton_groups


class TestLandmarkConfig:
    def test_defaults(self):
        cfg = landmark_config()
        assert cfg.num_landmarks == 25
        assert cfg.multiplier == 2

    def test_clamped_to_caches(self):
        cfg = landmark_config(25, num_caches=10)
        assert cfg.num_landmarks == 11

    def test_not_clamped_when_enough(self):
        cfg = landmark_config(10, num_caches=100)
        assert cfg.num_landmarks == 10


class TestBuildTestbed:
    def test_structure(self):
        tb = build_testbed(
            num_caches=8, seed=1, requests_per_cache=10, num_documents=30
        )
        assert tb.num_caches == 8
        assert tb.workload.num_requests == 80
        assert len(tb.workload.catalog) == 30

    def test_reproducible(self):
        a = build_testbed(num_caches=6, seed=2, requests_per_cache=5)
        b = build_testbed(num_caches=6, seed=2, requests_per_cache=5)
        assert a.workload.requests == b.workload.requests
        import numpy as np

        assert np.array_equal(
            a.network.distances.as_array(), b.network.distances.as_array()
        )

    def test_simulation_runs(self):
        tb = build_testbed(
            num_caches=6, seed=3, requests_per_cache=10, num_documents=30
        )
        result = run_simulation(
            tb, singleton_groups(tb.network.cache_nodes)
        )
        assert result.average_latency_ms() > 0


class TestDefaultWorkloadConfig:
    def test_validates(self):
        default_workload_config().validate()

    def test_paper_similarity_assumption(self):
        """Shared interest is high, per the paper's similarity assumption."""
        assert default_workload_config().shared_interest >= 0.5
