"""Smoke tests for every figure experiment at tiny scale.

These check structure (right series, right x-axis) and the cheap shape
properties; the full-scale shape assertions live in the benchmarks.
"""

import pytest

from repro.experiments import (
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
)


class TestFig3:
    def test_structure(self):
        result = run_fig3(
            num_caches=20, group_sizes=(1, 4, 20), subset_count=4, seed=1
        )
        assert result.experiment_id == "fig3"
        assert result.x_values == (1, 4, 20)
        names = {s.name for s in result.series}
        assert names == {"all_caches_ms", "nearest_4_ms", "farthest_4_ms"}

    def test_oversized_groups_skipped(self):
        result = run_fig3(
            num_caches=10, group_sizes=(2, 50), subset_count=3, seed=1
        )
        assert result.x_values == (2,)

    def test_bad_group_size_rejected(self):
        with pytest.raises(ValueError):
            run_fig3(num_caches=10, group_sizes=(0,))

    def test_testbed_reuse(self):
        from repro.experiments.base import build_testbed

        tb = build_testbed(12, seed=4, requests_per_cache=30)
        result = run_fig3(
            group_sizes=(2, 6), subset_count=3, testbed=tb
        )
        assert result.notes["num_caches"] == 12.0


class TestFig4:
    def test_structure_and_order(self):
        result = run_fig4(
            network_sizes=(12, 20), num_landmarks=4, repetitions=1, seed=2
        )
        assert result.x_values == (12, 20)
        assert {s.name for s in result.series} == {
            "sl_ms", "random_ms", "mindist_ms",
        }
        assert "improvement_over_random_pct_min" in result.notes

    def test_bad_repetitions_rejected(self):
        with pytest.raises(ValueError):
            run_fig4(network_sizes=(10,), repetitions=0)


class TestFig5:
    def test_structure(self):
        result = run_fig5(
            num_caches=15, k_values=(2, 5), num_landmarks=4,
            repetitions=1, seed=3,
        )
        assert result.x_values == (2, 5)
        assert len(result.series) == 3

    def test_gicost_decreases_with_k(self):
        result = run_fig5(
            num_caches=20, k_values=(2, 10), num_landmarks=5,
            repetitions=2, seed=3,
        )
        sl = result.series_named("sl_ms").values
        assert sl[-1] < sl[0]

    def test_k_bounds_checked(self):
        with pytest.raises(ValueError):
            run_fig5(num_caches=10, k_values=(50,))


class TestFig6:
    def test_structure(self):
        result = run_fig6(
            num_caches=15, landmark_counts=(3, 5), num_groups=3,
            repetitions=1, seed=4,
        )
        assert result.x_values == (3, 5)
        assert result.notes["num_groups"] == 3.0

    def test_bad_landmark_count_rejected(self):
        with pytest.raises(ValueError):
            run_fig6(num_caches=15, landmark_counts=(1,))


class TestFig7:
    def test_structure(self):
        result = run_fig7(
            num_caches=12, k_values=(3,), num_landmarks=5,
            gnp_dimensions=2, repetitions=1, seed=5,
        )
        assert {s.name for s in result.series} == {
            "sl_feature_vectors_ms", "euclidean_gnp_ms",
        }

    def test_near_parity(self):
        """Feature vectors and GNP coordinates cluster comparably."""
        result = run_fig7(
            num_caches=25, k_values=(4,), num_landmarks=6,
            gnp_dimensions=3, repetitions=2, seed=5,
        )
        sl = result.series_named("sl_feature_vectors_ms").values[0]
        gnp = result.series_named("euclidean_gnp_ms").values[0]
        assert gnp == pytest.approx(sl, rel=0.5)


class TestFig8:
    def test_structure(self):
        result = run_fig8(
            network_sizes=(14,), num_landmarks=4, repetitions=1, seed=6
        )
        assert {s.name for s in result.series} == {
            "sl_k10_ms", "sdsl_k10_ms", "sl_k20_ms", "sdsl_k20_ms",
        }
        assert "max_improvement_k20_pct" in result.notes

    def test_bad_repetitions_rejected(self):
        with pytest.raises(ValueError):
            run_fig8(network_sizes=(10,), repetitions=0)


class TestFig9:
    def test_structure(self):
        result = run_fig9(
            num_caches=14, k_values=(2, 4), num_landmarks=4,
            repetitions=1, seed=7,
        )
        assert result.x_values == (2, 4)
        assert {s.name for s in result.series} == {"sl_ms", "sdsl_ms"}
        assert "mean_improvement_pct" in result.notes
