"""Tests for the experiment registry."""

import pytest

from repro.errors import ReproError
from repro.experiments import REGISTRY, run_experiment


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(REGISTRY) == {
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "figR",
        }

    def test_runners_callable(self):
        for runner in REGISTRY.values():
            assert callable(runner)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ReproError):
            run_experiment("fig99")

    def test_run_experiment_dispatches(self):
        result = run_experiment(
            "fig4",
            network_sizes=(10,),
            num_landmarks=4,
            repetitions=1,
        )
        assert result.experiment_id == "fig4"
