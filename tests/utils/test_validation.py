"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 0.1)

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x"):
            check_non_negative("x", -0.001)


class TestCheckFraction:
    def test_accepts_bounds(self):
        check_fraction("x", 0.0)
        check_fraction("x", 1.0)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_fraction("x", 1.01)
        with pytest.raises(ValueError):
            check_fraction("x", -0.01)


class TestCheckInRange:
    def test_accepts_inside(self):
        check_in_range("x", 5, 1, 10)

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match="x"):
            check_in_range("x", 11, 1, 10)


class TestCustomExceptionClass:
    """Every helper raises the caller's domain error via ``exc``."""

    def test_check_positive_custom_exc(self):
        from repro.errors import ProbingError

        with pytest.raises(ProbingError, match="x must be > 0, got 0"):
            check_positive("x", 0, exc=ProbingError)

    def test_check_non_negative_custom_exc(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="x must be >= 0, got -1"):
            check_non_negative("x", -1, exc=SimulationError)

    def test_check_fraction_custom_exc(self):
        from repro.errors import ProbingError

        with pytest.raises(
            ProbingError, match=r"x must be in \[0, 1\], got 2"
        ):
            check_fraction("x", 2, exc=ProbingError)

    def test_check_in_range_custom_exc(self):
        from repro.errors import SimulationError

        with pytest.raises(
            SimulationError, match=r"x must be in \[1, 10\], got 0"
        ):
            check_in_range("x", 0, 1, 10, exc=SimulationError)

    def test_default_stays_value_error(self):
        with pytest.raises(ValueError):
            check_positive("x", -5)
