"""Tests for repro.utils.stats: online and batch statistics."""

import math

import numpy as np
import pytest

from repro.utils.stats import (
    FixedBinHistogram,
    OnlineStats,
    percentile,
    summarize,
)


class TestOnlineStats:
    def test_mean_and_variance_match_numpy(self):
        data = [1.5, 2.0, -3.0, 7.25, 0.0, 4.5]
        s = OnlineStats()
        s.add_many(data)
        assert s.mean == pytest.approx(np.mean(data))
        assert s.variance == pytest.approx(np.var(data, ddof=1))
        assert s.stddev == pytest.approx(np.std(data, ddof=1))

    def test_min_max(self):
        s = OnlineStats()
        s.add_many([3.0, -1.0, 10.0])
        assert s.minimum == -1.0
        assert s.maximum == 10.0

    def test_count(self):
        s = OnlineStats()
        assert s.count == 0
        s.add(1.0)
        assert s.count == 1

    def test_single_value_variance_zero(self):
        s = OnlineStats()
        s.add(5.0)
        assert s.variance == 0.0

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            OnlineStats().mean

    def test_empty_variance_raises(self):
        with pytest.raises(ValueError):
            OnlineStats().variance

    def test_empty_minmax_raises(self):
        with pytest.raises(ValueError):
            OnlineStats().minimum
        with pytest.raises(ValueError):
            OnlineStats().maximum

    def test_merge_equivalent_to_combined_stream(self):
        left_data = [1.0, 2.0, 3.0]
        right_data = [10.0, -5.0]
        left, right, combined = OnlineStats(), OnlineStats(), OnlineStats()
        left.add_many(left_data)
        right.add_many(right_data)
        combined.add_many(left_data + right_data)
        merged = left.merge(right)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum

    def test_merge_with_empty(self):
        s = OnlineStats()
        s.add_many([1.0, 2.0])
        merged = s.merge(OnlineStats())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)
        other_way = OnlineStats().merge(s)
        assert other_way.mean == pytest.approx(1.5)

    def test_merge_does_not_mutate_inputs(self):
        a, b = OnlineStats(), OnlineStats()
        a.add(1.0)
        b.add(3.0)
        a.merge(b)
        assert a.count == 1
        assert b.count == 1

    def test_numerical_stability_large_offset(self):
        base = 1e9
        data = [base + x for x in (0.1, 0.2, 0.3)]
        s = OnlineStats()
        s.add_many(data)
        # Values at a 1e9 offset only retain ~2e-7 absolute precision in
        # float64, so allow a proportionally loose tolerance.
        assert s.variance == pytest.approx(0.01, rel=1e-3)


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_extremes(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestSummarize:
    def test_fields(self):
        data = [1.0, 2.0, 3.0, 4.0]
        s = summarize(data)
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.p50 == pytest.approx(2.5)

    def test_single_value(self):
        s = summarize([2.0])
        assert s.stddev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_contains_stats(self):
        text = str(summarize([1.0, 2.0]))
        assert "mean=" in text and "p95=" in text


class TestFixedBinHistogram:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            FixedBinHistogram(upper=0.0)
        with pytest.raises(ValueError):
            FixedBinHistogram(num_bins=0)

    def test_negative_value_rejected(self):
        h = FixedBinHistogram()
        with pytest.raises(ValueError):
            h.add(-1.0)

    def test_basic_moments(self):
        h = FixedBinHistogram(upper=100.0)
        for v in (10.0, 20.0, 30.0):
            h.add(v)
        assert h.count == 3
        assert h.mean == pytest.approx(20.0)
        assert h.minimum == 10.0
        assert h.maximum == 30.0
        assert h.overflow_count == 0

    def test_percentiles_track_numpy_within_bin_width(self):
        rng = np.random.default_rng(5)
        data = rng.exponential(scale=100.0, size=5_000)
        h = FixedBinHistogram(upper=2_000.0, num_bins=512)
        for v in data:
            h.add(float(v))
        width = 2_000.0 / 512
        for q in (10, 50, 90, 95, 99):
            assert h.percentile(q) == pytest.approx(
                np.percentile(data, q), abs=2 * width
            )

    def test_extreme_percentiles_are_exact(self):
        h = FixedBinHistogram(upper=100.0)
        for v in (3.0, 42.0, 77.0):
            h.add(v)
        assert h.percentile(0) == 3.0
        assert h.percentile(100) == 77.0

    def test_overflow_bin_returns_exact_max(self):
        h = FixedBinHistogram(upper=10.0, num_bins=10)
        h.add(5.0)
        h.add(123.5)  # beyond upper
        assert h.overflow_count == 1
        assert h.percentile(100) == 123.5
        assert h.percentile(99) == 123.5

    def test_empty_queries_rejected(self):
        h = FixedBinHistogram()
        for query in (lambda: h.mean, lambda: h.minimum,
                      lambda: h.maximum, lambda: h.percentile(50)):
            with pytest.raises(ValueError):
                query()

    def test_out_of_range_q_rejected(self):
        h = FixedBinHistogram()
        h.add(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_reset(self):
        h = FixedBinHistogram()
        h.add(5.0)
        h.reset()
        assert h.count == 0
        with pytest.raises(ValueError):
            h.percentile(50)

    def test_merge(self):
        a = FixedBinHistogram(upper=100.0)
        b = FixedBinHistogram(upper=100.0)
        a.add(10.0)
        b.add(30.0)
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(20.0)
        assert a.maximum == 30.0

    def test_merge_shape_mismatch_rejected(self):
        a = FixedBinHistogram(upper=100.0)
        b = FixedBinHistogram(upper=50.0)
        with pytest.raises(ValueError):
            a.merge(b)
