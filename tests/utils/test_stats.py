"""Tests for repro.utils.stats: online and batch statistics."""

import math

import numpy as np
import pytest

from repro.utils.stats import OnlineStats, percentile, summarize


class TestOnlineStats:
    def test_mean_and_variance_match_numpy(self):
        data = [1.5, 2.0, -3.0, 7.25, 0.0, 4.5]
        s = OnlineStats()
        s.add_many(data)
        assert s.mean == pytest.approx(np.mean(data))
        assert s.variance == pytest.approx(np.var(data, ddof=1))
        assert s.stddev == pytest.approx(np.std(data, ddof=1))

    def test_min_max(self):
        s = OnlineStats()
        s.add_many([3.0, -1.0, 10.0])
        assert s.minimum == -1.0
        assert s.maximum == 10.0

    def test_count(self):
        s = OnlineStats()
        assert s.count == 0
        s.add(1.0)
        assert s.count == 1

    def test_single_value_variance_zero(self):
        s = OnlineStats()
        s.add(5.0)
        assert s.variance == 0.0

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            OnlineStats().mean

    def test_empty_variance_raises(self):
        with pytest.raises(ValueError):
            OnlineStats().variance

    def test_empty_minmax_raises(self):
        with pytest.raises(ValueError):
            OnlineStats().minimum
        with pytest.raises(ValueError):
            OnlineStats().maximum

    def test_merge_equivalent_to_combined_stream(self):
        left_data = [1.0, 2.0, 3.0]
        right_data = [10.0, -5.0]
        left, right, combined = OnlineStats(), OnlineStats(), OnlineStats()
        left.add_many(left_data)
        right.add_many(right_data)
        combined.add_many(left_data + right_data)
        merged = left.merge(right)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum

    def test_merge_with_empty(self):
        s = OnlineStats()
        s.add_many([1.0, 2.0])
        merged = s.merge(OnlineStats())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)
        other_way = OnlineStats().merge(s)
        assert other_way.mean == pytest.approx(1.5)

    def test_merge_does_not_mutate_inputs(self):
        a, b = OnlineStats(), OnlineStats()
        a.add(1.0)
        b.add(3.0)
        a.merge(b)
        assert a.count == 1
        assert b.count == 1

    def test_numerical_stability_large_offset(self):
        base = 1e9
        data = [base + x for x in (0.1, 0.2, 0.3)]
        s = OnlineStats()
        s.add_many(data)
        # Values at a 1e9 offset only retain ~2e-7 absolute precision in
        # float64, so allow a proportionally loose tolerance.
        assert s.variance == pytest.approx(0.01, rel=1e-3)


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_extremes(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestSummarize:
    def test_fields(self):
        data = [1.0, 2.0, 3.0, 4.0]
        s = summarize(data)
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.p50 == pytest.approx(2.5)

    def test_single_value(self):
        s = summarize([2.0])
        assert s.stddev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_contains_stats(self):
        text = str(summarize([1.0, 2.0]))
        assert "mean=" in text and "p95=" in text
