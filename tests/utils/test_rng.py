"""Tests for repro.utils.rng: reproducible independent streams."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, spawn_rng


class TestSpawnRng:
    def test_int_seed_reproducible(self):
        a = spawn_rng(42).random(5)
        b = spawn_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert spawn_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(spawn_rng(None), np.random.Generator)


class TestRngFactory:
    def test_same_label_same_stream(self):
        factory = RngFactory(7)
        assert factory.stream("a") is factory.stream("a")

    def test_different_labels_different_streams(self):
        factory = RngFactory(7)
        assert factory.stream("a") is not factory.stream("b")

    def test_reproducible_across_factories(self):
        x = RngFactory(7).stream("workload").random(4)
        y = RngFactory(7).stream("workload").random(4)
        assert np.array_equal(x, y)

    def test_streams_statistically_distinct(self):
        factory = RngFactory(7)
        a = factory.stream("a").random(100)
        b = factory.stream("b").random(100)
        assert not np.array_equal(a, b)

    def test_order_independence(self):
        """Requesting streams in different orders yields identical draws."""
        f1 = RngFactory(3)
        f1.stream("x")
        first = f1.stream("y").random(3)
        f2 = RngFactory(3)
        second = f2.stream("y").random(3)
        assert np.array_equal(first, second)

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(1).stream("")

    def test_root_seed_exposed(self):
        assert RngFactory(5).root_seed == 5
        assert RngFactory(None).root_seed is None

    def test_fork_independent_and_reproducible(self):
        parent = RngFactory(11)
        child_a = parent.fork("rep0").stream("s").random(4)
        child_b = parent.fork("rep1").stream("s").random(4)
        assert not np.array_equal(child_a, child_b)
        again = RngFactory(11).fork("rep0").stream("s").random(4)
        assert np.array_equal(child_a, again)

    def test_fork_of_unseeded_factory(self):
        child = RngFactory(None).fork("x")
        assert isinstance(child.stream("s"), np.random.Generator)
