"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import Table


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "value"])
        t.add_row(["alpha", 1.0])
        t.add_row(["b", 20.5])
        rendered = t.render()
        lines = rendered.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        # all lines share the same column separator positions
        assert {line.index("|") for line in lines} == {lines[0].index("|")}

    def test_float_formatting(self):
        t = Table(["x"], float_format="{:.3f}")
        t.add_row([1.23456])
        assert "1.235" in t.render()

    def test_numeric_right_aligned(self):
        t = Table(["v"])
        t.add_row([1.0])
        t.add_row([100.0])
        lines = t.render().splitlines()
        assert lines[2].endswith("1.00")
        assert lines[3].endswith("100.00")

    def test_wrong_row_width_rejected(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_row_count(self):
        t = Table(["a"])
        assert t.row_count == 0
        t.add_row([1])
        assert t.row_count == 1

    def test_bool_rendered_as_text(self):
        t = Table(["flag"])
        t.add_row([True])
        assert "True" in t.render()

    def test_str_equals_render(self):
        t = Table(["a"])
        t.add_row([1])
        assert str(t) == t.render()
