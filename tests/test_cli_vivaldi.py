"""CLI coverage for the landmark-free vivaldi scheme."""

import json

import pytest

from repro.cli import main


class TestVivaldiCLI:
    def test_form_groups_vivaldi(self, capsys, tmp_path):
        net_path = tmp_path / "net.npz"
        assert main(
            ["network", "--caches", "12", "--seed", "2", "--out",
             str(net_path)]
        ) == 0
        groups_path = tmp_path / "groups.json"
        code = main(
            [
                "form-groups",
                "--network", str(net_path),
                "--scheme", "vivaldi",
                "--k", "3",
                "--out", str(groups_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "vivaldi" in out
        payload = json.loads(groups_path.read_text())
        members = [m for g in payload["groups"] for m in g["members"]]
        assert sorted(members) == list(range(1, 13))
