"""End-to-end reproduction of the paper's Figures 1 and 2 worked example.

The paper walks a 6-cache network (N=6, K=3, L=3, M=2) through all three
SL steps.  These tests pin the library to that walkthrough.
"""

import numpy as np
import pytest

from repro.config import KMeansConfig, LandmarkConfig
from repro.clustering import KMeans
from repro.core import GFCoordinator
from repro.landmarks import GreedyMaxMinSelector, build_feature_vectors
from repro.probing import NoNoise, Prober


class TestFullWalkthrough:
    def test_steps_one_to_three(self, paper_network):
        """PLSet {Ec0,Ec1,Ec3,Ec4} -> landmarks {Os,Ec0,Ec4} -> pairs."""
        prober = Prober(paper_network, noise=NoNoise(), seed=0)
        config = LandmarkConfig(num_landmarks=3, multiplier=2)

        # Step 1 with the paper's PLSet.
        landmarks = GreedyMaxMinSelector().select_from_potential(
            prober, config, [1, 2, 4, 5]
        )
        assert landmarks.nodes == (0, 1, 5)
        assert landmarks.min_pairwise_rtt == pytest.approx(12.0)

        # Step 2: feature vectors for all six caches.
        features = build_feature_vectors(prober, landmarks)
        assert features.matrix.shape == (6, 3)

        # Step 3: K-means (restarted) finds the three natural pairs
        # shown in Figure 2.
        clustering = KMeans(
            k=3, config=KMeansConfig(restarts=10)
        ).fit(features.matrix, seed=1)
        groups = sorted(
            tuple(sorted(features.nodes[i] for i in members))
            for members in clustering.as_groups()
        )
        assert groups == [(1, 2), (3, 4), (5, 6)]

    def test_natural_pairs_minimise_gicost(self, paper_network):
        """The paper's pairing beats every alternative 2-2-2 partition."""
        from itertools import permutations

        from repro.analysis import average_group_interaction_cost
        from repro.core.groups import CacheGroup, GroupingResult

        def cost_of(partition):
            groups = tuple(
                CacheGroup(i, tuple(members))
                for i, members in enumerate(partition)
            )
            return average_group_interaction_cost(
                paper_network,
                GroupingResult(scheme="manual", groups=groups),
            )

        natural = cost_of([(1, 2), (3, 4), (5, 6)])
        caches = [1, 2, 3, 4, 5, 6]
        seen = set()
        for perm in permutations(caches):
            partition = tuple(
                tuple(sorted(perm[i:i + 2])) for i in (0, 2, 4)
            )
            key = tuple(sorted(partition))
            if key in seen or key == ((1, 2), (3, 4), (5, 6)):
                continue
            seen.add(key)
            assert natural <= cost_of(partition)

    def test_coordinator_runs_paper_network(self, paper_network):
        """The full coordinator pipeline works on the paper network."""
        coordinator = GFCoordinator(paper_network, seed=5)
        landmarks = coordinator.choose_landmarks(
            GreedyMaxMinSelector(),
            LandmarkConfig(num_landmarks=3, multiplier=2),
        )
        features = coordinator.build_features(landmarks)
        result = coordinator.cluster(
            features, k=3, scheme_name="SL",
            kmeans_config=KMeansConfig(restarts=10),
        )
        assert sorted(result.all_members) == [1, 2, 3, 4, 5, 6]
        assert result.num_groups == 3
