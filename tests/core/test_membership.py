"""Tests for dynamic group membership (join/leave under churn)."""

import numpy as np
import pytest

from repro.config import LandmarkConfig
from repro.core.groups import CacheGroup, GroupingResult
from repro.core.membership import MembershipManager
from repro.core.schemes import SLScheme
from repro.errors import SchemeError
from repro.probing import NoNoise, Prober


@pytest.fixture
def paper_grouping():
    """The paper network's natural pairs (no provenance)."""
    return GroupingResult(
        scheme="manual",
        groups=(
            CacheGroup(0, (1, 2)),
            CacheGroup(1, (3, 4)),
            CacheGroup(2, (5, 6)),
        ),
    )


@pytest.fixture
def sl_grouping(small_network):
    """A provenance-carrying SL grouping over the 30-cache network."""
    return SLScheme(
        landmark_config=LandmarkConfig(num_landmarks=5)
    ).form_groups(small_network, 5, seed=3)


class TestPeerProbeJoin:
    def test_joins_nearest_group(self, paper_network, paper_grouping):
        """Removing Ec5 (node 6) and re-joining it lands next to Ec4."""
        manager = MembershipManager(paper_grouping)
        manager.leave(6)
        prober = Prober(paper_network, noise=NoNoise(), seed=0)
        group_id = manager.join(prober, 6, seed=1, samples_per_group=2)
        # Node 6's nearest peer is node 5 (RTT 4.0), in group 2.
        assert group_id == 2
        assert 6 in manager.members_of(2)

    def test_double_join_rejected(self, paper_network, paper_grouping):
        manager = MembershipManager(paper_grouping)
        prober = Prober(paper_network, seed=0)
        with pytest.raises(SchemeError):
            manager.join(prober, 1)

    def test_bad_samples_rejected(self, paper_network, paper_grouping):
        manager = MembershipManager(paper_grouping)
        manager.leave(1)
        prober = Prober(paper_network, seed=0)
        with pytest.raises(SchemeError):
            manager.join(prober, 1, samples_per_group=0)


class TestLandmarkJoin:
    def test_rejoining_cache_returns_to_similar_group(
        self, small_network, sl_grouping
    ):
        """A cache that leaves and rejoins lands in a group containing
        at least one of its former peers (feature-space locality)."""
        manager = MembershipManager(sl_grouping)
        prober = Prober(small_network, noise=NoNoise(), seed=0)
        moved = 0
        checked = 0
        for node in list(small_network.cache_nodes)[:10]:
            former_peers = set(
                manager.members_of(manager.group_of(node))
            ) - {node}
            if not former_peers:
                continue
            checked += 1
            manager.leave(node)
            new_group = manager.join(prober, node)
            if not former_peers & set(manager.members_of(new_group)):
                moved += 1
        assert checked > 0
        # Most rejoining caches meet a former peer again.
        assert moved <= checked // 3

    def test_uses_landmark_strategy_when_provenance_present(
        self, small_network, sl_grouping
    ):
        manager = MembershipManager(sl_grouping)
        prober = Prober(small_network, noise=NoNoise(), seed=0)
        manager.leave(1)
        before = prober.stats.pairs_measured
        manager.join(prober, 1)
        # Landmark strategy probes exactly the landmark set.
        probed = prober.stats.pairs_measured - before
        assert probed <= len(sl_grouping.landmarks)


class TestLeave:
    def test_leave_removes_member(self, paper_grouping):
        manager = MembershipManager(paper_grouping)
        group_id = manager.leave(3)
        assert group_id == 1
        assert manager.members_of(1) == [4]
        with pytest.raises(SchemeError):
            manager.group_of(3)

    def test_emptied_group_dropped(self, paper_grouping):
        manager = MembershipManager(paper_grouping)
        manager.leave(1)
        manager.leave(2)
        assert manager.num_groups == 2
        with pytest.raises(SchemeError):
            manager.members_of(0)

    def test_leave_unknown_rejected(self, paper_grouping):
        manager = MembershipManager(paper_grouping)
        with pytest.raises(SchemeError):
            manager.leave(99)


class TestChurnAccounting:
    def test_churn_fraction(self, paper_network, paper_grouping):
        manager = MembershipManager(paper_grouping)
        assert manager.churn_fraction() == 0.0
        manager.leave(1)
        assert manager.churn_fraction() == pytest.approx(1 / 6)
        prober = Prober(paper_network, noise=NoNoise(), seed=0)
        manager.join(prober, 1, seed=0)
        assert manager.churn_fraction() == pytest.approx(2 / 6)

    def test_needs_reclustering(self, paper_grouping):
        manager = MembershipManager(paper_grouping)
        assert not manager.needs_reclustering(threshold=0.25)
        manager.leave(1)
        manager.leave(3)
        assert manager.needs_reclustering(threshold=0.25)

    def test_bad_threshold_rejected(self, paper_grouping):
        manager = MembershipManager(paper_grouping)
        with pytest.raises(SchemeError):
            manager.needs_reclustering(threshold=0.0)


class TestSnapshot:
    def test_current_grouping_valid_partition(
        self, paper_network, paper_grouping
    ):
        manager = MembershipManager(paper_grouping)
        manager.leave(6)
        prober = Prober(paper_network, noise=NoNoise(), seed=0)
        manager.join(prober, 6, seed=0)
        snapshot = manager.current_grouping()
        assert sorted(snapshot.all_members) == [1, 2, 3, 4, 5, 6]
        assert snapshot.scheme == "manual+churn"

    def test_snapshot_usable_by_simulator(self, small_network, sl_grouping):
        from repro.config import DocumentConfig, WorkloadConfig
        from repro.simulator import simulate
        from repro.workload import generate_workload

        manager = MembershipManager(sl_grouping)
        prober = Prober(small_network, seed=0)
        manager.leave(5)
        manager.join(prober, 5)
        workload = generate_workload(
            small_network.cache_nodes,
            WorkloadConfig(
                documents=DocumentConfig(num_documents=40),
                requests_per_cache=20,
            ),
            seed=1,
        )
        result = simulate(
            small_network, manager.current_grouping(), workload
        )
        assert result.average_latency_ms() > 0


class TestFailedAwareJoin:
    """Peer-probe joins skip caches that are currently down."""

    def test_group_with_only_failed_members_skipped(
        self, paper_network, paper_grouping
    ):
        manager = MembershipManager(paper_grouping)
        manager.leave(6)
        prober = Prober(paper_network, noise=NoNoise(), seed=0)
        # Node 6's nearest peer (node 5) is down, emptying group 2's
        # sampling pool; the join must land in a live group instead.
        group_id = manager.join(
            prober, 6, seed=1, samples_per_group=2, failed={5}
        )
        assert group_id != 2
        assert 6 in manager.members_of(group_id)

    def test_all_groups_dead_raises_actionable_error(
        self, paper_network, paper_grouping
    ):
        manager = MembershipManager(paper_grouping)
        manager.leave(6)
        prober = Prober(paper_network, noise=NoNoise(), seed=0)
        with pytest.raises(SchemeError, match="failed members"):
            manager.join(
                prober, 6, seed=1, failed={1, 2, 3, 4, 5}
            )

    def test_empty_failed_set_is_byte_identical(
        self, paper_network, paper_grouping
    ):
        """``failed=set()`` must not shift pools or RNG draws."""
        results = []
        for failed in (None, set()):
            manager = MembershipManager(paper_grouping)
            manager.leave(6)
            prober = Prober(paper_network, seed=0)
            group_id = manager.join(
                prober, 6, seed=1, samples_per_group=2, failed=failed
            )
            results.append((group_id, prober.stats.probes_sent))
        assert results[0] == results[1]

    def test_partial_failures_leave_live_peers_probed(
        self, paper_network, paper_grouping
    ):
        manager = MembershipManager(paper_grouping)
        manager.leave(6)
        prober = Prober(paper_network, noise=NoNoise(), seed=0)
        # Group 2 still has node 5 alive; the dead node 3 only thins
        # group 1's pool.
        group_id = manager.join(
            prober, 6, seed=1, samples_per_group=2, failed={3}
        )
        assert group_id == 2

    def test_landmark_strategy_ignores_failed(
        self, small_network, sl_grouping
    ):
        """Landmark joins probe landmarks, not peers: ``failed`` is
        documented as a peer-probe concern and changes nothing."""
        results = []
        for failed in (None, {1}):
            manager = MembershipManager(sl_grouping)
            manager.leave(5)
            prober = Prober(small_network, noise=NoNoise(), seed=0)
            results.append(manager.join(prober, 5, failed=failed))
        assert results[0] == results[1]
