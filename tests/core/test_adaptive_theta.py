"""Tests for the adaptive-theta SDSL mode."""

import pytest

from repro.config import SDSLConfig
from repro.core import SDSLScheme
from repro.errors import ConfigurationError


class TestEffectiveTheta:
    def test_fixed_mode_ignores_k(self):
        config = SDSLConfig(theta=1.5, adaptive=False)
        assert config.effective_theta(5, 100) == 1.5
        assert config.effective_theta(50, 100) == 1.5

    def test_adaptive_scales_with_density(self):
        config = SDSLConfig(adaptive=True)
        # 20 * K / N, clamped to [0.5, 2.5].
        assert config.effective_theta(10, 500) == pytest.approx(0.5)
        assert config.effective_theta(50, 500) == pytest.approx(2.0)
        assert config.effective_theta(25, 500) == pytest.approx(1.0)

    def test_clamping(self):
        config = SDSLConfig(adaptive=True)
        assert config.effective_theta(1, 1000) == 0.5   # lower clamp
        assert config.effective_theta(500, 500) == 2.5  # upper clamp

    def test_bad_args_rejected(self):
        config = SDSLConfig(adaptive=True)
        with pytest.raises(ConfigurationError):
            config.effective_theta(0, 100)
        with pytest.raises(ConfigurationError):
            config.effective_theta(5, 0)


class TestAdaptiveScheme:
    def test_forms_valid_groups(self, small_network):
        scheme = SDSLScheme(sdsl_config=SDSLConfig(adaptive=True))
        result = scheme.form_groups(small_network, k=5, seed=1)
        assert sorted(result.all_members) == small_network.cache_nodes

    def test_adaptive_differs_from_fixed_at_low_density(self, small_network):
        """At K/N = 2/30 the adaptive theta (~1.33) differs from the
        fixed default (2.0), so the groupings generally diverge."""
        adaptive = SDSLScheme(
            sdsl_config=SDSLConfig(adaptive=True)
        ).form_groups(small_network, k=2, seed=3)
        fixed = SDSLScheme(
            sdsl_config=SDSLConfig(theta=2.0)
        ).form_groups(small_network, k=2, seed=3)
        # Both are valid partitions; equality is possible but the
        # effective thetas must differ.
        assert SDSLConfig(adaptive=True).effective_theta(2, 30) != 2.0
        assert sorted(adaptive.all_members) == sorted(fixed.all_members)
