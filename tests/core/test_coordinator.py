"""Tests for the GF-Coordinator pipeline steps."""

import numpy as np
import pytest

from repro.config import KMeansConfig, LandmarkConfig, ProbeConfig
from repro.core import GFCoordinator
from repro.errors import SchemeError
from repro.landmarks import GreedyMaxMinSelector, RandomSelector


@pytest.fixture
def coordinator(small_network):
    return GFCoordinator(
        small_network,
        probe_config=ProbeConfig(jitter_std=0.0),
        seed=7,
    )


class TestSteps:
    def test_choose_landmarks(self, coordinator):
        landmarks = coordinator.choose_landmarks(
            GreedyMaxMinSelector(), LandmarkConfig(num_landmarks=5)
        )
        assert len(landmarks) == 5
        assert landmarks.nodes[0] == coordinator.network.origin

    def test_build_features(self, coordinator):
        landmarks = coordinator.choose_landmarks(
            GreedyMaxMinSelector(), LandmarkConfig(num_landmarks=5)
        )
        features = coordinator.build_features(landmarks)
        assert features.matrix.shape == (30, 5)

    def test_measured_server_distances_match_truth(
        self, coordinator, small_network
    ):
        """With no probe noise, column 0 equals true server distances."""
        landmarks = coordinator.choose_landmarks(
            GreedyMaxMinSelector(), LandmarkConfig(num_landmarks=4)
        )
        features = coordinator.build_features(landmarks)
        measured = coordinator.measured_server_distances(features)
        assert np.allclose(measured, small_network.server_distances())

    def test_cluster_produces_partition(self, coordinator, small_network):
        landmarks = coordinator.choose_landmarks(
            GreedyMaxMinSelector(), LandmarkConfig(num_landmarks=4)
        )
        features = coordinator.build_features(landmarks)
        result = coordinator.cluster(features, k=5, scheme_name="test")
        assert result.num_groups <= 5
        assert sorted(result.all_members) == small_network.cache_nodes
        assert result.landmarks is landmarks
        assert result.clustering is not None

    def test_cluster_with_custom_points(self, coordinator):
        landmarks = coordinator.choose_landmarks(
            RandomSelector(), LandmarkConfig(num_landmarks=3)
        )
        features = coordinator.build_features(landmarks)
        points = np.arange(60, dtype=float).reshape(30, 2)
        result = coordinator.cluster(
            features, k=3, scheme_name="custom", points=points
        )
        assert result.num_groups == 3

    def test_cluster_k_bounds(self, coordinator):
        landmarks = coordinator.choose_landmarks(
            RandomSelector(), LandmarkConfig(num_landmarks=3)
        )
        features = coordinator.build_features(landmarks)
        with pytest.raises(SchemeError):
            coordinator.cluster(features, k=0, scheme_name="bad")
        with pytest.raises(SchemeError):
            coordinator.cluster(features, k=31, scheme_name="bad")

    def test_cluster_points_shape_checked(self, coordinator):
        landmarks = coordinator.choose_landmarks(
            RandomSelector(), LandmarkConfig(num_landmarks=3)
        )
        features = coordinator.build_features(landmarks)
        with pytest.raises(SchemeError):
            coordinator.cluster(
                features, k=2, scheme_name="bad", points=np.zeros((5, 2))
            )

    def test_probe_accounting_flows_through(self, coordinator):
        landmarks = coordinator.choose_landmarks(
            GreedyMaxMinSelector(), LandmarkConfig(num_landmarks=4)
        )
        assert coordinator.prober.stats.probes_sent > 0
        before = coordinator.prober.stats.probes_sent
        coordinator.build_features(landmarks)
        assert coordinator.prober.stats.probes_sent > before

    def test_reproducible(self, small_network):
        def run():
            c = GFCoordinator(small_network, seed=3)
            lm = c.choose_landmarks(
                GreedyMaxMinSelector(), LandmarkConfig(num_landmarks=4)
            )
            fv = c.build_features(lm)
            return c.cluster(fv, k=4, scheme_name="x")

        a, b = run(), run()
        assert a.membership() == b.membership()
