"""Tests for the five group-formation schemes."""

import numpy as np
import pytest

from repro.config import (
    GNPConfig,
    KMeansConfig,
    LandmarkConfig,
    SDSLConfig,
)
from repro.core import (
    EuclideanGNPScheme,
    MinDistLandmarksScheme,
    RandomLandmarksScheme,
    SDSLScheme,
    SLScheme,
    scheme_by_name,
)
from repro.errors import SchemeError

LM4 = LandmarkConfig(num_landmarks=4, multiplier=2)


class TestSLScheme:
    def test_partitions_all_caches(self, small_network):
        result = SLScheme(landmark_config=LM4).form_groups(
            small_network, k=5, seed=1
        )
        assert sorted(result.all_members) == small_network.cache_nodes
        assert result.scheme == "SL"
        assert result.num_groups <= 5

    def test_groups_geographically_tight(self, small_network):
        """SL groups have lower mean pairwise RTT than random partitions."""
        from repro.analysis import average_group_interaction_cost
        from repro.core.groups import groups_from_labels, GroupingResult

        sl = SLScheme(landmark_config=LM4).form_groups(
            small_network, k=5, seed=2
        )
        sl_cost = average_group_interaction_cost(small_network, sl)

        rng = np.random.default_rng(0)
        random_costs = []
        for _ in range(10):
            labels = rng.integers(5, size=30)
            groups = groups_from_labels(small_network.cache_nodes, labels)
            random_costs.append(
                average_group_interaction_cost(
                    small_network,
                    GroupingResult(scheme="rand", groups=groups),
                )
            )
        assert sl_cost < np.mean(random_costs)

    def test_k_one(self, small_network):
        result = SLScheme(landmark_config=LM4).form_groups(
            small_network, k=1, seed=1
        )
        assert result.num_groups == 1

    def test_bad_k_rejected(self, small_network):
        with pytest.raises(SchemeError):
            SLScheme(landmark_config=LM4).form_groups(
                small_network, k=0, seed=1
            )

    def test_reproducible(self, small_network):
        a = SLScheme(landmark_config=LM4).form_groups(small_network, 4, seed=9)
        b = SLScheme(landmark_config=LM4).form_groups(small_network, 4, seed=9)
        assert a.membership() == b.membership()

    def test_seeds_differ(self, small_network):
        a = SLScheme(landmark_config=LM4).form_groups(small_network, 6, seed=1)
        b = SLScheme(landmark_config=LM4).form_groups(small_network, 6, seed=2)
        assert a.membership() != b.membership()


class TestSDSLScheme:
    def test_partitions_all_caches(self, small_network):
        result = SDSLScheme(landmark_config=LM4).form_groups(
            small_network, k=5, seed=1
        )
        assert sorted(result.all_members) == small_network.cache_nodes
        assert result.scheme == "SDSL"

    def test_theta_exposed(self):
        assert SDSLScheme(sdsl_config=SDSLConfig(theta=3.0)).theta == 3.0

    def test_near_origin_groups_smaller(self, small_network):
        """SDSL's defining property: group size grows with server distance.

        Averaged over seeds, the correlation between a group's mean
        server distance and its size must be positive and larger than
        SL's.
        """

        def size_distance_correlation(scheme_cls, **kwargs):
            corrs = []
            for seed in range(8):
                scheme = scheme_cls(landmark_config=LM4, **kwargs)
                result = scheme.form_groups(small_network, k=6, seed=seed)
                sizes, dists = [], []
                for group in result.groups:
                    sizes.append(group.size)
                    dists.append(
                        np.mean(
                            [
                                small_network.server_distance(m)
                                for m in group.members
                            ]
                        )
                    )
                if len(set(sizes)) > 1 and len(set(dists)) > 1:
                    corrs.append(np.corrcoef(sizes, dists)[0, 1])
            return np.mean(corrs)

        sdsl_corr = size_distance_correlation(
            SDSLScheme, sdsl_config=SDSLConfig(theta=2.0)
        )
        sl_corr = size_distance_correlation(SLScheme)
        assert sdsl_corr > 0
        assert sdsl_corr > sl_corr

    def test_theta_zero_behaves_like_sl(self, small_network):
        """theta=0 degenerates to uniform seeding (same scheme family)."""
        result = SDSLScheme(
            sdsl_config=SDSLConfig(theta=0.0), landmark_config=LM4
        ).form_groups(small_network, k=4, seed=3)
        assert sorted(result.all_members) == small_network.cache_nodes


class TestBaselineSchemes:
    def test_random_landmarks(self, small_network):
        result = RandomLandmarksScheme(landmark_config=LM4).form_groups(
            small_network, k=4, seed=1
        )
        assert result.scheme == "random-landmarks"
        assert sorted(result.all_members) == small_network.cache_nodes

    def test_mindist_landmarks(self, small_network):
        result = MinDistLandmarksScheme(landmark_config=LM4).form_groups(
            small_network, k=4, seed=1
        )
        assert result.scheme == "mindist-landmarks"
        assert result.landmarks is not None

    def test_gnp_scheme(self, small_network):
        result = EuclideanGNPScheme(
            gnp_config=GNPConfig(dimensions=2, max_iterations=40),
            landmark_config=LM4,
        ).form_groups(small_network, k=4, seed=1)
        assert result.scheme == "euclidean-gnp"
        assert sorted(result.all_members) == small_network.cache_nodes


class TestSchemeByName:
    def test_all_names(self):
        for name in (
            "SL",
            "SDSL",
            "random-landmarks",
            "mindist-landmarks",
            "euclidean-gnp",
        ):
            assert scheme_by_name(name).name == name

    def test_kwargs_forwarded(self):
        scheme = scheme_by_name("SDSL", sdsl_config=SDSLConfig(theta=5.0))
        assert scheme.theta == 5.0

    def test_unknown_rejected(self):
        with pytest.raises(SchemeError):
            scheme_by_name("nope")
