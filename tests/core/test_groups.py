"""Tests for CacheGroup / GroupingResult."""

import pytest

from repro.core.groups import (
    CacheGroup,
    GroupingResult,
    groups_from_labels,
    single_group,
    singleton_groups,
)
from repro.errors import SchemeError


class TestCacheGroup:
    def test_basics(self):
        g = CacheGroup(group_id=0, members=(1, 2, 3))
        assert g.size == 3
        assert 2 in g
        assert list(g) == [1, 2, 3]
        assert g.peers_of(2) == [1, 3]

    def test_empty_rejected(self):
        with pytest.raises(SchemeError):
            CacheGroup(group_id=0, members=())

    def test_duplicates_rejected(self):
        with pytest.raises(SchemeError):
            CacheGroup(group_id=0, members=(1, 1))

    def test_negative_id_rejected(self):
        with pytest.raises(SchemeError):
            CacheGroup(group_id=-1, members=(1,))

    def test_peers_of_non_member(self):
        g = CacheGroup(group_id=0, members=(1, 2))
        with pytest.raises(SchemeError):
            g.peers_of(3)


class TestGroupingResult:
    def test_partition(self):
        result = GroupingResult(
            scheme="test",
            groups=(
                CacheGroup(0, (1, 2)),
                CacheGroup(1, (3,)),
            ),
        )
        assert result.num_groups == 2
        assert result.all_members == [1, 2, 3]
        assert result.group_of(3).group_id == 1
        assert result.membership() == {1: 0, 2: 0, 3: 1}
        assert result.sizes() == [2, 1]
        assert result.average_group_size() == 1.5

    def test_overlap_rejected(self):
        with pytest.raises(SchemeError):
            GroupingResult(
                scheme="test",
                groups=(CacheGroup(0, (1, 2)), CacheGroup(1, (2,))),
            )

    def test_no_groups_rejected(self):
        with pytest.raises(SchemeError):
            GroupingResult(scheme="test", groups=())

    def test_group_of_missing(self):
        result = GroupingResult(
            scheme="test", groups=(CacheGroup(0, (1,)),)
        )
        with pytest.raises(SchemeError):
            result.group_of(9)


class TestGroupsFromLabels:
    def test_dense_renumbering(self):
        groups = groups_from_labels([10, 11, 12], [5, 2, 5])
        assert len(groups) == 2
        assert groups[0].group_id == 0
        assert groups[0].members == (11,)   # label 2 first
        assert groups[1].members == (10, 12)

    def test_size_mismatch_rejected(self):
        with pytest.raises(SchemeError):
            groups_from_labels([1, 2], [0])


class TestTrivialGroupings:
    def test_single_group(self):
        result = single_group([1, 2, 3])
        assert result.num_groups == 1
        assert result.groups[0].members == (1, 2, 3)
        assert result.scheme == "single-group"

    def test_singleton_groups(self):
        result = singleton_groups([1, 2, 3])
        assert result.num_groups == 3
        assert result.sizes() == [1, 1, 1]
        assert result.scheme == "no-cooperation"
