"""Tests for the decentralised Vivaldi grouping scheme (extension)."""

import numpy as np
import pytest

from repro.analysis import average_group_interaction_cost
from repro.core import VivaldiScheme, scheme_by_name
from repro.core.groups import GroupingResult, groups_from_labels
from repro.errors import SchemeError


class TestVivaldiScheme:
    def test_partitions_all_caches(self, small_network):
        result = VivaldiScheme(rounds=10).form_groups(
            small_network, k=5, seed=1
        )
        assert sorted(result.all_members) == small_network.cache_nodes
        assert result.scheme == "vivaldi"

    def test_no_landmark_probing_bias(self, small_network):
        """The scheme runs without any landmark selection step: its
        provenance landmark set is the synthetic origin-only pair."""
        result = VivaldiScheme(rounds=10).form_groups(
            small_network, k=4, seed=2
        )
        assert result.landmarks is not None
        assert result.landmarks.nodes[0] == small_network.origin

    def test_better_than_random_partition(self, small_network):
        costs = []
        for seed in range(3):
            grouping = VivaldiScheme(rounds=20).form_groups(
                small_network, k=5, seed=seed
            )
            costs.append(
                average_group_interaction_cost(small_network, grouping)
            )
        rng = np.random.default_rng(0)
        random_costs = []
        for _ in range(10):
            labels = rng.integers(5, size=30)
            random_costs.append(
                average_group_interaction_cost(
                    small_network,
                    GroupingResult(
                        scheme="rand",
                        groups=groups_from_labels(
                            small_network.cache_nodes, labels
                        ),
                    ),
                )
            )
        assert np.mean(costs) < np.mean(random_costs)

    def test_reproducible(self, small_network):
        a = VivaldiScheme(rounds=8).form_groups(small_network, 4, seed=7)
        b = VivaldiScheme(rounds=8).form_groups(small_network, 4, seed=7)
        assert a.membership() == b.membership()

    def test_registered_by_name(self):
        assert scheme_by_name("vivaldi").name == "vivaldi"

    def test_bad_params_rejected(self):
        with pytest.raises(SchemeError):
            VivaldiScheme(dimensions=0)
        with pytest.raises(SchemeError):
            VivaldiScheme(rounds=0)
        with pytest.raises(SchemeError):
            VivaldiScheme(neighbors_per_round=0)
