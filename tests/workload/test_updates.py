"""Tests for update-log generation."""

import numpy as np
import pytest

from repro.config import DocumentConfig, WorkloadConfig
from repro.errors import WorkloadError
from repro.workload import build_catalog
from repro.workload.updates import generate_update_log


@pytest.fixture
def catalog():
    return build_catalog(
        DocumentConfig(num_documents=50, dynamic_fraction=0.4), seed=1
    )


def config(**overrides):
    defaults = dict(
        documents=DocumentConfig(num_documents=50, dynamic_fraction=0.4),
        mean_update_interarrival_ms=100.0,
    )
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


class TestGenerateUpdateLog:
    def test_time_sorted_within_horizon(self, catalog, rng):
        records = generate_update_log(catalog, config(), 10_000.0, rng)
        times = [r.timestamp_ms for r in records]
        assert times == sorted(times)
        assert all(0 < t <= 10_000.0 for t in times)

    def test_only_dynamic_documents(self, catalog, rng):
        records = generate_update_log(catalog, config(), 20_000.0, rng)
        dynamic = set(catalog.dynamic_ids())
        assert records, "expected some updates"
        assert all(r.doc_id in dynamic for r in records)

    def test_rate_matches_interarrival(self, catalog, rng):
        records = generate_update_log(catalog, config(), 50_000.0, rng)
        assert len(records) == pytest.approx(500, rel=0.3)

    def test_no_dynamic_documents_empty_log(self, rng):
        static_catalog = build_catalog(
            DocumentConfig(num_documents=10, dynamic_fraction=0.0), seed=2
        )
        records = generate_update_log(
            static_catalog, config(), 10_000.0, rng
        )
        assert records == []

    def test_zipf_update_targets(self, catalog, rng):
        """Hot dynamic documents get updated most."""
        records = generate_update_log(catalog, config(), 200_000.0, rng)
        counts = np.bincount(
            [r.doc_id for r in records], minlength=len(catalog)
        )
        dynamic = catalog.dynamic_ids()
        assert counts[dynamic[0]] > counts[dynamic[-1]]

    def test_bad_horizon_rejected(self, catalog, rng):
        with pytest.raises(WorkloadError):
            generate_update_log(catalog, config(), 0.0, rng)

    def test_reproducible(self, catalog):
        a = generate_update_log(
            catalog, config(), 5_000.0, np.random.default_rng(3)
        )
        b = generate_update_log(
            catalog, config(), 5_000.0, np.random.default_rng(3)
        )
        assert a == b
