"""Tests for the bounded Zipf sampler."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload import ZipfSampler


class TestZipfSampler:
    def test_probabilities_normalised(self):
        s = ZipfSampler(100, alpha=0.9)
        total = sum(s.probability_of_rank(r) for r in range(100))
        assert total == pytest.approx(1.0)

    def test_rank_ordering(self):
        s = ZipfSampler(50, alpha=1.0)
        probs = [s.probability_of_rank(r) for r in range(50)]
        assert probs == sorted(probs, reverse=True)

    def test_exact_ratios(self):
        s = ZipfSampler(3, alpha=1.0)
        p0, p1, p2 = (s.probability_of_rank(r) for r in range(3))
        assert p0 / p1 == pytest.approx(2.0)
        assert p0 / p2 == pytest.approx(3.0)

    def test_empirical_distribution(self, rng):
        s = ZipfSampler(10, alpha=0.8)
        draws = s.sample(rng, size=50_000)
        top_share = (draws == 0).mean()
        assert top_share == pytest.approx(s.probability_of_rank(0), abs=0.01)

    def test_samples_in_range(self, rng):
        s = ZipfSampler(20, alpha=0.9)
        draws = s.sample(rng, size=1000)
        assert draws.min() >= 0
        assert draws.max() < 20

    def test_permutation_remaps_items(self, rng):
        perm = list(reversed(range(10)))
        s = ZipfSampler(10, alpha=1.2, permutation=perm)
        draws = s.sample(rng, size=20_000)
        # Rank 0 now maps to item 9.
        assert (draws == 9).mean() > (draws == 0).mean()

    def test_sample_one(self, rng):
        s = ZipfSampler(5, alpha=1.0)
        assert 0 <= s.sample_one(rng) < 5

    def test_higher_alpha_more_skew(self, rng):
        flat = ZipfSampler(100, alpha=0.2)
        steep = ZipfSampler(100, alpha=1.5)
        assert steep.probability_of_rank(0) > flat.probability_of_rank(0)

    def test_bad_args_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0, alpha=1.0)
        with pytest.raises(WorkloadError):
            ZipfSampler(5, alpha=0.0)

    def test_bad_permutation_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(3, alpha=1.0, permutation=[0, 1, 1])
        with pytest.raises(WorkloadError):
            ZipfSampler(3, alpha=1.0, permutation=[0, 1])

    def test_bad_sample_size_rejected(self, rng):
        with pytest.raises(WorkloadError):
            ZipfSampler(3, alpha=1.0).sample(rng, size=0)

    def test_rank_out_of_range(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(3, alpha=1.0).probability_of_rank(3)
