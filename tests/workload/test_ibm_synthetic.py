"""Tests for the Olympics-like workload preset."""

import pytest

from repro.config import DocumentConfig, WorkloadConfig
from repro.errors import WorkloadError
from repro.workload import Workload, generate_workload
from repro.workload.ibm_synthetic import load_workload
from repro.workload.trace import RequestRecord, UpdateRecord
from repro.workload.documents import Document, DocumentCatalog


def small_config():
    return WorkloadConfig(
        documents=DocumentConfig(num_documents=40),
        requests_per_cache=30,
    )


class TestGenerateWorkload:
    def test_structure(self):
        w = generate_workload([1, 2, 3], small_config(), seed=1)
        assert w.num_requests == 90
        assert len(w.catalog) == 40
        assert w.horizon_ms > 0

    def test_requests_cover_all_caches(self):
        w = generate_workload([1, 2, 3], small_config(), seed=1)
        assert {r.cache_node for r in w.requests} == {1, 2, 3}

    def test_requests_of(self):
        w = generate_workload([1, 2], small_config(), seed=2)
        mine = w.requests_of(1)
        assert len(mine) == 30
        assert all(r.cache_node == 1 for r in mine)

    def test_updates_within_horizon(self):
        w = generate_workload([1, 2], small_config(), seed=3)
        horizon = w.requests[-1].timestamp_ms
        assert all(u.timestamp_ms <= horizon for u in w.updates)

    def test_reproducible(self):
        a = generate_workload([1, 2], small_config(), seed=4)
        b = generate_workload([1, 2], small_config(), seed=4)
        assert a.requests == b.requests
        assert a.updates == b.updates

    def test_default_config(self):
        w = generate_workload([1], seed=5)
        assert w.num_requests > 0


class TestWorkloadValidation:
    def test_request_beyond_catalog_rejected(self):
        catalog = DocumentCatalog([Document(0, 10, False)])
        with pytest.raises(WorkloadError):
            Workload(
                catalog=catalog,
                requests=(RequestRecord(0.0, 1, 5),),
                updates=(),
            )

    def test_update_beyond_catalog_rejected(self):
        catalog = DocumentCatalog([Document(0, 10, True)])
        with pytest.raises(WorkloadError):
            Workload(
                catalog=catalog,
                requests=(RequestRecord(0.0, 1, 0),),
                updates=(UpdateRecord(0.0, 7),),
            )

    def test_empty_requests_rejected(self):
        catalog = DocumentCatalog([Document(0, 10, False)])
        with pytest.raises(WorkloadError):
            Workload(catalog=catalog, requests=(), updates=())


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        w = generate_workload([1, 2], small_config(), seed=6)
        req_path = tmp_path / "requests.log"
        upd_path = tmp_path / "updates.log"
        w.save(req_path, upd_path)
        loaded = load_workload(w.catalog, req_path, upd_path)
        assert loaded.requests == w.requests
        assert loaded.updates == w.updates
