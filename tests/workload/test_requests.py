"""Tests for request-log generation."""

import numpy as np
import pytest

from repro.config import DocumentConfig, WorkloadConfig
from repro.errors import WorkloadError
from repro.workload.requests import generate_request_log


def config(**overrides):
    defaults = dict(
        documents=DocumentConfig(num_documents=100),
        requests_per_cache=200,
        zipf_alpha=0.9,
        shared_interest=0.8,
        mean_interarrival_ms=100.0,
    )
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


class TestGenerateRequestLog:
    def test_time_sorted(self, rng):
        records = generate_request_log([1, 2, 3], config(), rng)
        times = [r.timestamp_ms for r in records]
        assert times == sorted(times)

    def test_per_cache_counts(self, rng):
        records = generate_request_log([1, 2], config(), rng)
        by_cache = {1: 0, 2: 0}
        for r in records:
            by_cache[r.cache_node] += 1
        assert by_cache == {1: 200, 2: 200}

    def test_docs_in_catalog(self, rng):
        records = generate_request_log([1], config(), rng)
        assert all(0 <= r.doc_id < 100 for r in records)

    def test_duration_truncates(self, rng):
        records = generate_request_log(
            [1], config(duration_ms=500.0), rng
        )
        assert all(r.timestamp_ms <= 500.0 for r in records)
        assert len(records) < 200

    def test_interarrival_scale(self, rng):
        records = generate_request_log([1], config(), rng)
        horizon = records[-1].timestamp_ms
        # 200 requests at ~100ms spacing -> ~20s horizon.
        assert horizon == pytest.approx(20_000, rel=0.4)

    def test_shared_interest_creates_overlap(self):
        """High shared_interest -> caches' hot sets overlap heavily."""

        def top_docs(shared, seed):
            records = generate_request_log(
                [1, 2],
                config(shared_interest=shared, requests_per_cache=1500),
                np.random.default_rng(seed),
            )
            tops = {}
            for cache in (1, 2):
                docs = [r.doc_id for r in records if r.cache_node == cache]
                values, counts = np.unique(docs, return_counts=True)
                tops[cache] = set(
                    values[np.argsort(counts)[::-1]][:15].tolist()
                )
            return len(tops[1] & tops[2])

        shared_overlap = np.mean([top_docs(0.95, s) for s in range(3)])
        disjoint_overlap = np.mean([top_docs(0.0, s) for s in range(3)])
        assert shared_overlap > disjoint_overlap + 3

    def test_zipf_popularity(self, rng):
        records = generate_request_log(
            [1], config(requests_per_cache=5000, shared_interest=1.0), rng
        )
        docs = np.array([r.doc_id for r in records])
        # Top document attracts far more than the uniform share.
        top_share = max(np.bincount(docs)) / docs.size
        assert top_share > 3 / 100

    def test_empty_caches_rejected(self, rng):
        with pytest.raises(WorkloadError):
            generate_request_log([], config(), rng)

    def test_reproducible(self):
        a = generate_request_log([1, 2], config(), np.random.default_rng(5))
        b = generate_request_log([1, 2], config(), np.random.default_rng(5))
        assert a == b
