"""Tests for trace record types and log IO."""

import pytest

from repro.errors import TraceFormatError
from repro.workload import (
    RequestRecord,
    UpdateRecord,
    read_request_log,
    read_update_log,
    write_request_log,
    write_update_log,
)


class TestRecords:
    def test_request_valid(self):
        r = RequestRecord(timestamp_ms=1.5, cache_node=1, doc_id=0)
        assert r.timestamp_ms == 1.5

    def test_request_negative_time_rejected(self):
        with pytest.raises(TraceFormatError):
            RequestRecord(timestamp_ms=-1.0, cache_node=1, doc_id=0)

    def test_request_to_origin_rejected(self):
        with pytest.raises(TraceFormatError):
            RequestRecord(timestamp_ms=0.0, cache_node=0, doc_id=0)

    def test_request_negative_doc_rejected(self):
        with pytest.raises(TraceFormatError):
            RequestRecord(timestamp_ms=0.0, cache_node=1, doc_id=-1)

    def test_update_valid(self):
        u = UpdateRecord(timestamp_ms=3.0, doc_id=2)
        assert u.doc_id == 2

    def test_update_negative_rejected(self):
        with pytest.raises(TraceFormatError):
            UpdateRecord(timestamp_ms=-0.1, doc_id=0)

    def test_records_order_by_time(self):
        a = RequestRecord(1.0, 1, 0)
        b = RequestRecord(2.0, 1, 0)
        assert a < b


class TestRoundTrip:
    def test_request_log(self, tmp_path):
        records = [
            RequestRecord(0.5, 1, 10),
            RequestRecord(1.25, 2, 3),
            RequestRecord(1.25, 1, 10),
        ]
        path = tmp_path / "requests.log"
        write_request_log(records, path)
        assert read_request_log(path) == records

    def test_update_log(self, tmp_path):
        records = [UpdateRecord(0.0, 1), UpdateRecord(9.75, 2)]
        path = tmp_path / "updates.log"
        write_update_log(records, path)
        assert read_update_log(path) == records

    def test_empty_logs(self, tmp_path):
        path = tmp_path / "empty.log"
        write_request_log([], path)
        assert read_request_log(path) == []

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "requests.log"
        path.write_text(
            "# a comment\n\n1.0\t1\t5\n# another\n2.0\t2\t6\n"
        )
        records = read_request_log(path)
        assert len(records) == 2
        assert records[0].doc_id == 5


class TestFormatErrors:
    def test_wrong_field_count(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("1.0\t1\n")
        with pytest.raises(TraceFormatError, match="expected 3 fields"):
            read_request_log(path)

    def test_non_numeric_field(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("abc\t1\t2\n")
        with pytest.raises(TraceFormatError):
            read_request_log(path)

    def test_out_of_order_rejected_on_read(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("2.0\t1\t0\n1.0\t1\t0\n")
        with pytest.raises(TraceFormatError, match="out of time order"):
            read_request_log(path)

    def test_out_of_order_rejected_on_write(self, tmp_path):
        records = [RequestRecord(2.0, 1, 0), RequestRecord(1.0, 1, 0)]
        with pytest.raises(TraceFormatError):
            write_request_log(records, tmp_path / "x.log")

    def test_update_wrong_fields(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("1.0\t2\t3\n")
        with pytest.raises(TraceFormatError, match="expected 2 fields"):
            read_update_log(path)

    def test_error_names_file_and_line(self, tmp_path):
        path = tmp_path / "named.log"
        path.write_text("1.0\t1\t5\nbroken line here\n")
        with pytest.raises(TraceFormatError, match="named.log:2"):
            read_request_log(path)
