"""Tests for the document catalog."""

import numpy as np
import pytest

from repro.config import DocumentConfig
from repro.errors import WorkloadError
from repro.workload import Document, DocumentCatalog, build_catalog


class TestDocument:
    def test_valid(self):
        d = Document(doc_id=0, size_bytes=100, is_dynamic=True)
        assert d.size_bytes == 100

    def test_negative_id_rejected(self):
        with pytest.raises(WorkloadError):
            Document(doc_id=-1, size_bytes=1, is_dynamic=False)

    def test_zero_size_rejected(self):
        with pytest.raises(WorkloadError):
            Document(doc_id=0, size_bytes=0, is_dynamic=False)


class TestDocumentCatalog:
    def test_dense_ids_required(self):
        docs = [Document(1, 10, False)]
        with pytest.raises(WorkloadError):
            DocumentCatalog(docs)

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            DocumentCatalog([])

    def test_accessors(self):
        docs = [
            Document(0, 10, True),
            Document(1, 20, False),
        ]
        catalog = DocumentCatalog(docs)
        assert len(catalog) == 2
        assert catalog.size_of(0) == 10
        assert catalog.is_dynamic(0)
        assert not catalog.is_dynamic(1)
        assert catalog.total_bytes == 30
        assert catalog.mean_size_bytes == 15.0
        assert catalog.dynamic_ids() == [0]
        assert catalog[1].size_bytes == 20

    def test_out_of_range_rejected(self):
        catalog = DocumentCatalog([Document(0, 10, False)])
        with pytest.raises(WorkloadError):
            catalog[1]


class TestBuildCatalog:
    def test_size_and_flags(self):
        cfg = DocumentConfig(num_documents=100, dynamic_fraction=0.3)
        catalog = build_catalog(cfg, seed=1)
        assert len(catalog) == 100
        assert len(catalog.dynamic_ids()) == 30
        # Dynamic documents are the most popular (lowest ids).
        assert catalog.dynamic_ids() == list(range(30))

    def test_mean_size_approximate(self):
        cfg = DocumentConfig(
            num_documents=5000, mean_size_bytes=10_000.0, size_sigma=1.0
        )
        catalog = build_catalog(cfg, seed=2)
        assert catalog.mean_size_bytes == pytest.approx(10_000, rel=0.15)

    def test_zero_sigma_constant_sizes(self):
        cfg = DocumentConfig(
            num_documents=10, mean_size_bytes=500.0, size_sigma=0.0
        )
        catalog = build_catalog(cfg, seed=3)
        assert set(int(s) for s in catalog.sizes) == {500}

    def test_sizes_positive(self):
        cfg = DocumentConfig(num_documents=1000, size_sigma=2.0)
        catalog = build_catalog(cfg, seed=4)
        assert (catalog.sizes >= 1).all()

    def test_heavy_tail(self):
        cfg = DocumentConfig(num_documents=5000, size_sigma=1.2)
        catalog = build_catalog(cfg, seed=5)
        sizes = np.asarray(catalog.sizes, dtype=float)
        assert sizes.max() > 10 * np.median(sizes)

    def test_reproducible(self):
        cfg = DocumentConfig(num_documents=50)
        a = build_catalog(cfg, seed=6)
        b = build_catalog(cfg, seed=6)
        assert np.array_equal(a.sizes, b.sizes)
