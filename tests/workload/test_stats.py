"""Tests for trace statistics."""

import numpy as np
import pytest

from repro.config import DocumentConfig, WorkloadConfig
from repro.errors import WorkloadError
from repro.workload import generate_workload
from repro.workload.stats import (
    estimate_zipf_alpha,
    popularity_counts,
    summarize_trace,
    top_document_overlap,
)
from repro.workload.trace import RequestRecord


def request(t, cache, doc):
    return RequestRecord(timestamp_ms=t, cache_node=cache, doc_id=doc)


class TestPopularityCounts:
    def test_counts(self):
        requests = [request(0, 1, 5), request(1, 1, 5), request(2, 2, 7)]
        assert popularity_counts(requests) == {5: 2, 7: 1}


class TestEstimateZipfAlpha:
    def test_recovers_generator_alpha(self):
        """The estimator lands near the alpha the sampler used."""
        config = WorkloadConfig(
            documents=DocumentConfig(num_documents=300),
            requests_per_cache=4000,
            zipf_alpha=0.9,
            shared_interest=1.0,
        )
        workload = generate_workload([1], config, seed=5)
        counts = popularity_counts(workload.requests)
        alpha = estimate_zipf_alpha(counts)
        assert alpha == pytest.approx(0.9, abs=0.25)

    def test_uniform_traffic_low_alpha(self):
        requests = [
            request(float(i), 1, i % 50) for i in range(500)
        ]
        counts = popularity_counts(requests)
        assert estimate_zipf_alpha(counts) == pytest.approx(0.0, abs=0.1)

    def test_too_few_documents_rejected(self):
        with pytest.raises(WorkloadError):
            estimate_zipf_alpha({1: 5, 2: 3})


class TestTopDocumentOverlap:
    def test_identical_interests_full_overlap(self):
        requests = []
        for cache in (1, 2):
            for i, doc in enumerate((4, 4, 4, 7, 7, 9)):
                requests.append(request(float(i), cache, doc))
        assert top_document_overlap(requests, top=3) == 1.0

    def test_disjoint_interests_zero_overlap(self):
        requests = [request(0, 1, 1), request(1, 1, 2),
                    request(2, 2, 8), request(3, 2, 9)]
        assert top_document_overlap(requests, top=2) == 0.0

    def test_shared_interest_raises_overlap(self):
        def overlap_at(shared):
            config = WorkloadConfig(
                documents=DocumentConfig(num_documents=200),
                requests_per_cache=600,
                shared_interest=shared,
            )
            workload = generate_workload([1, 2, 3], config, seed=9)
            return top_document_overlap(workload.requests)

        assert overlap_at(0.9) > overlap_at(0.1)

    def test_single_cache_rejected(self):
        with pytest.raises(WorkloadError):
            top_document_overlap([request(0, 1, 1)])

    def test_bad_top_rejected(self):
        with pytest.raises(WorkloadError):
            top_document_overlap([request(0, 1, 1)], top=0)


class TestSummarizeTrace:
    def test_fields(self):
        workload = generate_workload(
            [1, 2],
            WorkloadConfig(
                documents=DocumentConfig(num_documents=100),
                requests_per_cache=500,
            ),
            seed=3,
        )
        stats = summarize_trace(workload.requests)
        assert stats.num_requests == 1000
        assert stats.num_caches == 2
        assert 0 < stats.num_distinct_docs <= 100
        assert stats.duration_ms > 0
        assert 0 < stats.top_doc_share < 1
        assert 0 <= stats.mean_pairwise_overlap <= 1
        assert "zipf-alpha" in str(stats)

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            summarize_trace([])
