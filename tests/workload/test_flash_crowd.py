"""Tests for the flash-crowd workload generator."""

import numpy as np
import pytest

from repro.config import DocumentConfig, WorkloadConfig
from repro.errors import WorkloadError
from repro.workload.flash_crowd import (
    FlashCrowdConfig,
    burst_window,
    generate_flash_crowd_workload,
)


def small_config():
    return WorkloadConfig(
        documents=DocumentConfig(num_documents=100),
        requests_per_cache=400,
    )


class TestFlashCrowdConfig:
    def test_default_validates(self):
        FlashCrowdConfig().validate()

    def test_bad_values_rejected(self):
        with pytest.raises(WorkloadError):
            FlashCrowdConfig(peak_factor=0.5).validate()
        with pytest.raises(WorkloadError):
            FlashCrowdConfig(center_fraction=1.0).validate()
        with pytest.raises(WorkloadError):
            FlashCrowdConfig(width_fraction=0.6).validate()
        with pytest.raises(WorkloadError):
            FlashCrowdConfig(burst_zipf_alpha=0).validate()


class TestGenerate:
    def test_volume_and_bounds(self):
        w = generate_flash_crowd_workload(
            [1, 2], small_config(), duration_ms=30_000.0, seed=1
        )
        assert w.num_requests == 800
        assert all(0 <= r.timestamp_ms <= 30_000.0 for r in w.requests)
        times = [r.timestamp_ms for r in w.requests]
        assert times == sorted(times)

    def test_burst_concentrates_traffic(self):
        duration = 60_000.0
        crowd = FlashCrowdConfig(peak_factor=8.0, width_fraction=0.05)
        w = generate_flash_crowd_workload(
            [1], small_config(), crowd, duration_ms=duration, seed=2
        )
        start, end = burst_window(crowd, duration)
        window_share = np.mean(
            [start <= r.timestamp_ms <= end for r in w.requests]
        )
        window_fraction = (end - start) / duration
        # The burst window carries far more than its share of time.
        assert window_share > 2.5 * window_fraction

    def test_peak_factor_one_is_uniform(self):
        duration = 60_000.0
        crowd = FlashCrowdConfig(peak_factor=1.0)
        w = generate_flash_crowd_workload(
            [1], small_config(), crowd, duration_ms=duration, seed=3
        )
        # Roughly uniform: first half holds ~half the requests.
        first_half = np.mean(
            [r.timestamp_ms < duration / 2 for r in w.requests]
        )
        assert first_half == pytest.approx(0.5, abs=0.06)

    def test_burst_narrows_popularity(self):
        duration = 60_000.0
        crowd = FlashCrowdConfig(
            peak_factor=8.0, burst_zipf_alpha=1.6, width_fraction=0.06
        )
        w = generate_flash_crowd_workload(
            [1, 2, 3],
            small_config(),
            crowd,
            duration_ms=duration,
            seed=4,
        )
        start, end = burst_window(crowd, duration)
        in_burst = [r.doc_id for r in w.requests
                    if start <= r.timestamp_ms <= end]
        outside = [r.doc_id for r in w.requests
                   if not start <= r.timestamp_ms <= end]

        def top_share(docs):
            values, counts = np.unique(docs, return_counts=True)
            return counts.max() / len(docs)

        assert top_share(in_burst) > top_share(outside)

    def test_updates_within_duration(self):
        w = generate_flash_crowd_workload(
            [1], small_config(), duration_ms=20_000.0, seed=5
        )
        assert all(u.timestamp_ms <= 20_000.0 for u in w.updates)

    def test_reproducible(self):
        a = generate_flash_crowd_workload(
            [1, 2], small_config(), duration_ms=10_000.0, seed=6
        )
        b = generate_flash_crowd_workload(
            [1, 2], small_config(), duration_ms=10_000.0, seed=6
        )
        assert a.requests == b.requests

    def test_bad_args_rejected(self):
        with pytest.raises(WorkloadError):
            generate_flash_crowd_workload([], small_config())
        with pytest.raises(WorkloadError):
            generate_flash_crowd_workload(
                [1], small_config(), duration_ms=0.0
            )

    def test_simulates_cleanly(self, small_network):
        from repro.core.groups import single_group
        from repro.simulator import simulate

        w = generate_flash_crowd_workload(
            small_network.cache_nodes,
            WorkloadConfig(
                documents=DocumentConfig(num_documents=60),
                requests_per_cache=40,
            ),
            duration_ms=20_000.0,
            seed=7,
        )
        result = simulate(
            small_network, single_group(small_network.cache_nodes), w
        )
        assert result.metrics.conservation_holds()
