"""Shared fixtures: the paper's worked example and small testbeds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    DocumentConfig,
    LandmarkConfig,
    ProbeConfig,
    WorkloadConfig,
)
from repro.probing import NoNoise, Prober
from repro.topology import build_network, network_from_matrix
from repro.workload import generate_workload

#: The RTT matrix of the paper's Figure 1 (lower half mirrored).
#: Node order: Os, Ec0, Ec1, Ec2, Ec3, Ec4, Ec5 -> node ids 0..6.
PAPER_FIG1_MATRIX = [
    [0.0, 12.0, 8.0, 12.0, 8.0, 12.0, 8.0],
    [12.0, 0.0, 4.0, 17.0, 14.4, 17.0, 14.4],
    [8.0, 4.0, 0.0, 14.4, 11.3, 14.4, 11.3],
    [12.0, 17.0, 14.4, 0.0, 4.0, 17.0, 14.4],
    [8.0, 14.4, 11.3, 4.0, 0.0, 14.4, 11.3],
    [12.0, 17.0, 14.4, 17.0, 14.4, 0.0, 4.0],
    [8.0, 14.4, 11.3, 14.4, 11.3, 4.0, 0.0],
]


@pytest.fixture
def paper_network():
    """The 6-cache example network of the paper's Figures 1 and 2."""
    return network_from_matrix(PAPER_FIG1_MATRIX)


@pytest.fixture
def exact_prober(paper_network):
    """A noise-free prober over the paper network (exact RTT readings)."""
    return Prober(paper_network, noise=NoNoise(), seed=0)


@pytest.fixture(scope="session")
def small_network():
    """A generated 30-cache network, shared across the test session."""
    return build_network(num_caches=30, seed=1234)


@pytest.fixture(scope="session")
def tiny_workload_config():
    return WorkloadConfig(
        documents=DocumentConfig(num_documents=60),
        requests_per_cache=40,
    )


@pytest.fixture(scope="session")
def small_workload(small_network, tiny_workload_config):
    """A workload matched to ``small_network`` (session-shared)."""
    return generate_workload(
        small_network.cache_nodes, tiny_workload_config, seed=99
    )


@pytest.fixture
def rng():
    return np.random.default_rng(7)
