"""Property-based tests for workload generation and trace IO."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DocumentConfig, WorkloadConfig
from repro.workload import (
    RequestRecord,
    UpdateRecord,
    ZipfSampler,
    build_catalog,
    generate_workload,
    read_request_log,
    read_update_log,
    write_request_log,
    write_update_log,
)


class TestZipfProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 500), st.floats(0.1, 2.5))
    def test_distribution_valid(self, n, alpha):
        s = ZipfSampler(n, alpha)
        probs = [s.probability_of_rank(r) for r in range(n)]
        assert sum(probs) == pytest.approx(1.0)
        assert all(p > 0 for p in probs)
        # Monotone decreasing in rank.
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(1, 100), st.floats(0.1, 2.0), st.integers(0, 2**31 - 1)
    )
    def test_samples_in_range(self, n, alpha, seed):
        s = ZipfSampler(n, alpha)
        draws = s.sample(np.random.default_rng(seed), size=50)
        assert (draws >= 0).all() and (draws < n).all()


@st.composite
def request_logs(draw):
    count = draw(st.integers(0, 40))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0, max_value=1e8, allow_nan=False),
                min_size=count, max_size=count,
            )
        )
    )
    return [
        RequestRecord(
            timestamp_ms=t,
            cache_node=draw(st.integers(1, 50)),
            doc_id=draw(st.integers(0, 1000)),
        )
        for t in times
    ]


@st.composite
def update_logs(draw):
    count = draw(st.integers(0, 40))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0, max_value=1e8, allow_nan=False),
                min_size=count, max_size=count,
            )
        )
    )
    return [
        UpdateRecord(timestamp_ms=t, doc_id=draw(st.integers(0, 1000)))
        for t in times
    ]


class TestTraceRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(request_logs())
    def test_request_log_roundtrip(self, tmp_path_factory, records):
        path = tmp_path_factory.mktemp("trace") / "req.log"
        write_request_log(records, path)
        assert read_request_log(path) == records

    @settings(max_examples=30, deadline=None)
    @given(update_logs())
    def test_update_log_roundtrip(self, tmp_path_factory, records):
        path = tmp_path_factory.mktemp("trace") / "upd.log"
        write_update_log(records, path)
        assert read_update_log(path) == records


class TestWorkloadProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(1, 5),
        st.integers(5, 40),
        st.integers(0, 2**31 - 1),
    )
    def test_generated_workload_consistent(self, caches, requests, seed):
        config = WorkloadConfig(
            documents=DocumentConfig(num_documents=30),
            requests_per_cache=requests,
        )
        cache_nodes = list(range(1, caches + 1))
        w = generate_workload(cache_nodes, config, seed=seed)
        assert w.num_requests == caches * requests
        times = [r.timestamp_ms for r in w.requests]
        assert times == sorted(times)
        assert all(0 <= r.doc_id < 30 for r in w.requests)
        assert {r.cache_node for r in w.requests} == set(cache_nodes)
        dynamic = set(w.catalog.dynamic_ids())
        assert all(u.doc_id in dynamic for u in w.updates)
