"""Property-based tests for simulator invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    CacheConfig,
    DocumentConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.core.groups import groups_from_labels, GroupingResult
from repro.simulator import EventQueue, RequestEvent, simulate
from repro.simulator.cache import EdgeCache
from repro.simulator.replacement import make_policy
from repro.topology import build_network
from repro.workload import generate_workload


class TestEventQueueProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            min_size=0, max_size=60,
        )
    )
    def test_pop_order_non_decreasing(self, times):
        q = EventQueue()
        for t in times:
            q.push(RequestEvent(t, 1, 0))
        popped = [q.pop().timestamp_ms for _ in range(len(times))]
        assert popped == sorted(popped)


class TestCacheProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(1, 50)),
            min_size=1, max_size=80,
        ),
        st.sampled_from(["utility", "lru", "lfu"]),
    )
    def test_capacity_never_exceeded(self, operations, policy_name):
        cache = EdgeCache(
            node=1, capacity_bytes=100, policy=make_policy(policy_name)
        )
        now = 0.0
        for doc, size in operations:
            now += 1.0
            if cache.holds(doc):
                cache.access(doc, now)
            else:
                cache.admit(doc, size, 1.0, now, version=0)
            assert 0 <= cache.used_bytes <= 100
            # Accounting matches the stored entries exactly.
            assert cache.used_bytes == sum(
                cache.entry(d).size_bytes for d in cache.stored_ids()
            )


@st.composite
def simulation_cases(draw):
    num_caches = draw(st.integers(2, 8))
    k = draw(st.integers(1, num_caches))
    seed = draw(st.integers(0, 10_000))
    return num_caches, k, seed


class TestSimulationProperties:
    @settings(max_examples=10, deadline=None)
    @given(simulation_cases())
    def test_conservation_and_bounds(self, case):
        num_caches, k, seed = case
        network = build_network(num_caches=num_caches, seed=seed)
        workload = generate_workload(
            network.cache_nodes,
            WorkloadConfig(
                documents=DocumentConfig(num_documents=30),
                requests_per_cache=25,
            ),
            seed=seed,
        )
        rng = np.random.default_rng(seed)
        labels = rng.integers(k, size=num_caches)
        grouping = GroupingResult(
            scheme="random",
            groups=groups_from_labels(network.cache_nodes, labels),
        )
        config = SimulationConfig(
            cache=CacheConfig(capacity_fraction=0.3),
            warmup_fraction=0.0,
        )
        result = simulate(network, grouping, workload, config=config)
        metrics = result.metrics
        # Conservation: every request is exactly one of the three types.
        assert metrics.conservation_holds()
        assert metrics.total_requests() == workload.num_requests
        # Latency bounds: at least local processing, finite.
        for cache in network.cache_nodes:
            stats = metrics.cache_stats(cache)
            if stats.latency.count:
                assert stats.latency.minimum >= config.cache.local_processing_ms
                assert np.isfinite(stats.latency.maximum)
        # Hit-rate decomposition sums to one.
        rates = metrics.hit_rates()
        assert sum(rates.values()) == pytest.approx(1.0)
