"""Stateful property test: MembershipManager under join/leave churn.

Drives random leave/join sequences against the paper network's natural
grouping and checks the partition invariants after every step: every
present cache in exactly one group, group ids consistent, churn
accounting monotone.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.groups import CacheGroup, GroupingResult
from repro.core.membership import MembershipManager
from repro.probing import NoNoise, Prober
from repro.topology.network import network_from_matrix

PAPER_MATRIX = [
    [0.0, 12.0, 8.0, 12.0, 8.0, 12.0, 8.0],
    [12.0, 0.0, 4.0, 17.0, 14.4, 17.0, 14.4],
    [8.0, 4.0, 0.0, 14.4, 11.3, 14.4, 11.3],
    [12.0, 17.0, 14.4, 0.0, 4.0, 17.0, 14.4],
    [8.0, 14.4, 11.3, 4.0, 0.0, 14.4, 11.3],
    [12.0, 17.0, 14.4, 17.0, 14.4, 0.0, 4.0],
    [8.0, 14.4, 11.3, 14.4, 11.3, 4.0, 0.0],
]

NODES = st.integers(1, 6)


class MembershipMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.network = network_from_matrix(PAPER_MATRIX)
        self.prober = Prober(self.network, noise=NoNoise(), seed=0)
        grouping = GroupingResult(
            scheme="manual",
            groups=(
                CacheGroup(0, (1, 2)),
                CacheGroup(1, (3, 4)),
                CacheGroup(2, (5, 6)),
            ),
        )
        self.manager = MembershipManager(grouping)
        self.present = {1, 2, 3, 4, 5, 6}
        self.events = 0

    @precondition(lambda self: len(self.present) > 1)
    @rule(node=NODES)
    def leave(self, node):
        if node not in self.present:
            return
        self.manager.leave(node)
        self.present.discard(node)
        self.events += 1

    @rule(node=NODES, seed=st.integers(0, 100))
    def join(self, node, seed):
        if node in self.present or not self.present:
            return
        group_id = self.manager.join(self.prober, node, seed=seed)
        assert node in self.manager.members_of(group_id)
        self.present.add(node)
        self.events += 1

    @invariant()
    def partition_exact(self):
        seen = []
        snapshot = self.manager.current_grouping()
        for group in snapshot.groups:
            seen.extend(group.members)
        assert sorted(seen) == sorted(self.present)
        assert len(seen) == len(set(seen))

    @invariant()
    def group_of_consistent(self):
        for node in self.present:
            group_id = self.manager.group_of(node)
            assert node in self.manager.members_of(group_id)

    @invariant()
    def churn_matches_event_count(self):
        expected = self.events / 6  # formed size is 6
        assert abs(self.manager.churn_fraction() - expected) < 1e-9


TestMembershipMachine = MembershipMachine.TestCase
