"""Stateful property test: the group copy-directory stays exact.

Random record/drop/fail/recover sequences against a model of who holds
what; after every step the protocol's holder sets must match the model
exactly (filtered by availability), and lookups must agree with it.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.groups import CacheGroup, GroupingResult
from repro.simulator.group_proto import GroupProtocol, LookupOutcome
from repro.topology.network import network_from_matrix

MATRIX = [
    [0.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0],
    [10.0, 0.0, 4.0, 6.0, 22.0, 24.0, 26.0],
    [12.0, 4.0, 0.0, 5.0, 23.0, 25.0, 27.0],
    [14.0, 6.0, 5.0, 0.0, 21.0, 23.0, 25.0],
    [16.0, 22.0, 23.0, 21.0, 0.0, 3.0, 5.0],
    [18.0, 24.0, 25.0, 23.0, 3.0, 0.0, 4.0],
    [20.0, 26.0, 27.0, 25.0, 5.0, 4.0, 0.0],
]

CACHES = st.integers(1, 6)
DOCS = st.integers(0, 8)


class DirectoryMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        network = network_from_matrix(MATRIX)
        grouping = GroupingResult(
            scheme="manual",
            groups=(
                CacheGroup(0, (1, 2, 3)),
                CacheGroup(1, (4, 5, 6)),
            ),
        )
        self.down = set()
        self.protocol = GroupProtocol(
            network, grouping, unavailable=self.down
        )
        self.group_of = {1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 1}
        self.model = {}  # (doc, group) -> set of holders

    @rule(cache=CACHES, doc=DOCS)
    def record(self, cache, doc):
        key = (doc, self.group_of[cache])
        holders = self.model.setdefault(key, set())
        if cache not in holders:
            self.protocol.record_copy(cache, doc)
            holders.add(cache)

    @rule(cache=CACHES, doc=DOCS)
    def drop(self, cache, doc):
        self.protocol.drop_copy(cache, doc)
        key = (doc, self.group_of[cache])
        self.model.get(key, set()).discard(cache)

    @rule(cache=CACHES)
    def toggle_availability(self, cache):
        if cache in self.down:
            self.down.discard(cache)
        else:
            self.down.add(cache)

    @invariant()
    def holders_match_model(self):
        for cache in range(1, 7):
            group = self.group_of[cache]
            for doc in range(9):
                expected = {
                    h
                    for h in self.model.get((doc, group), set())
                    if h != cache and h not in self.down
                }
                actual = set(self.protocol.holders_in_group(cache, doc))
                assert actual == expected

    @invariant()
    def lookup_agrees_with_holders(self):
        for cache in (1, 4):
            if cache in self.down:
                continue
            for doc in range(3):
                result = self.protocol.lookup(cache, doc)
                holders = self.protocol.holders_in_group(cache, doc)
                beacon = self.protocol.beacon_of(cache, doc)
                beacon_down = beacon != cache and beacon in self.down
                if beacon_down:
                    assert result.outcome is LookupOutcome.GROUP_MISS
                elif holders:
                    assert result.outcome is LookupOutcome.GROUP_HIT
                    assert result.holder in holders
                else:
                    assert result.outcome is LookupOutcome.GROUP_MISS

    @invariant()
    def all_holders_union(self):
        for doc in range(9):
            expected = set()
            for (d, _g), holders in self.model.items():
                if d == doc:
                    expected |= holders
            assert set(self.protocol.all_holders(doc)) == expected


TestDirectoryMachine = DirectoryMachine.TestCase
