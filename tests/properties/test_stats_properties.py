"""Property-based tests for streaming statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import OnlineStats, summarize

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestOnlineStatsProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_matches_numpy(self, data):
        s = OnlineStats()
        s.add_many(data)
        assert s.count == len(data)
        assert s.mean == pytest.approx(np.mean(data), rel=1e-9, abs=1e-6)
        if len(data) > 1:
            assert s.variance == pytest.approx(
                np.var(data, ddof=1), rel=1e-6, abs=1e-6
            )
        assert s.minimum == min(data)
        assert s.maximum == max(data)

    @given(
        st.lists(finite_floats, min_size=1, max_size=100),
        st.lists(finite_floats, min_size=1, max_size=100),
    )
    def test_merge_equals_concat(self, left, right):
        a, b, c = OnlineStats(), OnlineStats(), OnlineStats()
        a.add_many(left)
        b.add_many(right)
        c.add_many(left + right)
        merged = a.merge(b)
        assert merged.count == c.count
        assert merged.mean == pytest.approx(c.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(
            c.variance, rel=1e-6, abs=1e-6
        )

    @given(st.lists(finite_floats, min_size=1, max_size=100))
    def test_variance_non_negative(self, data):
        s = OnlineStats()
        s.add_many(data)
        assert s.variance >= -1e-9

    @given(st.lists(finite_floats, min_size=2, max_size=100))
    def test_summary_percentiles_ordered(self, data):
        s = summarize(data)
        assert s.minimum <= s.p50 <= s.p95 <= s.maximum
