"""Property-based tests for clustering invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.clustering import KMeans, ServerDistanceBiasedInit
from repro.config import KMeansConfig


@st.composite
def point_sets(draw):
    n = draw(st.integers(2, 40))
    d = draw(st.integers(1, 4))
    points = draw(
        arrays(
            dtype=np.float64,
            shape=(n, d),
            elements=st.floats(
                min_value=-100, max_value=100,
                allow_nan=False, allow_infinity=False,
            ),
        )
    )
    k = draw(st.integers(1, n))
    seed = draw(st.integers(0, 2**31 - 1))
    return points, k, seed


class TestKMeansProperties:
    @settings(max_examples=40, deadline=None)
    @given(point_sets())
    def test_partition_invariants(self, case):
        points, k, seed = case
        result = KMeans(k=k).fit(points, seed=seed)
        # Every point gets exactly one label in range.
        assert result.labels.shape == (points.shape[0],)
        assert result.labels.min() >= 0
        assert result.labels.max() < k
        # Sizes sum to n.
        assert result.cluster_sizes().sum() == points.shape[0]
        # SSE is non-negative and finite.
        assert np.isfinite(result.sse)
        assert result.sse >= 0

    @settings(max_examples=25, deadline=None)
    @given(point_sets())
    def test_sse_not_worse_than_init_assignment(self, case):
        """Converged SSE <= the SSE of clustering all points to one
        center at the global mean times k=1 bound (sanity ordering)."""
        points, k, seed = case
        result = KMeans(k=k).fit(points, seed=seed)
        one = KMeans(k=1).fit(points, seed=seed)
        assert result.sse <= one.sse + 1e-6

    @settings(max_examples=25, deadline=None)
    @given(point_sets())
    def test_deterministic_given_seed(self, case):
        points, k, seed = case
        a = KMeans(k=k).fit(points, seed=seed)
        b = KMeans(k=k).fit(points, seed=seed)
        assert np.array_equal(a.labels, b.labels)


class TestSDSLInitProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        arrays(
            dtype=np.float64,
            shape=st.integers(2, 30),
            elements=st.floats(
                min_value=0.0, max_value=1e4,
                allow_nan=False, allow_infinity=False,
            ),
        ),
        st.floats(min_value=0.0, max_value=4.0),
    )
    def test_probabilities_valid(self, distances, theta):
        init = ServerDistanceBiasedInit(distances, theta=theta)
        probs = init.selection_probabilities()
        assert probs.shape == distances.shape
        assert (probs >= 0).all()
        assert probs.sum() == pytest.approx(1.0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
            min_size=2, max_size=30, unique=True,
        ),
        st.floats(min_value=0.1, max_value=4.0),
    )
    def test_monotone_in_distance(self, distances, theta):
        """Strictly nearer caches never have lower selection probability."""
        distances = np.asarray(distances)
        init = ServerDistanceBiasedInit(distances, theta=theta)
        probs = init.selection_probabilities()
        order = np.argsort(distances)
        sorted_probs = probs[order]
        assert (np.diff(sorted_probs) <= 1e-12).all()

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=1e3, allow_nan=False),
            min_size=3, max_size=20,
        )
    )
    def test_theta_zero_uniform(self, distances):
        init = ServerDistanceBiasedInit(np.asarray(distances), theta=0.0)
        probs = init.selection_probabilities()
        assert probs == pytest.approx(np.full(len(distances), 1 / len(distances)))
