"""Property tests for the reporting/comparison utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.asciiplot import sketch
from repro.analysis.compare import compare_results
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.clustering.hierarchical import HierarchicalClustering

finite_positive = st.floats(
    min_value=0.01, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def experiment_results(draw):
    points = draw(st.integers(2, 8))
    num_series = draw(st.integers(1, 4))
    series = tuple(
        SeriesResult(
            name=f"s{i}_ms",
            values=tuple(
                draw(
                    st.lists(
                        finite_positive, min_size=points, max_size=points
                    )
                )
            ),
        )
        for i in range(num_series)
    )
    return ExperimentResult(
        experiment_id="prop",
        x_label="x",
        x_values=tuple(range(points)),
        series=series,
    )


class TestSketchProperties:
    @settings(max_examples=40, deadline=None)
    @given(experiment_results())
    def test_never_crashes_and_names_all_series(self, result):
        text = sketch(result)
        for series in result.series:
            assert series.name in text
        # Fixed frame: chart rows + axis + label + legend.
        assert len(text.splitlines()) == 12 + 3


class TestCompareProperties:
    @settings(max_examples=40, deadline=None)
    @given(experiment_results())
    def test_self_comparison_is_clean(self, result):
        report = compare_results(result, result)
        assert report.regressions(tolerance=0.0) == []
        for series in report.series:
            assert series.max_abs_relative_delta() == 0.0

    @settings(max_examples=40, deadline=None)
    @given(experiment_results(), st.floats(1.2, 3.0))
    def test_uniform_inflation_detected(self, result, factor):
        inflated = ExperimentResult(
            experiment_id=result.experiment_id,
            x_label=result.x_label,
            x_values=result.x_values,
            series=tuple(
                SeriesResult(
                    s.name, tuple(v * factor for v in s.values)
                )
                for s in result.series
            ),
        )
        report = compare_results(result, inflated)
        assert set(report.regressions(tolerance=factor - 1.1)) == {
            s.name for s in result.series
        }


@st.composite
def dissimilarity_matrices(draw):
    n = draw(st.integers(2, 12))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    points = rng.random((n, 2)) * 100
    d = np.linalg.norm(points[:, None] - points[None, :], axis=2)
    k = draw(st.integers(1, n))
    return d, k


class TestHierarchicalProperties:
    @settings(max_examples=40, deadline=None)
    @given(dissimilarity_matrices())
    def test_partition_invariants(self, case):
        d, k = case
        result = HierarchicalClustering(k=k).fit(d)
        assert result.labels.shape == (d.shape[0],)
        assert result.cluster_sizes().sum() == d.shape[0]
        assert 1 <= result.k <= k
        assert result.sse >= 0
