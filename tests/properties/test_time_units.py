"""Property tests for the sanctioned time-unit conversion helpers.

:func:`repro.types.ms_to_s` / :func:`repro.types.s_to_ms` are the only
blessed ms<->s conversions (the ``magic-unit-conversion`` lint rule
rejects bare ``* 1000`` / ``/ 1000`` on time values), so their algebra
must be dependable: round-trips recover the input to float precision,
ordering of durations survives conversion, and zero/scaling behave
exactly.
"""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.types import MS_PER_S, ms_to_s, s_to_ms

# Finite non-negative durations: zero plus the normal-float range,
# capped so ``* 1000`` cannot overflow and floored above the subnormal
# range, where ``/ 1000`` genuinely loses relative precision.
durations = st.one_of(
    st.just(0.0),
    st.floats(
        min_value=1e-300, max_value=1e300,
        allow_nan=False, allow_infinity=False,
    ),
)


@given(durations)
def test_ms_round_trip_is_close(value_ms):
    # Not exact in general: value / 1000 * 1000 rounds twice (e.g.
    # 0.1 * 1000 != 100.0 exactly), so assert to float precision.
    assert math.isclose(
        s_to_ms(ms_to_s(value_ms)), value_ms, rel_tol=1e-12, abs_tol=0.0
    ) or value_ms == 0.0


@given(durations)
def test_s_round_trip_is_close(value_s):
    assert math.isclose(
        ms_to_s(s_to_ms(value_s)), value_s, rel_tol=1e-12, abs_tol=0.0
    ) or value_s == 0.0


@given(durations, durations)
def test_conversion_preserves_ordering(a_ms, b_ms):
    # Multiplication/division by a positive constant is monotone, so
    # comparisons of durations are safe on either side of a conversion.
    assert (a_ms <= b_ms) == (ms_to_s(a_ms) <= ms_to_s(b_ms))
    assert (a_ms <= b_ms) == (s_to_ms(a_ms) <= s_to_ms(b_ms))


@given(durations)
def test_conversions_preserve_sign_and_zero(value):
    assert ms_to_s(0.0) == 0.0
    assert s_to_ms(0.0) == 0.0
    assert ms_to_s(value) >= 0.0
    assert s_to_ms(value) >= 0.0


@given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
                 allow_infinity=False))
def test_whole_second_values_convert_exactly(seconds):
    # Integral values small enough that ``whole * 1000`` stays within
    # the 2**53 exact-integer range are exact both ways.
    whole = float(int(seconds))
    assert s_to_ms(whole) == whole * MS_PER_S
    assert ms_to_s(whole * MS_PER_S) == whole
