"""Property-based tests for topology generation and distances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TransitStubConfig
from repro.topology.distance import compute_rtt_matrix
from repro.topology.transit_stub import generate_transit_stub
from repro.topology.waxman import waxman_graph


@st.composite
def topology_configs(draw):
    return TransitStubConfig(
        transit_domains=draw(st.integers(1, 3)),
        transit_nodes_per_domain=draw(st.integers(1, 3)),
        stub_domains_per_transit_node=draw(st.integers(1, 2)),
        stub_nodes_per_domain=draw(st.integers(1, 4)),
    )


class TestTopologyProperties:
    @settings(max_examples=25, deadline=None)
    @given(topology_configs(), st.integers(0, 2**31 - 1))
    def test_generated_topologies_connected(self, config, seed):
        graph = generate_transit_stub(config, np.random.default_rng(seed))
        assert graph.is_connected()
        assert graph.router_count == config.total_routers

    @settings(max_examples=20, deadline=None)
    @given(topology_configs(), st.integers(0, 2**31 - 1))
    def test_distance_matrix_is_metric(self, config, seed):
        rng = np.random.default_rng(seed)
        graph = generate_transit_stub(config, rng)
        routers = list(graph.routers())
        placed = routers[:: max(1, len(routers) // 8)][:8]
        matrix = compute_rtt_matrix(graph, placed)
        arr = matrix.as_array()
        # Symmetry, zero diagonal, non-negativity.
        assert np.allclose(arr, arr.T)
        assert np.allclose(np.diag(arr), 0.0)
        assert (arr >= 0).all()
        # Triangle inequality (shortest-path metric).
        n = arr.shape[0]
        for k in range(n):
            via_k = arr[:, k][:, None] + arr[k, :][None, :]
            assert (arr <= via_k + 1e-9).all()

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 30), st.integers(0, 2**31 - 1))
    def test_waxman_always_connected(self, n, seed):
        _pos, edges = waxman_graph(n, np.random.default_rng(seed))
        parent = list(range(n))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for i, j, _d in edges:
            parent[find(i)] = find(j)
        assert len({find(i) for i in range(n)}) == 1
