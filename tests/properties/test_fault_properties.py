"""Property-based tests for fault-injection invariants.

Randomized seeded fault schedules must never break the simulator's
accounting: every request is still served exactly once, no request is
ever served by a crashed or partition-severed peer, and the parallel
experiment runtime stays bit-identical to the serial one with faults
active.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    CacheConfig,
    DocumentConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.core.groups import GroupingResult, groups_from_labels
from repro.faults import random_fault_schedule
from repro.runtime.scheduler import TaskScheduler, use_scheduler
from repro.simulator import SimulationEngine, simulate
from repro.simulator.group_proto import LookupOutcome
from repro.topology import build_network
from repro.utils.rng import RngFactory
from repro.workload import generate_workload


@st.composite
def faulted_cases(draw):
    num_caches = draw(st.integers(4, 9))
    k = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 10_000))
    crash_fraction = draw(st.sampled_from([0.0, 0.25, 0.5]))
    partition_count = draw(st.integers(0, 2))
    return num_caches, k, seed, crash_fraction, partition_count


def _build_case(num_caches, k, seed, crash_fraction, partition_count):
    network = build_network(num_caches=num_caches, seed=seed)
    workload = generate_workload(
        network.cache_nodes,
        WorkloadConfig(
            documents=DocumentConfig(num_documents=25),
            requests_per_cache=20,
        ),
        seed=seed,
    )
    rng = np.random.default_rng(seed)
    labels = rng.integers(k, size=num_caches)
    grouping = GroupingResult(
        scheme="random",
        groups=groups_from_labels(network.cache_nodes, labels),
    )
    duration = max(r.timestamp_ms for r in workload.requests) + 1.0
    schedule = random_fault_schedule(
        list(network.cache_nodes),
        duration,
        RngFactory(seed + 1),
        crash_fraction=crash_fraction,
        partition_count=partition_count,
        partition_size=max(1, num_caches // 3),
    )
    config = SimulationConfig(
        cache=CacheConfig(capacity_fraction=0.3), warmup_fraction=0.0
    )
    return network, grouping, workload, config, schedule


class TestConservationUnderFaults:
    @settings(max_examples=15, deadline=None)
    @given(faulted_cases())
    def test_every_request_served_exactly_once(self, case):
        network, grouping, workload, config, schedule = _build_case(*case)
        result = simulate(
            network, grouping, workload, config, faults=schedule
        )
        metrics = result.metrics
        assert metrics.conservation_holds()
        assert metrics.total_requests() == workload.num_requests
        rates = metrics.hit_rates()
        assert sum(rates.values()) == pytest.approx(1.0)

    @settings(max_examples=10, deadline=None)
    @given(faulted_cases())
    def test_faulted_run_is_deterministic(self, case):
        runs = []
        for _ in range(2):
            network, grouping, workload, config, schedule = _build_case(*case)
            runs.append(
                simulate(network, grouping, workload, config, faults=schedule)
            )
        a, b = runs
        assert a.metrics.hit_rates() == b.metrics.hit_rates()
        assert a.metrics.average_latency_ms() == b.metrics.average_latency_ms()


class TestNoDeadServers:
    @settings(max_examples=15, deadline=None)
    @given(faulted_cases())
    def test_no_group_hit_from_failed_or_partitioned_cache(self, case):
        """A cooperative hit may only come from a live, reachable peer.

        The protocol's ``lookup`` is wrapped in place so every GROUP_HIT
        is checked against the liveness and partition state *at the
        moment the lookup resolved*, not after the run.
        """
        network, grouping, workload, config, schedule = _build_case(*case)
        engine = SimulationEngine(
            network, grouping, workload, config, faults=schedule
        )
        protocol = engine.protocol
        original = protocol.lookup
        violations = []

        def spying_lookup(cache, doc_id):
            result = original(cache, doc_id)
            if result.outcome is LookupOutcome.GROUP_HIT:
                holder = result.holder
                if holder in protocol._unavailable:
                    violations.append((cache, doc_id, holder, "down"))
                if not protocol.reachable(cache, holder):
                    violations.append((cache, doc_id, holder, "partitioned"))
            return result

        protocol.lookup = spying_lookup
        engine.run()
        assert violations == []


class TestParallelByteIdentity:
    def test_figr_jobs4_matches_serial(self):
        """The fault sweep is bit-identical under the process pool."""
        from repro.experiments.figr_fault_sweep import run_figr

        kwargs = dict(
            loss_rates=(0.0, 0.3),
            fail_landmark_counts=(0, 1),
            num_caches=20,
            num_landmarks=5,
            seed=11,
            repetitions=1,
            requests_per_cache=25,
            num_documents=50,
        )
        serial_scheduler = TaskScheduler(jobs=1)
        with serial_scheduler, use_scheduler(serial_scheduler):
            serial = run_figr(**kwargs)
        pool = TaskScheduler(jobs=4)
        with pool, use_scheduler(pool):
            parallel = run_figr(**kwargs)
        assert serial == parallel
