"""Stateful property test: the EdgeCache under arbitrary operation mixes.

A hypothesis rule-based state machine drives admit/access/invalidate/
expire sequences against a model (a plain dict) and checks after every
step that the cache's accounting, capacity bound, and directory
callback stream stay consistent.
"""

import hypothesis.strategies as st
import pytest
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.simulator.cache import EdgeCache
from repro.simulator.replacement import make_policy

CAPACITY = 120
DOC_IDS = st.integers(0, 12)
SIZES = st.integers(1, 60)


class CacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.evictions = []
        self.cache = EdgeCache(
            node=1,
            capacity_bytes=CAPACITY,
            policy=make_policy("utility"),
            on_evict=lambda node, doc: self.evictions.append(doc),
        )
        self.model = {}  # doc -> size
        self.clock = 0.0

    def _tick(self) -> float:
        self.clock += 1.0
        return self.clock

    @rule(doc=DOC_IDS, size=SIZES)
    def admit(self, doc, size):
        now = self._tick()
        before = set(self.cache.stored_ids())
        admitted = self.cache.admit(doc, size, 1.0, now, version=0)
        if doc in before:
            # Refresh in place: size unchanged, still held.
            assert admitted
            assert self.cache.holds(doc)
        elif size > CAPACITY:
            assert not admitted
            assert not self.cache.holds(doc)
        else:
            assert admitted
            assert self.cache.holds(doc)
            self.model[doc] = size
        # Sync the model with whatever eviction happened.
        held = set(self.cache.stored_ids())
        self.model = {
            d: s for d, s in self.model.items() if d in held
        }

    @rule(doc=DOC_IDS)
    def access(self, doc):
        now = self._tick()
        if self.cache.holds(doc):
            entry = self.cache.access(doc, now)
            assert entry.doc_id == doc

    @rule(doc=DOC_IDS)
    def invalidate(self, doc):
        held_before = self.cache.holds(doc)
        dropped = self.cache.invalidate(doc)
        assert dropped == held_before
        assert not self.cache.holds(doc)
        self.model.pop(doc, None)

    @rule(doc=DOC_IDS)
    def expire(self, doc):
        held_before = self.cache.holds(doc)
        dropped = self.cache.expire(doc)
        assert dropped == held_before
        self.model.pop(doc, None)

    @invariant()
    def capacity_respected(self):
        assert 0 <= self.cache.used_bytes <= CAPACITY

    @invariant()
    def accounting_matches_contents(self):
        total = sum(
            self.cache.entry(d).size_bytes for d in self.cache.stored_ids()
        )
        assert total == self.cache.used_bytes

    @invariant()
    def model_agrees(self):
        assert set(self.cache.stored_ids()) == set(self.model)

    @invariant()
    def evictions_are_not_held(self):
        # Whatever the callback reported evicted most recently must not
        # be held unless it was re-admitted later; at minimum, the
        # callback stream only names docs that existed.
        for doc in self.evictions:
            assert 0 <= doc <= 12


TestCacheMachine = CacheMachine.TestCase
