"""Tests for the k-medoids extension baseline."""

import numpy as np
import pytest

from repro.clustering import KMedoids
from repro.errors import ClusteringError


def block_dissimilarity():
    """Two tight blocks of 3 points each, far apart."""
    n = 6
    d = np.full((n, n), 100.0)
    np.fill_diagonal(d, 0.0)
    for block in (range(3), range(3, 6)):
        for i in block:
            for j in block:
                if i != j:
                    d[i, j] = 1.0
    return d


class TestKMedoids:
    def test_recovers_blocks(self):
        d = block_dissimilarity()
        result = KMedoids(k=2).fit(d, seed=0)
        assert sorted(result.cluster_sizes().tolist()) == [3, 3]
        assert len(set(result.labels[:3].tolist())) == 1
        assert len(set(result.labels[3:].tolist())) == 1

    def test_works_from_any_seed(self):
        d = block_dissimilarity()
        for seed in range(10):
            result = KMedoids(k=2).fit(d, seed=seed)
            assert sorted(result.cluster_sizes().tolist()) == [3, 3]

    def test_cost_recorded(self):
        d = block_dissimilarity()
        result = KMedoids(k=2).fit(d, seed=0)
        # Perfect clustering: each non-medoid point at distance 1.
        assert result.sse == pytest.approx(4.0)

    def test_k_one(self):
        d = block_dissimilarity()
        result = KMedoids(k=1).fit(d, seed=0)
        assert result.cluster_sizes().tolist() == [6]

    def test_non_square_rejected(self):
        with pytest.raises(ClusteringError):
            KMedoids(k=1).fit(np.zeros((2, 3)), seed=0)

    def test_negative_dissimilarity_rejected(self):
        d = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ClusteringError):
            KMedoids(k=1).fit(d, seed=0)

    def test_k_exceeds_n_rejected(self):
        with pytest.raises(ClusteringError):
            KMedoids(k=5).fit(np.zeros((2, 2)), seed=0)

    def test_bad_k_rejected(self):
        with pytest.raises(ClusteringError):
            KMedoids(k=0)
