"""Tests for the hierarchical clustering extension."""

import numpy as np
import pytest

from repro.clustering.hierarchical import HierarchicalClustering
from repro.errors import ClusteringError


def two_blocks():
    n = 6
    d = np.full((n, n), 50.0)
    np.fill_diagonal(d, 0.0)
    for block in (range(3), range(3, 6)):
        for i in block:
            for j in block:
                if i != j:
                    d[i, j] = 1.0
    return d


class TestHierarchicalClustering:
    def test_recovers_blocks(self):
        result = HierarchicalClustering(k=2).fit(two_blocks())
        assert result.k == 2
        assert len(set(result.labels[:3].tolist())) == 1
        assert len(set(result.labels[3:].tolist())) == 1
        assert result.labels[0] != result.labels[3]

    @pytest.mark.parametrize("linkage", ["complete", "average", "single"])
    def test_all_linkages(self, linkage):
        result = HierarchicalClustering(k=2, linkage=linkage).fit(
            two_blocks()
        )
        assert result.k == 2

    def test_deterministic(self):
        a = HierarchicalClustering(k=3).fit(two_blocks())
        b = HierarchicalClustering(k=3).fit(two_blocks())
        assert np.array_equal(a.labels, b.labels)

    def test_k_equals_n(self):
        d = two_blocks()
        result = HierarchicalClustering(k=6).fit(d)
        assert sorted(result.cluster_sizes().tolist()) == [1] * 6

    def test_single_point(self):
        result = HierarchicalClustering(k=1).fit(np.zeros((1, 1)))
        assert result.labels.tolist() == [0]

    def test_diameter_cost_recorded(self):
        result = HierarchicalClustering(k=2).fit(two_blocks())
        # Two clusters of diameter 1 each.
        assert result.sse == pytest.approx(2.0)

    def test_unknown_linkage_rejected(self):
        with pytest.raises(ClusteringError):
            HierarchicalClustering(k=2, linkage="ward-ish")

    def test_asymmetric_rejected(self):
        d = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ClusteringError):
            HierarchicalClustering(k=1).fit(d)

    def test_negative_rejected(self):
        d = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ClusteringError):
            HierarchicalClustering(k=1).fit(d)

    def test_k_exceeds_n_rejected(self):
        with pytest.raises(ClusteringError):
            HierarchicalClustering(k=5).fit(np.zeros((2, 2)))

    def test_on_real_network_rtts(self, small_network):
        """Complete linkage on true RTTs yields tight groups."""
        from repro.clustering.quality import mean_intra_cluster_distance

        d = small_network.distances.submatrix(small_network.cache_nodes)
        result = HierarchicalClustering(k=5).fit(d)
        tight = mean_intra_cluster_distance(d, result)
        # Against a random partition of the same sizes.
        rng = np.random.default_rng(0)
        random_costs = []
        for _ in range(10):
            labels = rng.permutation(result.labels)
            from repro.clustering.assignments import Clustering

            shuffled = Clustering(
                labels=labels, k=result.k, centers=result.centers
            )
            random_costs.append(mean_intra_cluster_distance(d, shuffled))
        assert tight < np.mean(random_costs)
