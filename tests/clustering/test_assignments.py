"""Tests for the Clustering result type."""

import numpy as np
import pytest

from repro.clustering import Clustering
from repro.errors import ClusteringError


def make(labels, k):
    labels = np.asarray(labels)
    centers = np.zeros((k, 2))
    return Clustering(labels=labels, k=k, centers=centers)


class TestClustering:
    def test_members(self):
        c = make([0, 1, 0, 2], k=3)
        assert c.members(0).tolist() == [0, 2]
        assert c.members(1).tolist() == [1]
        assert c.num_points == 4

    def test_cluster_sizes(self):
        c = make([0, 1, 0], k=3)
        assert c.cluster_sizes().tolist() == [2, 1, 0]

    def test_non_empty_clusters(self):
        c = make([0, 2, 0], k=3)
        assert c.non_empty_clusters() == [0, 2]

    def test_as_groups_drops_empty(self):
        c = make([0, 2, 0], k=3)
        assert c.as_groups() == [(0, 2), (1,)]

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ClusteringError):
            make([0, 3], k=3)

    def test_negative_label_rejected(self):
        with pytest.raises(ClusteringError):
            make([-1, 0], k=2)

    def test_bad_k_rejected(self):
        with pytest.raises(ClusteringError):
            make([0], k=0)

    def test_2d_labels_rejected(self):
        with pytest.raises(ClusteringError):
            Clustering(
                labels=np.zeros((2, 2), dtype=int), k=1, centers=np.zeros((1, 1))
            )

    def test_member_query_out_of_range(self):
        c = make([0], k=1)
        with pytest.raises(ClusteringError):
            c.members(5)

    def test_labels_read_only(self):
        c = make([0, 1], k=2)
        with pytest.raises(ValueError):
            c.labels[0] = 1
