"""Tests for the K-means implementation (SL step 3)."""

import numpy as np
import pytest

from repro.clustering import KMeans, UniformRandomInit
from repro.config import KMeansConfig
from repro.errors import ClusteringError


def blobs(rng, centers, per_blob=20, spread=0.3):
    points = []
    for cx, cy in centers:
        points.append(
            rng.normal((cx, cy), spread, size=(per_blob, 2))
        )
    return np.vstack(points)


class TestFit:
    def test_separable_blobs_recovered(self, rng):
        points = blobs(rng, [(0, 0), (10, 10), (-10, 10)])
        result = KMeans(k=3, config=KMeansConfig(restarts=5)).fit(
            points, seed=0
        )
        sizes = sorted(result.cluster_sizes().tolist())
        assert sizes == [20, 20, 20]
        # All points of one blob share a label.
        for blob in range(3):
            labels = result.labels[blob * 20:(blob + 1) * 20]
            assert len(set(labels.tolist())) == 1

    def test_partition_covers_all_points(self, rng):
        points = rng.random((30, 4))
        result = KMeans(k=5).fit(points, seed=1)
        assert result.labels.size == 30
        assert result.cluster_sizes().sum() == 30

    def test_k_equals_n(self, rng):
        points = rng.random((6, 2)) * 100
        result = KMeans(k=6).fit(points, seed=2)
        assert sorted(result.cluster_sizes().tolist()) == [1] * 6

    def test_k_one(self, rng):
        points = rng.random((10, 2))
        result = KMeans(k=1).fit(points, seed=3)
        assert result.cluster_sizes().tolist() == [10]
        assert result.centers[0] == pytest.approx(points.mean(axis=0))

    def test_sse_decreases_with_k(self, rng):
        points = rng.random((50, 3))
        config = KMeansConfig(restarts=3)
        sse = [
            KMeans(k=k, config=config).fit(points, seed=4).sse
            for k in (1, 5, 25)
        ]
        assert sse[0] > sse[1] > sse[2]

    def test_restarts_never_worse(self, rng):
        points = blobs(rng, [(0, 0), (5, 5), (10, 0)], per_blob=15)
        single = KMeans(k=3, config=KMeansConfig(restarts=1)).fit(
            points, seed=5
        )
        multi = KMeans(k=3, config=KMeansConfig(restarts=8)).fit(
            points, seed=5
        )
        assert multi.sse <= single.sse + 1e-9

    def test_reproducible(self, rng):
        points = rng.random((40, 2))
        a = KMeans(k=4).fit(points, seed=6)
        b = KMeans(k=4).fit(points, seed=6)
        assert np.array_equal(a.labels, b.labels)

    def test_identical_points(self):
        points = np.ones((8, 2))
        result = KMeans(k=3).fit(points, seed=7)
        assert result.cluster_sizes().sum() == 8
        assert result.sse == pytest.approx(0.0)

    def test_no_empty_clusters_after_fix(self, rng):
        """The empty-cluster re-seeding keeps K live groups."""
        points = rng.random((30, 2))
        for seed in range(10):
            result = KMeans(k=10).fit(points, seed=seed)
            assert (result.cluster_sizes() > 0).all()

    def test_k_larger_than_n_rejected(self, rng):
        with pytest.raises(ClusteringError):
            KMeans(k=10).fit(rng.random((5, 2)), seed=0)

    def test_empty_points_rejected(self):
        with pytest.raises(ClusteringError):
            KMeans(k=1).fit(np.zeros((0, 2)), seed=0)

    def test_1d_points_rejected(self):
        with pytest.raises(ClusteringError):
            KMeans(k=1).fit(np.zeros(5), seed=0)

    def test_bad_k_rejected(self):
        with pytest.raises(ClusteringError):
            KMeans(k=0)

    def test_iterations_recorded(self, rng):
        points = rng.random((20, 2))
        result = KMeans(k=3).fit(points, seed=8)
        assert 1 <= result.iterations <= KMeansConfig().max_iterations

    def test_max_iterations_respected(self, rng):
        points = rng.random((50, 2))
        result = KMeans(
            k=5, config=KMeansConfig(max_iterations=2)
        ).fit(points, seed=9)
        assert result.iterations <= 2


class TestPaperFigure2:
    def test_natural_pairs_found(self, exact_prober):
        """K-means on Figure 2's feature vectors finds the paper's pairs."""
        from repro.landmarks import LandmarkSet, build_feature_vectors

        landmarks = LandmarkSet(nodes=(0, 1, 5))
        fv = build_feature_vectors(exact_prober, landmarks)
        result = KMeans(k=3, config=KMeansConfig(restarts=10)).fit(
            fv.matrix, seed=1
        )
        groups = sorted(
            tuple(sorted(fv.nodes[i] for i in members))
            for members in result.as_groups()
        )
        # {Ec0, Ec1}, {Ec2, Ec3}, {Ec4, Ec5} in node ids.
        assert groups == [(1, 2), (3, 4), (5, 6)]
