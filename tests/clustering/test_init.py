"""Tests for K-means center initializers, especially SDSL's biased init."""

import numpy as np
import pytest
from scipy import stats

from repro.clustering import (
    KMeansPlusPlusInit,
    ServerDistanceBiasedInit,
    UniformRandomInit,
)
from repro.errors import ClusteringError


@pytest.fixture
def points():
    return np.arange(20, dtype=float).reshape(10, 2)


class TestUniformRandomInit:
    def test_distinct_indices(self, points, rng):
        idx = UniformRandomInit().choose(points, 4, rng)
        assert len(set(idx.tolist())) == 4

    def test_k_bounds(self, points, rng):
        with pytest.raises(ClusteringError):
            UniformRandomInit().choose(points, 0, rng)
        with pytest.raises(ClusteringError):
            UniformRandomInit().choose(points, 11, rng)

    def test_all_points_when_k_equals_n(self, points, rng):
        idx = UniformRandomInit().choose(points, 10, rng)
        assert sorted(idx.tolist()) == list(range(10))

    def test_uniform_frequencies(self, points):
        rng = np.random.default_rng(0)
        counts = np.zeros(10)
        trials = 4000
        for _ in range(trials):
            idx = UniformRandomInit().choose(points, 1, rng)
            counts[idx[0]] += 1
        # Chi-square goodness of fit against uniform.
        _stat, p = stats.chisquare(counts)
        assert p > 0.001


class TestServerDistanceBiasedInit:
    def test_probabilities_proportional_to_inverse_distance(self):
        distances = np.array([1.0, 2.0, 4.0])
        init = ServerDistanceBiasedInit(distances, theta=1.0)
        probs = init.selection_probabilities()
        # weights 1, 0.5, 0.25 -> normalised 4/7, 2/7, 1/7
        assert probs == pytest.approx([4 / 7, 2 / 7, 1 / 7])

    def test_theta_zero_is_uniform(self):
        distances = np.array([1.0, 5.0, 100.0])
        init = ServerDistanceBiasedInit(distances, theta=0.0)
        assert init.selection_probabilities() == pytest.approx([1 / 3] * 3)

    def test_theta_two_squares_weights(self):
        distances = np.array([1.0, 2.0])
        init = ServerDistanceBiasedInit(distances, theta=2.0)
        probs = init.selection_probabilities()
        assert probs == pytest.approx([4 / 5, 1 / 5])

    def test_zero_distance_clamped(self):
        """A co-located cache ties with the nearest positive distance."""
        distances = np.array([0.0, 2.0, 4.0])
        init = ServerDistanceBiasedInit(distances, theta=1.0)
        probs = init.selection_probabilities()
        assert np.isfinite(probs).all()
        assert probs[0] == pytest.approx(probs[1])
        assert probs[0] > probs[2]

    def test_empirical_frequencies_match(self):
        """Chi-square: the sampler obeys the declared probabilities."""
        distances = np.array([1.0, 2.0, 4.0, 8.0])
        points = np.zeros((4, 2))
        init = ServerDistanceBiasedInit(distances, theta=1.0)
        expected = init.selection_probabilities()
        rng = np.random.default_rng(1)
        counts = np.zeros(4)
        trials = 6000
        for _ in range(trials):
            counts[init.choose(points, 1, rng)[0]] += 1
        _stat, p = stats.chisquare(counts, expected * trials)
        assert p > 0.001

    def test_nearer_points_picked_more_often_with_k(self):
        distances = np.linspace(1.0, 100.0, 30)
        points = np.zeros((30, 2))
        init = ServerDistanceBiasedInit(distances, theta=2.0)
        rng = np.random.default_rng(2)
        near_count = 0
        trials = 400
        for _ in range(trials):
            idx = init.choose(points, 5, rng)
            near_count += int((idx < 10).sum())
        # Near third should dominate the 5 picks.
        assert near_count / (trials * 5) > 0.6

    def test_size_mismatch_rejected(self):
        init = ServerDistanceBiasedInit(np.array([1.0, 2.0]), theta=1.0)
        with pytest.raises(ClusteringError):
            init.choose(np.zeros((3, 2)), 1, np.random.default_rng(0))

    def test_negative_distance_rejected(self):
        with pytest.raises(ClusteringError):
            ServerDistanceBiasedInit(np.array([-1.0]), theta=1.0)

    def test_negative_theta_rejected(self):
        with pytest.raises(ClusteringError):
            ServerDistanceBiasedInit(np.array([1.0]), theta=-0.5)

    def test_distinct_indices(self):
        distances = np.ones(10)
        init = ServerDistanceBiasedInit(distances, theta=1.0)
        idx = init.choose(np.zeros((10, 2)), 6, np.random.default_rng(0))
        assert len(set(idx.tolist())) == 6


class TestKMeansPlusPlusInit:
    def test_distinct_indices(self, rng):
        points = np.random.default_rng(0).random((20, 3))
        idx = KMeansPlusPlusInit().choose(points, 5, rng)
        assert len(set(idx.tolist())) == 5

    def test_spreads_over_clusters(self):
        """With two far blobs, k=2 seeds land one in each blob."""
        blob_a = np.zeros((10, 2))
        blob_b = np.full((10, 2), 100.0)
        points = np.vstack([blob_a, blob_b])
        hits = 0
        for seed in range(50):
            idx = KMeansPlusPlusInit().choose(
                points, 2, np.random.default_rng(seed)
            )
            sides = {int(i) // 10 for i in idx}
            hits += len(sides) == 2
        assert hits >= 48

    def test_identical_points_handled(self, rng):
        points = np.zeros((5, 2))
        idx = KMeansPlusPlusInit().choose(points, 3, rng)
        assert len(set(idx.tolist())) == 3
