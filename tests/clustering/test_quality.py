"""Tests for cluster-quality measures."""

import numpy as np
import pytest

from repro.clustering import (
    Clustering,
    mean_intra_cluster_distance,
    silhouette_score,
    within_cluster_sse,
)
from repro.errors import ClusteringError


def clustering_of(labels, k):
    labels = np.asarray(labels)
    return Clustering(labels=labels, k=k, centers=np.zeros((k, 1)))


class TestWithinClusterSSE:
    def test_zero_for_coincident_points(self):
        points = np.ones((4, 2))
        c = clustering_of([0, 0, 1, 1], k=2)
        assert within_cluster_sse(points, c) == 0.0

    def test_hand_computed(self):
        points = np.array([[0.0], [2.0], [10.0]])
        c = clustering_of([0, 0, 1], k=2)
        # Cluster 0 mean = 1.0 -> SSE = 1 + 1 = 2; cluster 1 singleton.
        assert within_cluster_sse(points, c) == pytest.approx(2.0)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ClusteringError):
            within_cluster_sse(np.zeros((3, 1)), clustering_of([0, 0], k=1))


class TestMeanIntraClusterDistance:
    def test_paper_definition(self):
        """Average within each group over pairs, then across groups."""
        d = np.array(
            [
                [0.0, 2.0, 8.0, 8.0],
                [2.0, 0.0, 8.0, 8.0],
                [8.0, 8.0, 0.0, 4.0],
                [8.0, 8.0, 4.0, 0.0],
            ]
        )
        c = clustering_of([0, 0, 1, 1], k=2)
        # Group 0 GICost = 2, group 1 GICost = 4 -> mean 3.
        assert mean_intra_cluster_distance(d, c) == pytest.approx(3.0)

    def test_singletons_count_as_zero(self):
        d = np.array([[0.0, 6.0], [6.0, 0.0]])
        c = clustering_of([0, 1], k=2)
        assert mean_intra_cluster_distance(d, c) == 0.0

    def test_three_member_group(self):
        d = np.array(
            [[0.0, 1.0, 2.0], [1.0, 0.0, 3.0], [2.0, 3.0, 0.0]]
        )
        c = clustering_of([0, 0, 0], k=1)
        assert mean_intra_cluster_distance(d, c) == pytest.approx(2.0)


class TestSilhouette:
    def test_perfect_separation_near_one(self):
        d = np.full((4, 4), 100.0)
        np.fill_diagonal(d, 0.0)
        d[0, 1] = d[1, 0] = 1.0
        d[2, 3] = d[3, 2] = 1.0
        c = clustering_of([0, 0, 1, 1], k=2)
        assert silhouette_score(d, c) > 0.9

    def test_bad_clustering_negative(self):
        d = np.full((4, 4), 100.0)
        np.fill_diagonal(d, 0.0)
        d[0, 1] = d[1, 0] = 1.0
        d[2, 3] = d[3, 2] = 1.0
        # Split the natural pairs across clusters.
        c = clustering_of([0, 1, 0, 1], k=2)
        assert silhouette_score(d, c) < 0.0

    def test_single_cluster_rejected(self):
        d = np.zeros((3, 3))
        with pytest.raises(ClusteringError):
            silhouette_score(d, clustering_of([0, 0, 0], k=1))

    def test_singletons_score_zero(self):
        d = np.array(
            [[0.0, 5.0, 5.0], [5.0, 0.0, 1.0], [5.0, 1.0, 0.0]]
        )
        c = clustering_of([0, 1, 1], k=2)
        score = silhouette_score(d, c)
        assert np.isfinite(score)
