"""Tests for repro.probing.prober."""

import numpy as np
import pytest

from repro.config import ProbeConfig
from repro.errors import ProbingError
from repro.probing import NoNoise, Prober


class TestMeasure:
    def test_exact_with_no_noise(self, paper_network):
        prober = Prober(paper_network, noise=NoNoise(), seed=0)
        assert prober.measure(0, 1) == 12.0
        assert prober.measure(1, 2) == 4.0

    def test_self_probe_zero(self, paper_network):
        prober = Prober(paper_network, noise=NoNoise(), seed=0)
        assert prober.measure(3, 3) == 0.0

    def test_noisy_probe_near_truth(self, paper_network):
        prober = Prober(
            paper_network,
            config=ProbeConfig(probe_count=50, jitter_std=0.05),
            seed=1,
        )
        measured = prober.measure(0, 1)
        assert measured == pytest.approx(12.0, rel=0.05)

    def test_averaging_reduces_error(self, paper_network):
        def spread(probe_count, seed):
            prober = Prober(
                paper_network,
                config=ProbeConfig(probe_count=probe_count, jitter_std=0.2),
                seed=seed,
            )
            return np.std([prober.measure(0, 1) for _ in range(200)])

        assert spread(20, 3) < spread(1, 3)

    def test_unknown_node_rejected(self, paper_network):
        prober = Prober(paper_network, seed=0)
        with pytest.raises(ProbingError):
            prober.measure(0, 99)

    def test_reproducible(self, paper_network):
        a = Prober(paper_network, seed=5).measure(0, 1)
        b = Prober(paper_network, seed=5).measure(0, 1)
        assert a == b


class TestMeasureMany:
    def test_order_preserved(self, exact_prober):
        out = exact_prober.measure_many(0, [3, 1, 2])
        assert out.tolist() == [12.0, 12.0, 8.0]

    def test_empty_targets(self, exact_prober):
        assert exact_prober.measure_many(0, []).size == 0


class TestMeasureMatrix:
    def test_matches_ground_truth_no_noise(self, paper_network, exact_prober):
        nodes = [0, 1, 2, 3]
        matrix = exact_prober.measure_matrix(nodes)
        expected = paper_network.distances.submatrix(nodes)
        assert np.allclose(matrix, expected)

    def test_symmetric(self, paper_network):
        prober = Prober(paper_network, seed=2)
        matrix = prober.measure_matrix([0, 1, 2])
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)


class TestProbeStats:
    def test_counts_probes(self, paper_network):
        prober = Prober(
            paper_network, config=ProbeConfig(probe_count=5), seed=0
        )
        prober.measure(0, 1)
        assert prober.stats.probes_sent == 5
        assert prober.stats.pairs_measured == 1

    def test_pairs_deduplicated(self, paper_network):
        prober = Prober(paper_network, seed=0)
        prober.measure(0, 1)
        prober.measure(1, 0)
        assert prober.stats.pairs_measured == 1

    def test_matrix_probe_budget(self, paper_network):
        """An n-node matrix measures exactly n(n-1)/2 pairs."""
        prober = Prober(
            paper_network, config=ProbeConfig(probe_count=3), seed=0
        )
        prober.measure_matrix([0, 1, 2, 3])
        assert prober.stats.pairs_measured == 6
        assert prober.stats.probes_sent == 18

    def test_reset(self, paper_network):
        prober = Prober(paper_network, seed=0)
        prober.measure(0, 1)
        prober.stats.reset()
        assert prober.stats.probes_sent == 0
        assert prober.stats.pairs_measured == 0
        prober.measure(0, 1)
        assert prober.stats.pairs_measured == 1
