"""Tests for repro.probing.prober."""

import numpy as np
import pytest

from repro.config import ProbeConfig
from repro.errors import ProbingError
from repro.probing import NoNoise, Prober


class TestMeasure:
    def test_exact_with_no_noise(self, paper_network):
        prober = Prober(paper_network, noise=NoNoise(), seed=0)
        assert prober.measure(0, 1) == 12.0
        assert prober.measure(1, 2) == 4.0

    def test_self_probe_zero(self, paper_network):
        prober = Prober(paper_network, noise=NoNoise(), seed=0)
        assert prober.measure(3, 3) == 0.0

    def test_noisy_probe_near_truth(self, paper_network):
        prober = Prober(
            paper_network,
            config=ProbeConfig(probe_count=50, jitter_std=0.05),
            seed=1,
        )
        measured = prober.measure(0, 1)
        assert measured == pytest.approx(12.0, rel=0.05)

    def test_averaging_reduces_error(self, paper_network):
        def spread(probe_count, seed):
            prober = Prober(
                paper_network,
                config=ProbeConfig(probe_count=probe_count, jitter_std=0.2),
                seed=seed,
            )
            return np.std([prober.measure(0, 1) for _ in range(200)])

        assert spread(20, 3) < spread(1, 3)

    def test_unknown_node_rejected(self, paper_network):
        prober = Prober(paper_network, seed=0)
        with pytest.raises(ProbingError):
            prober.measure(0, 99)

    def test_reproducible(self, paper_network):
        a = Prober(paper_network, seed=5).measure(0, 1)
        b = Prober(paper_network, seed=5).measure(0, 1)
        assert a == b


class TestMeasureMany:
    def test_order_preserved(self, exact_prober):
        out = exact_prober.measure_many(0, [3, 1, 2])
        assert out.tolist() == [12.0, 12.0, 8.0]

    def test_empty_targets(self, exact_prober):
        assert exact_prober.measure_many(0, []).size == 0


class TestMeasureMatrix:
    def test_matches_ground_truth_no_noise(self, paper_network, exact_prober):
        nodes = [0, 1, 2, 3]
        matrix = exact_prober.measure_matrix(nodes)
        expected = paper_network.distances.submatrix(nodes)
        assert np.allclose(matrix, expected)

    def test_symmetric(self, paper_network):
        prober = Prober(paper_network, seed=2)
        matrix = prober.measure_matrix([0, 1, 2])
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)


class TestProbeStats:
    def test_counts_probes(self, paper_network):
        prober = Prober(
            paper_network, config=ProbeConfig(probe_count=5), seed=0
        )
        prober.measure(0, 1)
        assert prober.stats.probes_sent == 5
        assert prober.stats.pairs_measured == 1

    def test_pairs_deduplicated(self, paper_network):
        prober = Prober(paper_network, seed=0)
        prober.measure(0, 1)
        prober.measure(1, 0)
        assert prober.stats.pairs_measured == 1

    def test_matrix_probe_budget(self, paper_network):
        """An n-node matrix measures exactly n(n-1)/2 pairs."""
        prober = Prober(
            paper_network, config=ProbeConfig(probe_count=3), seed=0
        )
        prober.measure_matrix([0, 1, 2, 3])
        assert prober.stats.pairs_measured == 6
        assert prober.stats.probes_sent == 18

    def test_reset(self, paper_network):
        prober = Prober(paper_network, seed=0)
        prober.measure(0, 1)
        prober.stats.reset()
        assert prober.stats.probes_sent == 0
        assert prober.stats.pairs_measured == 0
        prober.measure(0, 1)
        assert prober.stats.pairs_measured == 1


class TestVectorisedEquivalence:
    """The batched paths must be bit-identical to per-call ``measure``.

    Both vectorised methods draw one ``(pairs, probe_count)`` noise
    block; numpy's ``Generator`` fills that block from the same bit
    stream a sequence of per-target ``(probe_count,)`` draws would
    consume, so any change that breaks the equivalence shows up as an
    exact-comparison failure here.
    """

    def test_measure_many_matches_sequential(self, paper_network):
        targets = [2, 0, 3, 3, 1]
        sequential = Prober(paper_network, seed=41)
        vectorised = Prober(paper_network, seed=41)
        expected = np.array(
            [sequential.measure(1, target) for target in targets]
        )
        got = vectorised.measure_many(1, targets)
        assert np.array_equal(got, expected)
        assert (
            vectorised.stats.probes_sent == sequential.stats.probes_sent
        )

    def test_measure_many_self_probe_consumes_no_randomness(
        self, paper_network
    ):
        with_self = Prober(paper_network, seed=43)
        without_self = Prober(paper_network, seed=43)
        batch = with_self.measure_many(1, [1, 2, 3])
        plain = without_self.measure_many(1, [2, 3])
        assert batch[0] == 0.0
        assert np.array_equal(batch[1:], plain)

    def test_measure_matrix_matches_pair_loop(self, paper_network):
        nodes = [0, 2, 1, 3]
        sequential = Prober(paper_network, seed=47)
        vectorised = Prober(paper_network, seed=47)
        n = len(nodes)
        expected = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                value = sequential.measure(nodes[i], nodes[j])
                expected[i, j] = expected[j, i] = value
        assert np.array_equal(
            vectorised.measure_matrix(nodes), expected
        )
