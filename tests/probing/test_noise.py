"""Tests for repro.probing.noise."""

import numpy as np
import pytest

from repro.errors import ProbingError
from repro.probing.noise import GaussianRelativeNoise, NoNoise


class TestNoNoise:
    def test_identity(self, rng):
        rtts = np.array([1.0, 5.0, 100.0])
        out = NoNoise().perturb(rtts, rng)
        assert np.array_equal(out, rtts)

    def test_returns_copy(self, rng):
        rtts = np.array([1.0])
        out = NoNoise().perturb(rtts, rng)
        out[0] = 99.0
        assert rtts[0] == 1.0


class TestGaussianRelativeNoise:
    def test_mean_preserved(self, rng):
        noise = GaussianRelativeNoise(std=0.05)
        rtts = np.full(20_000, 50.0)
        out = noise.perturb(rtts, rng)
        assert out.mean() == pytest.approx(50.0, rel=0.01)

    def test_relative_spread(self, rng):
        noise = GaussianRelativeNoise(std=0.1)
        short = noise.perturb(np.full(10_000, 10.0), rng).std()
        long = noise.perturb(np.full(10_000, 100.0), rng).std()
        assert long == pytest.approx(10 * short, rel=0.1)

    def test_floor_enforced(self, rng):
        noise = GaussianRelativeNoise(std=5.0, floor_ms=0.5)
        out = noise.perturb(np.full(1_000, 1.0), rng)
        assert (out >= 0.5).all()

    def test_zero_rtt_stays_zero(self, rng):
        noise = GaussianRelativeNoise(std=0.1)
        out = noise.perturb(np.array([0.0, 10.0]), rng)
        assert out[0] == 0.0
        assert out[1] > 0.0

    def test_zero_std_exact(self, rng):
        noise = GaussianRelativeNoise(std=0.0)
        rtts = np.array([3.0, 7.0])
        assert np.array_equal(noise.perturb(rtts, rng), rtts)

    def test_negative_std_rejected(self):
        with pytest.raises(ProbingError):
            GaussianRelativeNoise(std=-0.1)

    def test_zero_floor_rejected(self):
        with pytest.raises(ProbingError):
            GaussianRelativeNoise(floor_ms=0.0)
