"""Tests for repro.obs.sampler: windowed time-series sampling."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.obs import SERIES_FIELDS, MetricsSampler, TimeSeries


def feed(sampler, n, path="local_hit", latency=10.0):
    for _ in range(n):
        sampler.observe_request(path, latency, counted=True)


class TestMetricsSampler:
    def test_invalid_interval_rejected(self):
        with pytest.raises(SimulationError):
            MetricsSampler(interval_ms=0.0)

    def test_unknown_path_rejected(self):
        sampler = MetricsSampler(interval_ms=100.0)
        with pytest.raises(SimulationError):
            sampler.observe_request("teleport", 1.0, counted=True)

    def test_ticks_align_to_interval_multiples(self):
        sampler = MetricsSampler(interval_ms=100.0)
        assert sampler.next_due(99.9) is None
        assert sampler.next_due(100.0) == 100.0
        sampler.flush(100.0)
        assert sampler.next_due(150.0) is None
        assert sampler.next_due(250.0) == 200.0
        sampler.flush(200.0)
        # after a late flush, ticks stay on the k * interval grid
        assert sampler.next_due(250.0) is None
        assert sampler.next_due(300.0) == 300.0

    def test_window_counters_reset_per_flush(self):
        sampler = MetricsSampler(interval_ms=1_000.0)
        feed(sampler, 3, "local_hit")
        feed(sampler, 1, "origin_fetch")
        first = sampler.flush(1_000.0)
        assert first.requests == 4
        assert first.hit_rate == pytest.approx(0.75)
        assert first.request_rate_rps == pytest.approx(4.0)
        assert first.local_rate_rps == pytest.approx(3.0)
        second = sampler.flush(2_000.0)
        assert second.requests == 0
        assert second.hit_rate == 0.0
        assert second.mean_latency_ms == 0.0

    def test_window_latency_stats(self):
        sampler = MetricsSampler(interval_ms=1_000.0)
        for latency in (10.0, 20.0, 30.0, 40.0):
            sampler.observe_request("group_hit", latency, counted=True)
        sample = sampler.flush(1_000.0)
        assert sample.mean_latency_ms == pytest.approx(25.0, abs=2.0)
        assert 30.0 <= sample.p95_latency_ms <= 40.5

    def test_gauges_attached_to_sample(self):
        sampler = MetricsSampler(interval_ms=100.0)
        feed(sampler, 1)
        sample = sampler.flush(
            100.0, origin_utilisation=0.7, cache_occupancy=0.4
        )
        assert sample.origin_utilisation == 0.7
        assert sample.cache_occupancy == 0.4

    def test_finalize_flushes_trailing_partial_window(self):
        sampler = MetricsSampler(interval_ms=100.0)
        feed(sampler, 2)
        sampler.flush(100.0)
        feed(sampler, 5)
        sampler.finalize(130.0)
        assert sampler.num_samples == 2
        last = sampler.samples[-1]
        assert last.time_ms == 200.0  # next grid point after 130 ms
        assert last.requests == 5

    def test_finalize_is_idempotent_and_skips_empty_window(self):
        sampler = MetricsSampler(interval_ms=100.0)
        feed(sampler, 1)
        sampler.flush(100.0)
        sampler.finalize(100.0)
        sampler.finalize(100.0)
        assert sampler.num_samples == 1


class TestTimeSeries:
    def build(self):
        sampler = MetricsSampler(interval_ms=100.0)
        for tick in (100.0, 200.0, 300.0):
            feed(sampler, 2)
            sampler.flush(tick)
        return sampler.series()

    def test_columns_and_length(self):
        series = self.build()
        assert len(series) == 3
        assert list(series.time_ms) == [100.0, 200.0, 300.0]
        assert np.all(series.requests == 2)

    def test_as_matrix_shape(self):
        series = self.build()
        assert series.as_matrix().shape == (3, len(SERIES_FIELDS))

    def test_dict_round_trip(self):
        series = self.build()
        clone = TimeSeries.from_dict(series.to_dict())
        assert np.array_equal(clone.as_matrix(), series.as_matrix())

    def test_from_dict_missing_field_rejected(self):
        payload = self.build().to_dict()
        payload.pop("hit_rate")
        with pytest.raises(SimulationError):
            TimeSeries.from_dict(payload)
