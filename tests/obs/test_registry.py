"""The run registry: content addressing, concurrency, queries, gc."""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.errors import RegistryError
from repro.obs.manifest import RunManifest
from repro.obs.registry import (
    RegistryWarning,
    RunRecord,
    RunRegistry,
    manifest_run_id,
    resolve_registry,
)


def _manifest(label="fig6", seed=7, stamp=1_000.0, **stats) -> RunManifest:
    manifest = RunManifest(label=label, seed=seed)
    manifest.created_unix = stamp
    manifest.totals = {"requests": 100.0, "avg_latency_ms": 50.0}
    manifest.run_stats = {str(k): float(v) for k, v in stats.items()}
    manifest.config = {"jobs": 1, "repetitions": 2}
    return manifest


class TestContentAddressing:
    def test_run_id_is_stable_across_instances(self):
        assert manifest_run_id(_manifest()) == manifest_run_id(_manifest())

    def test_run_id_changes_with_content(self):
        assert manifest_run_id(_manifest(stamp=1.0)) != manifest_run_id(
            _manifest(stamp=2.0)
        )

    def test_duplicate_append_does_not_grow_the_store(self, tmp_path):
        registry = RunRegistry(tmp_path)
        first = registry.append(_manifest())
        second = registry.append(_manifest())
        assert not first.duplicate
        assert second.duplicate
        assert second.record.run_id == first.record.run_id
        assert len(registry.records()) == 1


class TestAppendAndQuery:
    def test_archived_manifest_round_trips(self, tmp_path):
        registry = RunRegistry(tmp_path)
        appended = registry.append(_manifest(testbed_cache_hits=3))
        record, loaded = registry.load_manifest(appended.record.run_id)
        assert record.run_id == appended.record.run_id
        assert loaded.label == "fig6"
        assert loaded.totals["requests"] == 100.0
        assert loaded.run_stats["testbed_cache_hits"] == 3.0

    def test_records_keep_append_order(self, tmp_path):
        registry = RunRegistry(tmp_path)
        for stamp in (1.0, 2.0, 3.0):
            registry.append(_manifest(stamp=stamp))
        stamps = [r.created_unix for r in registry.records()]
        assert stamps == [1.0, 2.0, 3.0]

    def test_find_by_prefix_and_ordinal(self, tmp_path):
        registry = RunRegistry(tmp_path)
        first = registry.append(_manifest(stamp=1.0)).record
        second = registry.append(_manifest(stamp=2.0)).record
        assert registry.find(first.run_id[:6]).run_id == first.run_id
        assert registry.find("-1").run_id == second.run_id
        assert registry.find("-2").run_id == first.run_id

    def test_find_rejects_bad_references(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.append(_manifest())
        with pytest.raises(RegistryError, match="too short"):
            registry.find("ab")
        with pytest.raises(RegistryError, match="no run matches"):
            registry.find("ffffffffffff")
        with pytest.raises(RegistryError, match="out of range"):
            registry.find("-5")

    def test_empty_registry_raises(self, tmp_path):
        with pytest.raises(RegistryError, match="holds no runs"):
            RunRegistry(tmp_path).find("-1")

    def test_corrupt_index_line_is_skipped_with_warning(self, tmp_path):
        registry = RunRegistry(tmp_path)
        kept = registry.append(_manifest()).record
        with open(registry.index_path, "a", encoding="utf-8") as handle:
            handle.write("{not json\n")  # the torn tail a SIGKILL leaves
        with pytest.warns(RegistryWarning, match="torn append"):
            records = registry.records()
        assert [r.run_id for r in records] == [kept.run_id]

    def test_registry_stays_appendable_after_a_torn_line(self, tmp_path):
        registry = RunRegistry(tmp_path)
        first = registry.append(_manifest(stamp=1.0)).record
        with open(registry.index_path, "a", encoding="utf-8") as handle:
            handle.write('{"half": "a rec\n')  # no run_id: malformed
        second = registry.append(_manifest(stamp=2.0)).record
        with pytest.warns(RegistryWarning):
            ids = [r.run_id for r in registry.records()]
        assert ids == [first.run_id, second.run_id]

    def test_summary_carries_headline_metrics(self, tmp_path):
        registry = RunRegistry(tmp_path)
        record = registry.append(
            _manifest(worker_utilization=0.9, irrelevant=1.0)
        ).record
        assert record.summary["requests"] == 100.0
        assert record.summary["worker_utilization"] == 0.9
        assert "irrelevant" not in record.summary

    def test_index_line_round_trips(self):
        record = RunRecord(
            run_id="abcd1234ef56", kind="experiment", label="fig8",
            created_unix=12.5, seed=3, summary={"requests": 10.0},
        )
        assert RunRecord.from_line(record.to_line()) == record


class TestCompare:
    def test_compare_reports_changed_metrics_and_config(self, tmp_path):
        registry = RunRegistry(tmp_path)
        a = _manifest(stamp=1.0, hits=5)
        b = _manifest(stamp=2.0, hits=8)
        b.totals["avg_latency_ms"] = 60.0
        b.config["jobs"] = 4
        ra = registry.append(a).record
        rb = registry.append(b).record
        diff = registry.compare(ra.run_id, rb.run_id)
        changed = {m.name: m for m in diff.changed_metrics()}
        assert changed["avg_latency_ms"].delta == pytest.approx(10.0)
        assert changed["avg_latency_ms"].relative == pytest.approx(0.2)
        assert changed["hits"].value_b == 8.0
        assert ("jobs", 1, 4) in diff.config_changes

    def test_identical_runs_have_no_changes(self, tmp_path):
        registry = RunRegistry(tmp_path)
        run_id = registry.append(_manifest()).record.run_id
        diff = registry.compare(run_id, run_id)
        assert diff.changed_metrics() == []
        assert diff.config_changes == ()


class TestGc:
    def test_gc_keeps_newest_and_deletes_archives(self, tmp_path):
        registry = RunRegistry(tmp_path)
        ids = [
            registry.append(_manifest(stamp=float(i))).record.run_id
            for i in range(4)
        ]
        result = registry.gc(keep_last=2)
        assert result.kept_records == 2
        assert result.dropped_records == 2
        assert result.deleted_manifests == 2
        kept = [r.run_id for r in registry.records()]
        assert kept == ids[2:]
        assert not registry.manifest_path(ids[0]).exists()
        assert registry.manifest_path(ids[3]).exists()


def _append_worker(args):
    root, worker, count = args
    registry = RunRegistry(root)
    for i in range(count):
        registry.append(_manifest(stamp=float(worker * 1000 + i)))
    return worker


class TestConcurrency:
    def test_parallel_appends_never_tear_index_lines(self, tmp_path):
        workers, per_worker = 4, 8
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(workers) as pool:
            pool.map(
                _append_worker,
                [(str(tmp_path), w, per_worker) for w in range(workers)],
            )
        records = RunRegistry(tmp_path).records()
        assert len(records) == workers * per_worker
        # Every line must be complete JSON with a resolvable archive.
        with open(tmp_path / "index.jsonl", encoding="utf-8") as handle:
            for line in handle:
                payload = json.loads(line)
                archive = tmp_path / "manifests" / f"{payload['run_id']}.json"
                assert archive.exists()


class TestJournalHousing:
    def test_journal_paths_live_under_the_registry_root(self, tmp_path):
        registry = RunRegistry(tmp_path)
        assert registry.journal_dir == tmp_path / "journals"
        path = registry.journal_path("f198fcb28d3f")
        assert path == tmp_path / "journals" / "f198fcb28d3f.jsonl"


class TestResolve:
    def test_explicit_root_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REGISTRY", str(tmp_path / "env"))
        registry = resolve_registry(str(tmp_path / "cli"))
        assert registry is not None
        assert registry.root == tmp_path / "cli"

    def test_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REGISTRY", str(tmp_path / "env"))
        registry = resolve_registry(None)
        assert registry is not None
        assert registry.root == tmp_path / "env"

    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_REGISTRY", raising=False)
        assert resolve_registry(None) is None
