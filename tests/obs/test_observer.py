"""Tests for the Observer fan-out and its engine integration.

The integration half is the tentpole's anchor: a traced run must replay
to exactly the hit-rate decomposition the metrics report, and sampling
must tick on the simulated clock, not the wall clock.
"""

import pytest

from repro.config import (
    CacheConfig,
    DocumentConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.core.groups import CacheGroup, GroupingResult
from repro.errors import SimulationError
from repro.obs import (
    KIND_CACHE_FAIL,
    KIND_CACHE_RECOVER,
    KIND_ORIGIN_UPDATE,
    KIND_REQUEST,
    NULL_OBSERVER,
    MetricsSampler,
    Observer,
    TraceCollector,
    replay_hit_rates,
)
from repro.simulator import CacheFailEvent, CacheRecoverEvent, simulate
from repro.topology import build_network, network_from_matrix
from repro.workload import Workload, build_catalog, generate_workload
from repro.workload.trace import RequestRecord


@pytest.fixture
def network():
    return network_from_matrix(
        [
            [0.0, 10.0, 20.0, 30.0],
            [10.0, 0.0, 4.0, 25.0],
            [20.0, 4.0, 0.0, 25.0],
            [30.0, 25.0, 25.0, 0.0],
        ]
    )


@pytest.fixture
def workload():
    catalog = build_catalog(
        DocumentConfig(
            num_documents=4, mean_size_bytes=1000.0, size_sigma=0.0,
            dynamic_fraction=0.0,
        ),
        seed=1,
    )
    requests = tuple(
        RequestRecord(float(i * 50), 1 + (i % 3), i % 4) for i in range(30)
    )
    return Workload(catalog=catalog, requests=requests, updates=())


def one_group():
    return GroupingResult(scheme="manual", groups=(CacheGroup(0, (1, 2, 3)),))


def config(warmup=0.0):
    return SimulationConfig(
        cache=CacheConfig(capacity_fraction=0.5), warmup_fraction=warmup
    )


class TestObserver:
    def test_null_observer_is_inactive(self):
        assert NULL_OBSERVER.active is False

    def test_active_with_any_instrument(self):
        assert Observer(trace=TraceCollector()).active
        assert Observer(sampler=MetricsSampler(100.0)).active
        assert not Observer().active

    def test_note_throughput(self):
        observer = Observer()
        observer.note_throughput(500, 0.25)
        assert observer.run_stats["events"] == 500.0
        assert observer.run_stats["events_per_sec"] == pytest.approx(2000.0)

    def test_zero_elapsed_omits_rate(self):
        observer = Observer()
        observer.note_throughput(5, 0.0)
        assert "events_per_sec" not in observer.run_stats


class TestEngineIntegration:
    def test_trace_replays_to_metrics_hit_rates(self, network, workload):
        observer = Observer(trace=TraceCollector())
        result = simulate(
            network, one_group(), workload, config(warmup=0.1),
            observer=observer,
        )
        requests = [
            r for r in observer.trace.records() if r.kind == KIND_REQUEST
        ]
        assert len(requests) == 30  # warm-up requests traced too
        assert sum(1 for r in requests if not r.counted) == 3
        assert replay_hit_rates(requests) == result.metrics.hit_rates()

    def test_trace_records_carry_latency_breakdown(self, network, workload):
        observer = Observer(trace=TraceCollector())
        simulate(network, one_group(), workload, config(), observer=observer)
        origin = [
            r for r in observer.trace.records()
            if r.kind == KIND_REQUEST and r.path == "origin_fetch"
        ]
        assert origin
        for record in origin:
            # total = components + fixed local-processing overhead
            components = (
                record.query_ms + record.fetch_ms + record.transfer_ms
            )
            assert record.total_ms >= components
            assert record.total_ms == pytest.approx(components, abs=5.0)
            assert record.size_bytes == 1000

    def test_failure_events_traced(self, network, workload):
        observer = Observer(trace=TraceCollector())
        simulate(
            network, one_group(), workload, config(),
            failures=[CacheFailEvent(100.0, 2), CacheRecoverEvent(200.0, 2)],
            observer=observer,
        )
        kinds = [r.kind for r in observer.trace.records()]
        assert KIND_CACHE_FAIL in kinds
        assert KIND_CACHE_RECOVER in kinds
        fail = next(
            r for r in observer.trace.records() if r.kind == KIND_CACHE_FAIL
        )
        assert fail.cache == 2
        assert fail.timestamp_ms == 100.0

    def test_origin_updates_traced(self, network):
        config_obj = config()
        net = build_network(num_caches=8, seed=5)
        wl = generate_workload(
            net.cache_nodes,
            WorkloadConfig(
                documents=DocumentConfig(num_documents=30),
                requests_per_cache=20,
            ),
            seed=5,
        )
        assert wl.updates  # the generator schedules origin updates
        observer = Observer(trace=TraceCollector())
        simulate(net, one_group_of(net), wl, config_obj, observer=observer)
        updates = [
            r for r in observer.trace.records()
            if r.kind == KIND_ORIGIN_UPDATE
        ]
        assert len(updates) == len(wl.updates)

    def test_sampler_ticks_on_simulated_time(self, network, workload):
        # 30 requests at 50 ms spacing => ~1450 ms of simulated time;
        # a 500 ms interval must yield the 500/1000/1500 grid points.
        observer = Observer(sampler=MetricsSampler(interval_ms=500.0))
        simulate(network, one_group(), workload, config(), observer=observer)
        series = observer.sampler.series()
        assert list(series.time_ms) == [500.0, 1000.0, 1500.0]
        assert series.requests.sum() == 30

    def test_result_accessors(self, network, workload):
        observer = Observer(
            trace=TraceCollector(),
            sampler=MetricsSampler(interval_ms=500.0),
        )
        result = simulate(
            network, one_group(), workload, config(), observer=observer
        )
        assert result.trace == observer.trace.records()
        assert len(result.timeseries()) == 3

    def test_result_accessors_raise_when_uninstrumented(
        self, network, workload
    ):
        result = simulate(network, one_group(), workload, config())
        with pytest.raises(SimulationError):
            result.timeseries()
        with pytest.raises(SimulationError):
            result.trace

    def test_uninstrumented_run_unchanged(self, network, workload):
        plain = simulate(network, one_group(), workload, config())
        traced = simulate(
            network, one_group(), workload, config(),
            observer=Observer(
                trace=TraceCollector(),
                sampler=MetricsSampler(interval_ms=250.0),
            ),
        )
        assert plain.metrics.hit_rates() == traced.metrics.hit_rates()
        assert plain.average_latency_ms() == traced.average_latency_ms()

    def test_throughput_recorded(self, network, workload):
        observer = Observer(trace=TraceCollector())
        simulate(network, one_group(), workload, config(), observer=observer)
        assert observer.run_stats["events"] >= 30.0
        assert observer.run_stats["elapsed_s"] > 0.0


def one_group_of(network):
    return GroupingResult(
        scheme="manual",
        groups=(CacheGroup(0, tuple(network.cache_nodes)),),
    )
