"""Tests for repro.obs.manifest: run-manifest assembly and round-trip."""

import pytest

from repro import __version__
from repro.config import SimulationConfig
from repro.errors import ReproError
from repro.obs import (
    MetricsSampler,
    Observer,
    PhaseRegistry,
    RunManifest,
    TraceCollector,
    build_manifest,
    config_to_dict,
)


def instrumented_observer():
    observer = Observer(
        trace=TraceCollector(capacity=100),
        sampler=MetricsSampler(interval_ms=100.0),
    )
    for _ in range(3):
        observer.sampler.observe_request("local_hit", 5.0, counted=True)
    observer.sampler.flush(100.0)
    observer.note_throughput(1000, 0.5)
    return observer


class TestConfigToDict:
    def test_flattens_nested_dataclasses(self):
        payload = config_to_dict(SimulationConfig())
        assert isinstance(payload, dict)
        assert isinstance(payload["cache"], dict)
        assert "capacity_fraction" in payload["cache"]

    def test_passes_plain_values_through(self):
        assert config_to_dict(42) == 42
        assert config_to_dict({"a": 1}) == {"a": 1}


class TestBuildManifest:
    def test_minimal(self):
        manifest = build_manifest("smoke")
        assert manifest.label == "smoke"
        assert manifest.version == __version__
        assert manifest.phase_timings_s == {}
        assert manifest.timeseries is None

    def test_full_assembly(self):
        registry = PhaseRegistry()
        registry.merge_totals({"landmarks": 0.5, "cluster": 0.1})
        observer = instrumented_observer()
        manifest = build_manifest(
            "run",
            seed=7,
            config=SimulationConfig(),
            registry=registry,
            observer=observer,
            totals={"requests": 3.0},
            trace_path="/tmp/t.jsonl",
        )
        assert manifest.seed == 7
        assert manifest.phase_timings_s["landmarks"] == 0.5
        assert manifest.run_stats["events"] == 1000.0
        assert manifest.totals == {"requests": 3.0}
        assert manifest.trace_info["capacity"] == 100
        assert manifest.trace_info["path"] == "/tmp/t.jsonl"
        assert len(manifest.timeseries) == 1

    def test_non_dataclass_config_rejected(self):
        with pytest.raises(ReproError):
            build_manifest("bad", config="not-a-config")


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        manifest = build_manifest(
            "run", seed=3, observer=instrumented_observer(),
            totals={"requests": 3.0},
        )
        clone = RunManifest.from_dict(manifest.to_dict())
        assert clone.label == manifest.label
        assert clone.seed == manifest.seed
        assert clone.totals == manifest.totals
        assert clone.run_stats == manifest.run_stats
        assert clone.trace_info == manifest.trace_info
        assert len(clone.timeseries) == len(manifest.timeseries)
        assert list(clone.timeseries.hit_rate) == [1.0]

    def test_round_trip_without_timeseries(self):
        clone = RunManifest.from_dict(build_manifest("plain").to_dict())
        assert clone.timeseries is None

    def test_malformed_payload_rejected(self):
        with pytest.raises(ReproError):
            RunManifest.from_dict({"bogus": True})
