"""Tests for repro.obs.profiling: phase registries and ambient timers."""

from repro.obs import (
    PhaseRegistry,
    activate,
    current_registry,
    phase_timer,
)


class TestPhaseRegistry:
    def test_accumulates_calls_and_totals(self):
        registry = PhaseRegistry()
        for _ in range(3):
            with registry.time("probe"):
                pass
        timing = registry.timings()["probe"]
        assert timing.calls == 3
        assert timing.total_s >= 0.0
        assert timing.max_s <= timing.total_s

    def test_nested_timers_get_qualified_names(self):
        registry = PhaseRegistry()
        with registry.time("landmarks"):
            with registry.time("probe"):
                pass
            with registry.time("greedy"):
                pass
        names = set(registry.total_seconds())
        assert names == {
            "landmarks", "landmarks/probe", "landmarks/greedy"
        }
        # the outer phase's wall-clock includes the nested ones
        totals = registry.total_seconds()
        assert totals["landmarks"] >= totals["landmarks/probe"]

    def test_merge_totals(self):
        registry = PhaseRegistry()
        registry.merge_totals({"cluster": 0.5})
        registry.merge_totals({"cluster": 0.25})
        timing = registry.timings()["cluster"]
        assert timing.calls == 2
        assert timing.total_s == 0.75
        assert timing.max_s == 0.5

    def test_contains_and_len(self):
        registry = PhaseRegistry()
        with registry.time("x"):
            pass
        assert "x" in registry
        assert len(registry) == 1


class TestAmbientTimer:
    def test_noop_without_active_registry(self):
        assert current_registry() is None
        with phase_timer("anything"):
            pass  # must not raise, must not record anywhere

    def test_records_into_active_registry(self):
        registry = PhaseRegistry()
        with activate(registry):
            assert current_registry() is registry
            with phase_timer("stage"):
                with phase_timer("inner"):
                    pass
        assert current_registry() is None
        assert set(registry.total_seconds()) == {"stage", "stage/inner"}

    def test_activation_restores_previous_registry(self):
        outer, inner = PhaseRegistry(), PhaseRegistry()
        with activate(outer):
            with activate(inner):
                with phase_timer("work"):
                    pass
            assert current_registry() is outer
        assert "work" in inner
        assert "work" not in outer


class TestCoordinatorPhases:
    def form(self):
        from repro.config import LandmarkConfig
        from repro.core.schemes import scheme_by_name
        from repro.topology import build_network

        network = build_network(num_caches=12, seed=3)
        scheme = scheme_by_name(
            "SDSL", landmark_config=LandmarkConfig(num_landmarks=5)
        )
        return scheme.form_groups(network, 3, seed=3)

    def test_pipeline_records_three_steps(self):
        grouping = self.form()
        timings = grouping.phase_timings
        assert set(timings) >= {"landmarks", "features", "cluster"}
        assert all(seconds >= 0.0 for seconds in timings.values())

    def test_ambient_registry_sees_coordinator_phases(self):
        registry = PhaseRegistry()
        with activate(registry):
            grouping = self.form()
        names = set(registry.total_seconds())
        assert {"landmarks", "features", "cluster"} <= names
        # fine-grained stage timers land in the ambient registry too
        assert any(name.startswith("landmarks/") for name in names)
        # and the grouping still carries its own step totals
        assert set(grouping.phase_timings) >= {
            "landmarks", "features", "cluster"
        }
