"""CLI surface of the run registry and the JSON report format."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def no_env_registry(monkeypatch):
    monkeypatch.delenv("REPRO_REGISTRY", raising=False)


@pytest.fixture
def network_file(tmp_path):
    path = tmp_path / "net.npz"
    assert main(
        ["network", "--caches", "15", "--seed", "3", "--out", str(path)]
    ) == 0
    return path


@pytest.fixture
def populated_registry(tmp_path, network_file):
    """A registry holding two simulate runs with different workloads."""
    registry = tmp_path / "runs"
    for requests in ("20", "30"):
        assert main([
            "simulate", "--network", str(network_file), "--seed", "3",
            "--requests-per-cache", requests, "--documents", "40",
            "--registry", str(registry),
        ]) == 0
    return registry


class TestRunsCli:
    def test_list_shows_both_runs(self, capsys, populated_registry):
        assert main(["runs", "list", "--registry",
                     str(populated_registry)]) == 0
        out = capsys.readouterr().out
        assert "simulate:SDSL" in out
        assert "2 run(s)" in out
        assert "avg_latency_ms=" in out

    def test_list_json_and_filters(self, capsys, populated_registry):
        capsys.readouterr()  # drain the fixture's simulate output
        assert main([
            "runs", "list", "--registry", str(populated_registry),
            "--kind", "simulate", "--limit", "1", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        assert payload[0]["kind"] == "simulate"
        assert "requests" in payload[0]["summary"]

    def test_show_renders_report_layout(self, capsys, populated_registry):
        assert main(["runs", "show", "-1", "--registry",
                     str(populated_registry)]) == 0
        out = capsys.readouterr().out
        assert "run " in out
        assert "label" in out and "simulate:SDSL" in out
        assert "config.requests_per_cache" in out

    def test_compare_detects_workload_change(
        self, capsys, populated_registry
    ):
        code = main(["runs", "compare", "-2", "-1", "--registry",
                     str(populated_registry)])
        out = capsys.readouterr().out
        # Different workloads => metrics moved => exit 1.
        assert code == 1
        assert "requests" in out
        assert "requests_per_cache: 20 -> 30" in out

    def test_compare_tolerance_absorbs_changes(self, populated_registry):
        assert main([
            "runs", "compare", "-2", "-1", "--registry",
            str(populated_registry), "--tolerance", "1000",
        ]) == 0

    def test_identical_run_compares_clean(self, capsys, populated_registry):
        assert main(["runs", "compare", "-1", "-1", "--registry",
                     str(populated_registry)]) == 0
        assert "metrics: identical" in capsys.readouterr().out

    def test_missing_registry_is_usage_error(self, capsys):
        assert main(["runs", "list"]) == 2
        assert "no registry" in capsys.readouterr().err

    def test_bad_reference_is_usage_error(self, capsys, populated_registry):
        assert main(["runs", "show", "ffffffffffff", "--registry",
                     str(populated_registry)]) == 2
        assert "no run matches" in capsys.readouterr().err

    def test_gc_prunes_oldest(self, capsys, populated_registry):
        assert main(["runs", "gc", "--keep", "1", "--registry",
                     str(populated_registry)]) == 0
        assert "dropped 1" in capsys.readouterr().out
        assert main(["runs", "list", "--registry",
                     str(populated_registry)]) == 0
        assert "1 run(s)" in capsys.readouterr().out


class TestReportJson:
    def test_report_json_round_trips_manifest(
        self, capsys, tmp_path, network_file
    ):
        manifest_path = tmp_path / "run.json"
        assert main([
            "simulate", "--network", str(network_file), "--seed", "3",
            "--requests-per-cache", "20", "--documents", "40",
            "--sample-ms", "1000", "--manifest", str(manifest_path),
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(manifest_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "run_manifest"
        assert payload["label"] == "simulate:SDSL"
        assert payload["totals"]["requests"] > 0
        # Byte-equivalent to the archived file's payload.
        assert payload == json.loads(manifest_path.read_text())

    def test_registry_show_json_matches_report(
        self, capsys, populated_registry
    ):
        capsys.readouterr()  # drain the fixture's simulate output
        assert main([
            "runs", "show", "-1", "--registry", str(populated_registry),
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "run_manifest"
        assert payload["registry_kind"] == "simulate"
        assert len(payload["run_id"]) == 12
