"""Tests for repro.obs.trace: records, ring buffer, JSONL round-trip."""

import pytest

from repro.errors import SimulationError
from repro.obs import (
    KIND_CACHE_FAIL,
    KIND_REQUEST,
    TraceCollector,
    TraceRecord,
    read_jsonl,
    replay_hit_rates,
)


def request_record(i, path="local_hit", counted=True):
    return TraceRecord(
        kind=KIND_REQUEST,
        timestamp_ms=float(i),
        cache=1,
        doc_id=i,
        path=path,
        total_ms=10.0 + i,
        query_ms=1.0,
        fetch_ms=5.0,
        transfer_ms=4.0 + i,
        messages=2,
        size_bytes=1000,
        counted=counted,
        stale=False,
    )


class TestTraceRecord:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            TraceRecord(kind="bogus", timestamp_ms=0.0)

    def test_to_dict_drops_none_fields(self):
        record = TraceRecord(
            kind=KIND_CACHE_FAIL, timestamp_ms=5.0, cache=3
        )
        payload = record.to_dict()
        assert payload == {
            "kind": KIND_CACHE_FAIL, "timestamp_ms": 5.0, "cache": 3
        }

    def test_from_dict_round_trip(self):
        record = request_record(4)
        assert TraceRecord.from_dict(record.to_dict()) == record

    def test_from_dict_malformed_rejected(self):
        with pytest.raises(SimulationError):
            TraceRecord.from_dict({"kind": KIND_REQUEST, "bogus_field": 1})


class TestTraceCollector:
    def test_unbounded_keeps_everything(self):
        collector = TraceCollector()
        for i in range(100):
            collector.record(request_record(i))
        assert len(collector) == 100
        assert collector.dropped == 0
        assert collector.total_recorded == 100
        assert collector.peak_size == 100

    def test_ring_buffer_evicts_oldest(self):
        collector = TraceCollector(capacity=10)
        for i in range(25):
            collector.record(request_record(i))
        assert len(collector) == 10
        assert collector.dropped == 15
        assert collector.total_recorded == 25
        assert collector.peak_size == 10
        kept = [r.doc_id for r in collector.records()]
        assert kept == list(range(15, 25))

    def test_ring_buffer_before_wrap(self):
        collector = TraceCollector(capacity=10)
        for i in range(4):
            collector.record(request_record(i))
        assert len(collector) == 4
        assert collector.dropped == 0
        assert collector.peak_size == 4

    def test_invalid_capacity_rejected(self):
        with pytest.raises(SimulationError):
            TraceCollector(capacity=0)

    def test_jsonl_round_trip(self, tmp_path):
        collector = TraceCollector()
        originals = [request_record(i) for i in range(5)]
        originals.append(
            TraceRecord(kind=KIND_CACHE_FAIL, timestamp_ms=9.0, cache=2)
        )
        for record in originals:
            collector.record(record)
        path = tmp_path / "trace.jsonl"
        assert collector.write_jsonl(path) == 6
        assert read_jsonl(path) == originals

    def test_read_jsonl_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(SimulationError):
            read_jsonl(path)


class TestReplayHitRates:
    def test_shares_sum_to_one(self):
        records = (
            [request_record(i, "local_hit") for i in range(2)]
            + [request_record(i, "group_hit") for i in range(3)]
            + [request_record(i, "origin_fetch") for i in range(5)]
        )
        rates = replay_hit_rates(records)
        assert rates["local"] == pytest.approx(0.2)
        assert rates["group"] == pytest.approx(0.3)
        assert rates["origin"] == pytest.approx(0.5)

    def test_warmup_and_non_request_records_excluded(self):
        records = [
            request_record(0, "origin_fetch", counted=False),
            request_record(1, "local_hit"),
            TraceRecord(kind=KIND_CACHE_FAIL, timestamp_ms=2.0, cache=1),
        ]
        assert replay_hit_rates(records)["local"] == 1.0

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            replay_hit_rates([])
