"""Tests for repro.config: validation and derived quantities."""

import pytest

from repro.config import (
    CacheConfig,
    DocumentConfig,
    ExperimentConfig,
    GNPConfig,
    KMeansConfig,
    LandmarkConfig,
    PlacementConfig,
    ProbeConfig,
    SDSLConfig,
    SimulationConfig,
    TransitStubConfig,
    WorkloadConfig,
)
from repro.errors import ConfigurationError


class TestTransitStubConfig:
    def test_default_validates(self):
        TransitStubConfig().validate()

    def test_total_routers(self):
        cfg = TransitStubConfig(
            transit_domains=2,
            transit_nodes_per_domain=3,
            stub_domains_per_transit_node=2,
            stub_nodes_per_domain=4,
        )
        # 6 transit + 6*2 stub domains * 4 = 48 stub
        assert cfg.total_routers == 6 + 48

    def test_stub_domain_count(self):
        cfg = TransitStubConfig(
            transit_domains=2,
            transit_nodes_per_domain=3,
            stub_domains_per_transit_node=2,
        )
        assert cfg.stub_domain_count == 12

    def test_zero_transit_domains_rejected(self):
        with pytest.raises(ConfigurationError):
            TransitStubConfig(transit_domains=0).validate()

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            TransitStubConfig(intra_domain_edge_prob=1.5).validate()

    def test_inverted_latency_range_rejected(self):
        with pytest.raises(ConfigurationError):
            TransitStubConfig(
                transit_transit_latency_ms=(60.0, 20.0)
            ).validate()

    def test_zero_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            TransitStubConfig(intra_stub_latency_ms=(0.0, 5.0)).validate()

    def test_scaled_for_grows_stub_tier(self):
        cfg = TransitStubConfig()
        scaled = cfg.scaled_for(min_stub_routers=10_000)
        assert scaled.stub_domain_count * scaled.stub_nodes_per_domain >= 10_000

    def test_scaled_for_never_shrinks(self):
        cfg = TransitStubConfig()
        scaled = cfg.scaled_for(min_stub_routers=1)
        assert scaled.stub_nodes_per_domain == cfg.stub_nodes_per_domain

    def test_sized_for_density_shrinks_small_networks(self):
        cfg = TransitStubConfig()
        sized = cfg.sized_for_density(50)
        assert sized.stub_nodes_per_domain < cfg.stub_nodes_per_domain
        assert sized.stub_nodes_per_domain >= 2

    def test_sized_for_density_has_room_for_all_nodes(self):
        cfg = TransitStubConfig()
        for n in (10, 100, 1000):
            sized = cfg.sized_for_density(n)
            stub_routers = sized.stub_domain_count * sized.stub_nodes_per_domain
            assert stub_routers >= n + 1

    def test_sized_for_density_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            TransitStubConfig().sized_for_density(0)
        with pytest.raises(ConfigurationError):
            TransitStubConfig().sized_for_density(10, nodes_per_stub_router=0)


class TestPlacementConfig:
    def test_default_validates(self):
        PlacementConfig().validate()

    def test_zero_caches_rejected(self):
        with pytest.raises(ConfigurationError):
            PlacementConfig(num_caches=0).validate()


class TestProbeConfig:
    def test_default_validates(self):
        ProbeConfig().validate()

    def test_zero_probes_rejected(self):
        with pytest.raises(ConfigurationError):
            ProbeConfig(probe_count=0).validate()

    def test_negative_jitter_rejected(self):
        with pytest.raises(ConfigurationError):
            ProbeConfig(jitter_std=-0.1).validate()

    def test_zero_floor_rejected(self):
        with pytest.raises(ConfigurationError):
            ProbeConfig(min_rtt_ms=0.0).validate()


class TestLandmarkConfig:
    def test_default_validates(self):
        LandmarkConfig().validate()

    def test_potential_set_size(self):
        cfg = LandmarkConfig(num_landmarks=3, multiplier=2)
        assert cfg.potential_set_size() == 4  # M * (L - 1)

    def test_single_landmark_rejected(self):
        with pytest.raises(ConfigurationError):
            LandmarkConfig(num_landmarks=1).validate()

    def test_zero_multiplier_rejected(self):
        with pytest.raises(ConfigurationError):
            LandmarkConfig(multiplier=0).validate()


class TestKMeansConfig:
    def test_default_validates(self):
        KMeansConfig().validate()

    def test_zero_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            KMeansConfig(max_iterations=0).validate()

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            KMeansConfig(reassignment_tolerance=-1).validate()

    def test_zero_restarts_rejected(self):
        with pytest.raises(ConfigurationError):
            KMeansConfig(restarts=0).validate()


class TestSDSLConfig:
    def test_default_validates(self):
        SDSLConfig().validate()

    def test_zero_theta_allowed(self):
        SDSLConfig(theta=0.0).validate()

    def test_negative_theta_rejected(self):
        with pytest.raises(ConfigurationError):
            SDSLConfig(theta=-1.0).validate()


class TestGNPConfig:
    def test_default_validates(self):
        GNPConfig().validate()

    def test_zero_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            GNPConfig(dimensions=0).validate()


class TestDocumentConfig:
    def test_default_validates(self):
        DocumentConfig().validate()

    def test_zero_documents_rejected(self):
        with pytest.raises(ConfigurationError):
            DocumentConfig(num_documents=0).validate()

    def test_bad_dynamic_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            DocumentConfig(dynamic_fraction=1.5).validate()


class TestWorkloadConfig:
    def test_default_validates(self):
        WorkloadConfig().validate()

    def test_nested_document_config_validated(self):
        cfg = WorkloadConfig(documents=DocumentConfig(num_documents=0))
        with pytest.raises(ConfigurationError):
            cfg.validate()

    def test_bad_shared_interest_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(shared_interest=-0.1).validate()

    def test_zero_interarrival_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(mean_interarrival_ms=0.0).validate()

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(duration_ms=-5.0).validate()


class TestCacheConfig:
    def test_default_validates(self):
        CacheConfig().validate()

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(capacity_fraction=0.0).validate()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(replacement_policy="magic").validate()

    @pytest.mark.parametrize("policy", ["utility", "lru", "lfu"])
    def test_known_policies_accepted(self, policy):
        CacheConfig(replacement_policy=policy).validate()


class TestSimulationConfig:
    def test_default_validates(self):
        SimulationConfig().validate()

    def test_nested_cache_config_validated(self):
        cfg = SimulationConfig(cache=CacheConfig(capacity_fraction=0.0))
        with pytest.raises(ConfigurationError):
            cfg.validate()

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(link_bandwidth_bytes_per_ms=0.0).validate()

    def test_full_warmup_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(warmup_fraction=1.0).validate()


class TestExperimentConfig:
    def test_default_validates(self):
        ExperimentConfig().validate()

    def test_landmarks_exceeding_caches_rejected(self):
        cfg = ExperimentConfig(
            placement=PlacementConfig(num_caches=5),
            landmarks=LandmarkConfig(num_landmarks=10),
        )
        with pytest.raises(ConfigurationError):
            cfg.validate()
