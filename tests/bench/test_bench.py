"""The bench subsystem: measurement, persistence, comparison, gating."""

from __future__ import annotations

import dataclasses
import io
import json

import pytest

from repro.bench import (
    SMALL_SCENARIO,
    BenchResult,
    BenchScenario,
    compare_bench,
    gate_bench,
    load_bench,
    run_bench,
    save_bench,
    scenario_by_name,
)
from repro.cli import build_parser
from repro.errors import BenchmarkError


def _result(label="base", events=1000.0, plain=50_000.0, **extra):
    engine = {"events": events, "plain_events_per_sec": plain}
    engine.update({str(k): float(v) for k, v in extra.items()})
    return BenchResult(
        label=label, scenario=SMALL_SCENARIO, cores=4,
        created_unix=100.0, engine=engine,
    )


class TestScenario:
    def test_named_scenarios(self):
        assert scenario_by_name("default") == BenchScenario()
        assert scenario_by_name("small") == SMALL_SCENARIO
        with pytest.raises(BenchmarkError, match="unknown bench scenario"):
            scenario_by_name("huge")

    def test_round_trips_through_dict(self):
        scenario = BenchScenario(num_caches=42, rounds=2)
        assert BenchScenario.from_dict(scenario.to_dict()) == scenario

    def test_malformed_payload_raises(self):
        with pytest.raises(BenchmarkError, match="malformed"):
            BenchScenario.from_dict({"num_caches": "lots"})


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        result = _result(heap_events_per_sec=40_000.0)
        result.suite = {"jobs2": {"wall_s": 5.0, "events_per_sec": 400.0}}
        path = tmp_path / "bench.json"
        save_bench(result, path)
        loaded = load_bench(path)
        assert loaded == result

    def test_loads_trajectory_artifact_format(self, tmp_path):
        """BENCH_engine.json embeds the result under a 'bench' key."""
        path = tmp_path / "BENCH_engine.json"
        payload = {
            "suite": {"wall_s": 60.0},
            "bench": _result(label="trajectory").to_dict(),
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert load_bench(path).label == "trajectory"

    def test_rejects_wrong_kind_and_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "run_manifest"}))
        with pytest.raises(BenchmarkError, match="not a bench result"):
            load_bench(path)
        payload = _result().to_dict()
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(BenchmarkError, match="format version 99"):
            load_bench(path)

    def test_missing_file_raises_bencherror(self, tmp_path):
        with pytest.raises(BenchmarkError, match="cannot read"):
            load_bench(tmp_path / "absent.json")


class TestMeasurement:
    def test_small_scenario_measures_throughput(self):
        result = run_bench(scenario=SMALL_SCENARIO, label="test")
        assert result.engine["events"] > 0
        for name in ("plain", "instrumented", "heap"):
            assert result.engine[f"{name}_events_per_sec"] > 0
        metrics = result.metrics()
        assert "engine.plain_events_per_sec" in metrics
        # The raw event count anchors comparability, it is not gated.
        assert "engine.events" not in metrics

    def test_event_count_is_deterministic(self):
        a = run_bench(scenario=SMALL_SCENARIO)
        b = run_bench(scenario=SMALL_SCENARIO)
        assert a.engine["events"] == b.engine["events"]


class TestGate:
    def test_identical_results_pass(self):
        report = gate_bench(_result(), _result(label="cand"))
        assert report.passed
        assert report.regressions == []

    def test_twenty_percent_regression_fails_default_tolerance(self):
        baseline = _result(plain=50_000.0)
        candidate = _result(label="cand", plain=40_000.0)
        report = gate_bench(baseline, candidate)
        assert not report.passed
        assert [c.name for c in report.regressions] == [
            "engine.plain_events_per_sec"
        ]

    def test_small_dip_inside_tolerance_passes(self):
        report = gate_bench(_result(plain=50_000.0),
                            _result(label="cand", plain=45_000.0))
        assert report.passed

    def test_improvement_passes(self):
        report = gate_bench(_result(plain=50_000.0),
                            _result(label="cand", plain=80_000.0))
        assert report.passed

    def test_mismatched_event_counts_are_incomparable(self):
        with pytest.raises(BenchmarkError, match="not comparable"):
            gate_bench(_result(events=1000.0),
                       _result(label="cand", events=2000.0))

    def test_no_shared_metrics_raises(self):
        empty = BenchResult(label="empty", created_unix=1.0)
        with pytest.raises(BenchmarkError, match="no throughput metrics"):
            gate_bench(empty, empty)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            gate_bench(_result(), _result(), tolerance=-0.1)

    def test_one_sided_metrics_are_skipped_not_gated(self):
        baseline = _result()
        candidate = _result(label="cand", heap_events_per_sec=40_000.0)
        report = compare_bench(baseline, candidate)
        assert report.skipped == ("engine.heap_events_per_sec",)
        assert [c.name for c in report.checks] == [
            "engine.plain_events_per_sec"
        ]


class TestCli:
    def _run(self, argv):
        from repro.bench.cli import run_bench_cli

        parser = build_parser()
        out, err = io.StringIO(), io.StringIO()
        code = run_bench_cli(parser.parse_args(argv), stdout=out, stderr=err)
        return code, out.getvalue(), err.getvalue()

    def test_run_writes_result(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_REGISTRY", raising=False)
        path = tmp_path / "out.json"
        code, out, _ = self._run([
            "bench", "run", "--scenario", "small", "--rounds", "1",
            "--label", "clitest", "--out", str(path),
        ])
        assert code == 0
        assert "engine.plain_events_per_sec" in out
        assert load_bench(path).label == "clitest"

    def test_run_registers_when_registry_given(self, tmp_path, monkeypatch):
        from repro.obs.registry import RunRegistry

        monkeypatch.delenv("REPRO_REGISTRY", raising=False)
        code, _, _ = self._run([
            "bench", "run", "--scenario", "small", "--rounds", "1",
            "--label", "reg", "--registry", str(tmp_path / "runs"),
        ])
        assert code == 0
        records = RunRegistry(tmp_path / "runs").records()
        assert [r.kind for r in records] == ["bench"]
        assert records[0].label == "bench:reg"

    def test_gate_exit_codes(self, tmp_path):
        base = tmp_path / "base.json"
        slow = tmp_path / "slow.json"
        save_bench(_result(plain=50_000.0), base)
        save_bench(_result(label="slow", plain=30_000.0), slow)

        code, out, _ = self._run([
            "bench", "gate", "--baseline", str(base),
            "--candidate", str(base),
        ])
        assert code == 0 and "PASS" in out

        code, out, _ = self._run([
            "bench", "gate", "--baseline", str(base),
            "--candidate", str(slow),
        ])
        assert code == 1 and "FAIL" in out and "REGRESSED" in out

        # A generous tolerance absorbs the same 40% drop.
        code, out, _ = self._run([
            "bench", "gate", "--baseline", str(base),
            "--candidate", str(slow), "--tolerance", "0.6",
        ])
        assert code == 0

    def test_usage_errors_exit_2(self, tmp_path):
        incomparable = tmp_path / "other.json"
        base = tmp_path / "base.json"
        save_bench(_result(), base)
        save_bench(_result(label="other", events=2.0), incomparable)

        code, _, err = self._run([
            "bench", "gate", "--baseline", str(tmp_path / "absent.json"),
        ])
        assert code == 2 and "cannot read" in err

        code, _, err = self._run([
            "bench", "gate", "--baseline", str(base),
            "--candidate", str(incomparable),
        ])
        assert code == 2 and "not comparable" in err

    def test_compare_json_output(self, tmp_path):
        base = tmp_path / "base.json"
        save_bench(_result(), base)
        code, out, _ = self._run([
            "bench", "compare", str(base), str(base), "--format", "json",
        ])
        assert code == 0
        payload = json.loads(out)
        assert payload["passed"] is True
        assert payload["checks"][0]["ratio"] == 1.0

    def test_gate_measures_fresh_candidate(self, tmp_path, monkeypatch):
        """Without --candidate the gate measures with the baseline's
        scenario (pinned to the small one here so the test stays fast)."""
        base = tmp_path / "base.json"
        fresh = run_bench(scenario=SMALL_SCENARIO, label="base")
        save_bench(fresh, base)
        out_path = tmp_path / "candidate.json"
        code, out, _ = self._run([
            "bench", "gate", "--baseline", str(base),
            "--tolerance", "0.99", "--out", str(out_path),
        ])
        assert code == 0
        measured = load_bench(out_path)
        assert measured.scenario == SMALL_SCENARIO
        assert measured.engine["events"] == fresh.engine["events"]


def test_scenario_is_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        SMALL_SCENARIO.rounds = 5  # type: ignore[misc]
