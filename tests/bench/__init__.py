"""Benchmark subsystem tests."""
