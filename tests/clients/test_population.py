"""Tests for client placement."""

import numpy as np
import pytest

from repro.clients import place_clients
from repro.errors import PlacementError
from repro.topology import build_network, network_from_matrix


class TestPlaceClients:
    def test_shapes(self, small_network):
        pop = place_clients(small_network, num_clients=40, seed=1)
        assert pop.num_clients == 40
        assert pop.num_nodes == small_network.distances.size
        assert pop.rtt_to_nodes.shape == (40, 31)

    def test_rtts_finite_positive(self, small_network):
        pop = place_clients(small_network, num_clients=25, seed=2)
        assert np.isfinite(pop.rtt_to_nodes).all()
        assert (pop.rtt_to_nodes >= 0).all()

    def test_reuse_allowed(self, small_network):
        """More clients than stub routers is fine (router sharing)."""
        pop = place_clients(small_network, num_clients=500, seed=3)
        assert pop.num_clients == 500

    def test_nearest_cache(self, small_network):
        pop = place_clients(small_network, num_clients=10, seed=4)
        for client in range(10):
            nearest = pop.nearest_cache(client)
            rtt = pop.rtt_to_cache(client, nearest)
            for cache in small_network.cache_nodes:
                assert rtt <= pop.rtt_to_cache(client, cache) + 1e-9

    def test_nearest_caches_ordered(self, small_network):
        pop = place_clients(small_network, num_clients=5, seed=5)
        top = pop.nearest_caches(0, 5)
        rtts = [pop.rtt_to_cache(0, c) for c in top]
        assert rtts == sorted(rtts)
        assert len(set(top)) == 5

    def test_clients_near_some_cache(self, small_network):
        """With density-scaled topologies, clients sit in cache-served
        access networks: median nearest-cache RTT is small."""
        pop = place_clients(small_network, num_clients=60, seed=6)
        nearest_rtts = pop.rtt_to_nodes[:, 1:].min(axis=1)
        assert np.median(nearest_rtts) < np.median(
            small_network.server_distances()
        )

    def test_requires_graph(self, paper_network):
        with pytest.raises(PlacementError):
            place_clients(paper_network, num_clients=5)

    def test_bad_count_rejected(self, small_network):
        with pytest.raises(PlacementError):
            place_clients(small_network, num_clients=0)

    def test_reproducible(self, small_network):
        a = place_clients(small_network, num_clients=10, seed=7)
        b = place_clients(small_network, num_clients=10, seed=7)
        assert a.client_routers == b.client_routers
        assert np.array_equal(a.rtt_to_nodes, b.rtt_to_nodes)

    def test_bounds_checked(self, small_network):
        pop = place_clients(small_network, num_clients=4, seed=8)
        with pytest.raises(PlacementError):
            pop.rtt_to_cache(9, 1)
        with pytest.raises(PlacementError):
            pop.rtt_to_cache(0, 0)  # origin is not a cache
        with pytest.raises(PlacementError):
            pop.nearest_caches(0, 99)
