"""Tests for client redirection policies."""

import numpy as np
import pytest

from repro.clients import assign_clients, place_clients
from repro.clients.redirection import mean_access_rtt
from repro.errors import PlacementError


@pytest.fixture
def population(small_network):
    return place_clients(small_network, num_clients=40, seed=11)


class TestAssignClients:
    def test_nearest_is_optimal(self, population):
        assignment = assign_clients(population, policy="nearest")
        for client in range(population.num_clients):
            assert assignment[client] == population.nearest_cache(client)

    def test_nearest_k_within_candidates(self, population):
        assignment = assign_clients(
            population, policy="nearest-k", k=3, seed=1
        )
        for client in range(population.num_clients):
            candidates = population.nearest_caches(client, 3)
            assert assignment[client] in candidates

    def test_random_targets_caches(self, population):
        assignment = assign_clients(population, policy="random", seed=2)
        assert (assignment >= 1).all()
        assert (assignment <= population.num_nodes - 1).all()

    def test_policy_quality_ordering(self, population):
        """nearest <= nearest-k <= random in mean access RTT."""
        nearest = mean_access_rtt(
            population, assign_clients(population, "nearest")
        )
        spread = mean_access_rtt(
            population, assign_clients(population, "nearest-k", k=3, seed=3)
        )
        random_ = mean_access_rtt(
            population, assign_clients(population, "random", seed=3)
        )
        assert nearest <= spread + 1e-9
        assert spread < random_

    def test_unknown_policy_rejected(self, population):
        with pytest.raises(PlacementError):
            assign_clients(population, policy="geoip")

    def test_bad_k_rejected(self, population):
        with pytest.raises(PlacementError):
            assign_clients(population, policy="nearest-k", k=0)

    def test_reproducible(self, population):
        a = assign_clients(population, "nearest-k", k=4, seed=5)
        b = assign_clients(population, "nearest-k", k=4, seed=5)
        assert np.array_equal(a, b)


class TestMeanAccessRtt:
    def test_shape_checked(self, population):
        with pytest.raises(PlacementError):
            mean_access_rtt(population, np.array([1, 2]))
