"""Tests for client-level workload generation and perceived latency."""

import numpy as np
import pytest

from repro.clients import (
    assign_clients,
    client_perceived_latency,
    generate_client_workload,
    place_clients,
)
from repro.config import DocumentConfig, LandmarkConfig, WorkloadConfig
from repro.core.schemes import SLScheme
from repro.errors import WorkloadError
from repro.simulator import simulate


@pytest.fixture
def setup(small_network):
    population = place_clients(small_network, num_clients=30, seed=21)
    assignment = assign_clients(population, policy="nearest")
    config = WorkloadConfig(
        documents=DocumentConfig(num_documents=60),
    )
    cw = generate_client_workload(
        population, assignment, config, requests_per_client=15, seed=21
    )
    return population, assignment, cw


class TestGenerateClientWorkload:
    def test_request_volume(self, setup):
        _population, _assignment, cw = setup
        assert cw.workload.num_requests == 30 * 15

    def test_requests_routed_per_assignment(self, setup):
        population, assignment, cw = setup
        targeted = {r.cache_node for r in cw.workload.requests}
        assert targeted == set(int(a) for a in assignment)

    def test_access_rtt_matches_population(self, setup):
        population, assignment, cw = setup
        # Every cache's recorded access RTTs come from its clients.
        for cache, stats in cw.access_rtt.items():
            client_rtts = [
                population.rtt_to_cache(c, cache)
                for c in range(population.num_clients)
                if int(assignment[c]) == cache
            ]
            assert min(client_rtts) - 1e-9 <= stats.mean <= max(client_rtts) + 1e-9

    def test_time_sorted(self, setup):
        _population, _assignment, cw = setup
        times = [r.timestamp_ms for r in cw.workload.requests]
        assert times == sorted(times)

    def test_reproducible(self, small_network):
        population = place_clients(small_network, num_clients=10, seed=22)
        assignment = assign_clients(population, policy="nearest")
        a = generate_client_workload(
            population, assignment, requests_per_client=5, seed=3
        )
        b = generate_client_workload(
            population, assignment, requests_per_client=5, seed=3
        )
        assert a.workload.requests == b.workload.requests

    def test_bad_requests_per_client(self, setup):
        population, assignment, _cw = setup
        with pytest.raises(WorkloadError):
            generate_client_workload(
                population, assignment, requests_per_client=0
            )

    def test_assignment_shape_checked(self, setup):
        population, _assignment, _cw = setup
        with pytest.raises(WorkloadError):
            generate_client_workload(
                population, np.array([1, 2]), requests_per_client=5
            )

    def test_mean_access_rtt_unknown_cache(self, setup):
        _population, _assignment, cw = setup
        with pytest.raises(WorkloadError):
            cw.mean_access_rtt(9999)


class TestClientPerceivedLatency:
    def test_perceived_exceeds_edge_latency(self, small_network, setup):
        _population, _assignment, cw = setup
        grouping = SLScheme(
            landmark_config=LandmarkConfig(num_landmarks=5)
        ).form_groups(small_network, 5, seed=1)
        result = simulate(small_network, grouping, cw.workload)
        perceived = client_perceived_latency(result, cw)
        edge_only = result.average_latency_ms(
            sorted(cw.access_rtt)
        )
        assert perceived > edge_only

    def test_nearest_redirection_beats_random(self, small_network):
        """End-to-end: better redirection lowers perceived latency."""
        from repro.core.groups import singleton_groups

        population = place_clients(small_network, num_clients=40, seed=23)
        perceived = {}
        for policy in ("nearest", "random"):
            assignment = assign_clients(population, policy=policy, seed=5)
            cw = generate_client_workload(
                population, assignment, requests_per_client=15, seed=5
            )
            result = simulate(
                small_network,
                singleton_groups(small_network.cache_nodes),
                cw.workload,
            )
            perceived[policy] = client_perceived_latency(result, cw)
        assert perceived["nearest"] < perceived["random"]
