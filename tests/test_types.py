"""Tests for repro.types: id conventions and value wrappers."""

import pytest

from repro.types import (
    ORIGIN_NODE_ID,
    Bytes,
    Millis,
    as_node_list,
    cache_index,
    cache_node_id,
)


class TestCacheIdMapping:
    def test_origin_is_node_zero(self):
        assert ORIGIN_NODE_ID == 0

    def test_cache_zero_maps_to_node_one(self):
        assert cache_node_id(0) == 1

    def test_roundtrip(self):
        for i in range(10):
            assert cache_index(cache_node_id(i)) == i

    def test_negative_cache_index_rejected(self):
        with pytest.raises(ValueError):
            cache_node_id(-1)

    def test_origin_has_no_cache_index(self):
        with pytest.raises(ValueError):
            cache_index(ORIGIN_NODE_ID)

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            cache_index(-3)


class TestMillis:
    def test_float_conversion(self):
        assert float(Millis(2.5)) == 2.5

    def test_addition(self):
        assert float(Millis(1.0) + Millis(2.0)) == 3.0

    def test_comparison(self):
        assert Millis(1.0) < Millis(2.0)
        assert not Millis(2.0) < Millis(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Millis(-0.1)


class TestBytes:
    def test_int_conversion(self):
        assert int(Bytes(1024)) == 1024

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Bytes(-1)


class TestAsNodeList:
    def test_passthrough(self):
        assert as_node_list([0, 1, 2]) == [0, 1, 2]

    def test_coerces_numpy_ints(self):
        import numpy as np

        out = as_node_list(list(np.arange(3)))
        assert out == [0, 1, 2]
        assert all(isinstance(n, int) for n in out)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            as_node_list([0, -1])

    def test_rejects_fractional(self):
        with pytest.raises(ValueError):
            as_node_list([0.5])
