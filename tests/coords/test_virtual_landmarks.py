"""Tests for the virtual-landmarks (Lipschitz + PCA) embedding."""

import numpy as np
import pytest

from repro.coords import virtual_landmark_embedding
from repro.errors import EmbeddingError
from repro.landmarks import LandmarkSet, build_feature_vectors


@pytest.fixture
def paper_features(exact_prober):
    landmarks = LandmarkSet(nodes=(0, 1, 5))
    return build_feature_vectors(exact_prober, landmarks)


class TestVirtualLandmarks:
    def test_explicit_dimensions(self, paper_features):
        coords = virtual_landmark_embedding(paper_features, dimensions=2)
        assert coords.shape == (6, 2)

    def test_auto_dimensions_at_least_two(self, paper_features):
        coords = virtual_landmark_embedding(paper_features)
        assert coords.shape[0] == 6
        assert coords.shape[1] >= 2

    def test_preserves_cluster_structure(self, paper_features):
        """The paper's natural pairs stay mutually nearest after PCA."""
        coords = virtual_landmark_embedding(paper_features, dimensions=2)
        # nodes order: (1, 2, 3, 4, 5, 6); pairs (0,1), (2,3), (4,5).
        for a, b in ((0, 1), (2, 3), (4, 5)):
            pair_dist = np.linalg.norm(coords[a] - coords[b])
            others = [
                np.linalg.norm(coords[a] - coords[c])
                for c in range(6)
                if c not in (a, b)
            ]
            assert pair_dist < min(others)

    def test_pca_projection_distances_bounded_by_original(
        self, paper_features
    ):
        """Projection is a contraction: distances never grow."""
        full = paper_features.matrix
        coords = virtual_landmark_embedding(paper_features, dimensions=2)
        for i in range(6):
            for j in range(6):
                original = np.linalg.norm(full[i] - full[j])
                projected = np.linalg.norm(coords[i] - coords[j])
                assert projected <= original + 1e-9

    def test_full_rank_preserves_distances(self, paper_features):
        coords = virtual_landmark_embedding(
            paper_features, dimensions=3, center=True
        )
        full = paper_features.matrix
        for i in range(6):
            for j in range(6):
                assert np.linalg.norm(coords[i] - coords[j]) == pytest.approx(
                    np.linalg.norm(full[i] - full[j]), abs=1e-8
                )

    def test_bad_dimensions_rejected(self, paper_features):
        with pytest.raises(EmbeddingError):
            virtual_landmark_embedding(paper_features, dimensions=0)
        with pytest.raises(EmbeddingError):
            virtual_landmark_embedding(paper_features, dimensions=10)

    def test_single_node_rejected(self, exact_prober):
        landmarks = LandmarkSet(nodes=(0, 1, 5))
        features = build_feature_vectors(exact_prober, landmarks, nodes=[2])
        with pytest.raises(EmbeddingError):
            virtual_landmark_embedding(features)
