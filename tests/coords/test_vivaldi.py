"""Tests for Vivaldi coordinates (extension)."""

import numpy as np
import pytest

from repro.coords import VivaldiCoordinates
from repro.errors import EmbeddingError
from repro.probing import NoNoise, Prober


class TestVivaldi:
    def test_construction(self, small_network):
        v = VivaldiCoordinates(small_network.all_nodes, dimensions=3, seed=0)
        assert v.coordinates.shape == (31, 3)
        assert v.nodes == tuple(small_network.all_nodes)

    def test_observe_moves_towards_target_distance(self):
        v = VivaldiCoordinates([0, 1], dimensions=2, seed=1)
        for _ in range(300):
            v.observe(0, 1, 10.0)
            v.observe(1, 0, 10.0)
        assert v.distance(0, 1) == pytest.approx(10.0, rel=0.15)

    def test_error_decreases_with_training(self, small_network):
        prober = Prober(small_network, noise=NoNoise(), seed=2)
        v = VivaldiCoordinates(small_network.all_nodes, dimensions=4, seed=2)
        before = v.mean_relative_error(prober, samples=150)
        v.run(prober, rounds=25, neighbors_per_round=8)
        after = v.mean_relative_error(prober, samples=150)
        assert after < before

    def test_embedding_quality(self, small_network):
        """After training, typical relative error is moderate (<60%)."""
        prober = Prober(small_network, noise=NoNoise(), seed=3)
        v = VivaldiCoordinates(small_network.all_nodes, dimensions=5, seed=3)
        v.run(prober, rounds=40, neighbors_per_round=10)
        assert v.mean_relative_error(prober, samples=200) < 0.6

    def test_negative_rtt_rejected(self):
        v = VivaldiCoordinates([0, 1], seed=0)
        with pytest.raises(EmbeddingError):
            v.observe(0, 1, -1.0)

    def test_unknown_node_rejected(self):
        v = VivaldiCoordinates([0, 1], seed=0)
        with pytest.raises(EmbeddingError):
            v.observe(0, 99, 1.0)

    def test_too_few_nodes_rejected(self):
        with pytest.raises(EmbeddingError):
            VivaldiCoordinates([0])

    def test_bad_parameters_rejected(self):
        with pytest.raises(EmbeddingError):
            VivaldiCoordinates([0, 1], dimensions=0)
        with pytest.raises(EmbeddingError):
            VivaldiCoordinates([0, 1], ce=0.0)

    def test_bad_run_args_rejected(self, small_network):
        prober = Prober(small_network, seed=0)
        v = VivaldiCoordinates(small_network.all_nodes, seed=0)
        with pytest.raises(EmbeddingError):
            v.run(prober, rounds=0)
