"""Tests for the GNP Euclidean embedding."""

import numpy as np
import pytest

from repro.config import GNPConfig, LandmarkConfig
from repro.errors import EmbeddingError
from repro.landmarks import GreedyMaxMinSelector, build_feature_vectors
from repro.probing import NoNoise, Prober
from repro.coords import embed_gnp


@pytest.fixture
def small_embedding_inputs(small_network):
    prober = Prober(small_network, noise=NoNoise(), seed=0)
    landmarks = GreedyMaxMinSelector().select(
        prober, LandmarkConfig(num_landmarks=8, multiplier=3),
        np.random.default_rng(0),
    )
    features = build_feature_vectors(prober, landmarks)
    return prober, features


class TestEmbedGNP:
    def test_shapes(self, small_embedding_inputs):
        prober, features = small_embedding_inputs
        emb = embed_gnp(
            prober, features, config=GNPConfig(dimensions=4), seed=1
        )
        assert emb.node_coords.shape == (30, 4)
        assert emb.landmark_coords.shape == (8, 4)
        assert emb.dimensions == 4
        assert emb.nodes == features.nodes

    def test_landmark_fit_reasonable(self, small_embedding_inputs):
        """Landmark self-embedding reaches a modest relative error."""
        prober, features = small_embedding_inputs
        emb = embed_gnp(
            prober, features, config=GNPConfig(dimensions=5), seed=1
        )
        assert emb.landmark_fit_error < 0.35

    def test_coordinate_distance_correlates_with_rtt(
        self, small_network, small_embedding_inputs
    ):
        """Embedded distances track true RTTs (rank correlation)."""
        from scipy.stats import spearmanr

        prober, features = small_embedding_inputs
        emb = embed_gnp(
            prober, features, config=GNPConfig(dimensions=5), seed=2
        )
        true, predicted = [], []
        nodes = features.nodes
        for i in range(0, len(nodes), 3):
            for j in range(i + 1, len(nodes), 3):
                true.append(small_network.rtt(nodes[i], nodes[j]))
                predicted.append(emb.coordinate_distance(i, j))
        rho, _p = spearmanr(true, predicted)
        assert rho > 0.7

    def test_dimension_must_be_below_landmark_count(
        self, small_embedding_inputs
    ):
        prober, features = small_embedding_inputs
        with pytest.raises(EmbeddingError):
            embed_gnp(prober, features, config=GNPConfig(dimensions=8))

    def test_coords_read_only(self, small_embedding_inputs):
        prober, features = small_embedding_inputs
        emb = embed_gnp(
            prober, features, config=GNPConfig(dimensions=3), seed=0
        )
        with pytest.raises(ValueError):
            emb.node_coords[0, 0] = 1.0

    def test_reproducible(self, small_embedding_inputs):
        prober, features = small_embedding_inputs
        cfg = GNPConfig(dimensions=3, max_iterations=50)
        a = embed_gnp(prober, features, config=cfg, seed=5)
        # The prober's rng advanced, so rebuild an identical one.
        prober_b, features_b = small_embedding_inputs
        b = embed_gnp(prober_b, features_b, config=cfg, seed=5)
        # Same seed and same (noise-free) measurements: same landmarks fit.
        assert a.landmark_fit_error == pytest.approx(
            b.landmark_fit_error, abs=1e-9
        )
