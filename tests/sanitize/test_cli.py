"""``repro sanitize`` run/diff: exit codes and report formats.

One real (small) experiment capture is shared across the diff tests —
the run itself is the expensive part.
"""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def captured_ledger(tmp_path_factory):
    out = tmp_path_factory.mktemp("sanitize") / "serial.json"
    code = main([
        "sanitize", "run", "--figure", "fig6", "--repetitions", "1",
        "--out", str(out),
    ])
    assert code == 0
    return out


def test_run_writes_a_versioned_ledger(captured_ledger):
    payload = json.loads(captured_ledger.read_text())
    assert payload["version"] == 1
    assert payload["meta"]["figure"] == "fig6"
    assert payload["phases"], "a real run must record draws"


def test_diff_of_identical_ledgers_exits_zero(captured_ledger, capsys):
    code = main([
        "sanitize", "diff", str(captured_ledger), str(captured_ledger),
    ])
    assert code == 0
    assert "zero divergence" in capsys.readouterr().out


def test_diff_reports_divergence_and_exits_one(
    captured_ledger, tmp_path, capsys
):
    payload = json.loads(captured_ledger.read_text())
    phase = sorted(payload["phases"])[0]
    site = sorted(payload["phases"][phase])[0]
    payload["phases"][phase][site]["digest"] += 1
    tampered = tmp_path / "tampered.json"
    tampered.write_text(json.dumps(payload))

    code = main(["sanitize", "diff", str(captured_ledger), str(tampered)])
    assert code == 1
    out = capsys.readouterr().out
    assert site in out
    assert "different values" in out


def test_diff_json_format(captured_ledger, tmp_path, capsys):
    payload = json.loads(captured_ledger.read_text())
    phase = sorted(payload["phases"])[0]
    site = sorted(payload["phases"][phase])[0]
    del payload["phases"][phase][site]
    pruned = tmp_path / "pruned.json"
    pruned.write_text(json.dumps(payload))

    code = main([
        "sanitize", "diff", str(captured_ledger), str(pruned),
        "--format", "json",
    ])
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["clean"] is False
    assert report["divergences"][0]["site"] == site
    assert report["divergences"][0]["kind"] == "missing-in-b"


def test_diff_missing_file_exits_two(tmp_path, capsys):
    code = main([
        "sanitize", "diff", str(tmp_path / "a.json"), str(tmp_path / "b.json"),
    ])
    assert code == 2
    assert "not found" in capsys.readouterr().err


def test_diff_bad_version_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"version": 99, "phases": {}}))
    code = main(["sanitize", "diff", str(bad), str(bad)])
    assert code == 2
    assert "version" in capsys.readouterr().err
