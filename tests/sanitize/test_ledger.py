"""Ledger math: rolling-hash composition, absorb, JSON, diff."""

import json

import numpy as np
import pytest

from repro.sanitize import (
    Ledger,
    SiteEntry,
    diff_ledgers,
    fold,
    fold_segment,
    render_diff_json,
    render_diff_text,
    value_digest,
)


class TestRollingHash:
    def test_fold_segment_composes_like_serial_folding(self):
        # The whole design rests on this: a segment recorded separately
        # folds into a prefix exactly as if its draws were replayed.
        draws = [101, 7, 42, 9, 9, 3]
        for split in range(len(draws) + 1):
            serial = 0
            for d in draws:
                serial = fold(serial, d)
            prefix = 0
            for d in draws[:split]:
                prefix = fold(prefix, d)
            segment = 0
            for d in draws[split:]:
                segment = fold(segment, d)
            combined = fold_segment(prefix, segment, len(draws) - split)
            assert combined == serial, f"split at {split}"

    def test_order_sensitivity(self):
        assert fold(fold(0, 1), 2) != fold(fold(0, 2), 1)

    def test_empty_segment_is_identity(self):
        assert fold_segment(12345, 0, 0) == 12345


class TestValueDigest:
    def test_stable_for_equal_arrays(self):
        a = np.arange(10, dtype=np.int64)
        b = np.arange(10, dtype=np.int64)
        assert value_digest("integers", a) == value_digest("integers", b)

    def test_method_name_participates(self):
        value = np.float64(0.5)
        assert value_digest("random", value) != value_digest("uniform", value)

    def test_dtype_participates(self):
        ones_i = np.zeros(4, dtype=np.int32)
        ones_f = np.zeros(4, dtype=np.float32)
        assert value_digest("m", ones_i) != value_digest("m", ones_f)

    def test_unbuffered_values_fall_back_to_repr(self):
        assert value_digest("choice", {"a": 1}) == value_digest(
            "choice", {"a": 1}
        )


class TestSiteEntryAbsorb:
    def test_absorb_equals_serial_recording(self):
        serial = SiteEntry()
        for d in (5, 6, 7, 8):
            serial.record(d)

        first, second = SiteEntry(), SiteEntry()
        first.record(5)
        first.record(6)
        second.record(7)
        second.record(8)
        merged = SiteEntry()
        merged.absorb(first)
        merged.absorb(second)
        assert merged.count == serial.count
        assert merged.digest == serial.digest

    def test_absorb_keeps_first_stack(self):
        entry = SiteEntry()
        entry.absorb(SiteEntry(count=1, digest=3, stack=("a:f:1",)))
        entry.absorb(SiteEntry(count=1, digest=4, stack=("b:g:2",)))
        assert entry.stack == ("a:f:1",)


class TestLedgerSerialisation:
    def make_ledger(self):
        ledger = Ledger(meta={"figure": "fig6"})
        ledger.record("main", "mod:fn#noise", 11, stack=("mod:fn:3",))
        ledger.record("main", "mod:fn#noise", 12)
        ledger.record("task", "mod:unit#rep0", 13)
        return ledger

    def test_round_trip(self, tmp_path):
        ledger = self.make_ledger()
        target = tmp_path / "ledger.json"
        ledger.save(target)
        loaded = Ledger.load(target)
        assert loaded.meta == {"figure": "fig6"}
        assert loaded.to_dict() == ledger.to_dict()
        assert diff_ledgers(ledger, loaded).clean

    def test_serialisation_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self.make_ledger().save(a)
        self.make_ledger().save(b)
        assert a.read_text() == b.read_text()

    def test_wrong_version_is_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"version": 99, "phases": {}}))
        with pytest.raises(ValueError, match="version"):
            Ledger.load(bad)

    def test_total_draws_and_canonical_site_order(self):
        ledger = self.make_ledger()
        assert ledger.total_draws() == 3
        assert [(p, s) for p, s, _ in ledger.sites()] == [
            ("main", "mod:fn#noise"),
            ("task", "mod:unit#rep0"),
        ]


class TestDiff:
    def test_identical_ledgers_are_clean(self):
        a, b = Ledger(), Ledger()
        for ledger in (a, b):
            ledger.record("main", "mod:fn#x", 9)
        result = diff_ledgers(a, b)
        assert result.clean
        assert render_diff_text(result) == "ledgers match: zero divergence"

    def test_meta_never_participates(self):
        a = Ledger(meta={"jobs": 1})
        b = Ledger(meta={"jobs": 4})
        a.record("main", "s", 1)
        b.record("main", "s", 1)
        assert diff_ledgers(a, b).clean

    def test_count_divergence(self):
        a, b = Ledger(), Ledger()
        a.record("main", "mod:fn#x", 9)
        b.record("main", "mod:fn#x", 9)
        b.record("main", "mod:fn#x", 10)
        [div] = diff_ledgers(a, b).divergences
        assert div.kind == "count"
        assert (div.a_count, div.b_count) == (1, 2)

    def test_digest_divergence_with_equal_counts(self):
        a, b = Ledger(), Ledger()
        a.record("main", "mod:fn#x", 9)
        b.record("main", "mod:fn#x", 10)
        [div] = diff_ledgers(a, b).divergences
        assert div.kind == "digest"

    def test_missing_site_divergence(self):
        a, b = Ledger(), Ledger()
        b.record("task", "mod:unit#rep1", 5)
        [div] = diff_ledgers(a, b).divergences
        assert div.kind == "missing-in-a"
        assert div.site == "mod:unit#rep1"

    def test_first_divergence_is_canonical_and_rendered_with_stack(self):
        a, b = Ledger(), Ledger()
        a.record("alpha", "mod:early#x", 1, stack=("mod:early:10",))
        b.record("alpha", "mod:early#x", 2, stack=("mod:early:10",))
        a.record("beta", "mod:late#y", 3)
        b.record("beta", "mod:late#y", 4)
        result = diff_ledgers(a, b)
        assert result.first.site == "mod:early#x"
        text = render_diff_text(result, "serial", "jobs4")
        assert "phase 'alpha', site mod:early#x" in text
        assert "at mod:early:10" in text
        assert "mod:late#y" in text

    def test_json_rendering(self):
        a, b = Ledger(), Ledger()
        a.record("main", "s", 1)
        b.record("main", "s", 2)
        payload = json.loads(render_diff_json(diff_ledgers(a, b)))
        assert payload["clean"] is False
        [record] = payload["divergences"]
        assert record["kind"] == "digest"
        assert record["site"] == "s"
