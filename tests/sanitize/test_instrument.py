"""The sanitize() context: identical draws, correct ledgers, clean exit.

The parity tests drive real :class:`TaskScheduler` pools, so the work
unit must be module-level (picklable by reference).
"""

import numpy as np
import pytest

from repro.runtime import TaskScheduler, map_tasks, use_scheduler
from repro.runtime.scheduler import task_ledger
from repro.sanitize import (
    EVENT_SITE,
    SanitizeError,
    diff_ledgers,
    sanitize,
)
from repro.simulator.events import EventQueue, RequestEvent
from repro.utils.rng import RngFactory


def _unit(payload):
    """One parallelisable work unit drawing from content-keyed streams."""
    factory = RngFactory(payload["seed"])
    rng = factory.stream(f"rep{payload['rep']}")
    values = rng.random(4)
    extra = rng.integers(0, 100)
    return float(values.sum()) + float(extra)


def _payloads(count=6, seed=123):
    return [{"seed": seed, "rep": rep} for rep in range(count)]


class TestDrawTransparency:
    def test_draws_are_bit_identical_under_the_sanitizer(self):
        def draw():
            rng = RngFactory(7).stream("noise")
            return (rng.random(8), rng.integers(0, 1000, size=5),
                    rng.normal(size=3))

        plain = draw()
        with sanitize():
            instrumented = draw()
        for a, b in zip(plain, instrumented):
            np.testing.assert_array_equal(a, b)

    def test_stream_identity_is_stable_within_the_context(self):
        with sanitize():
            factory = RngFactory(7)
            assert factory.stream("noise") is factory.stream("noise")

    def test_spawned_generators_still_pass_isinstance(self):
        with sanitize():
            rng = RngFactory(7).stream("noise")
            assert isinstance(rng, np.random.Generator)


class TestLedgerContents:
    def test_site_fingerprint_names_caller_and_label(self):
        with sanitize() as state:
            rng = RngFactory(7).stream("noise")
            rng.random()
        sites = [site for _, site, _ in state.ledger.sites()]
        [site] = sites
        module, rest = site.split(":", 1)
        assert module == __name__
        assert rest.endswith("#noise")

    def test_draw_counts_per_phase(self):
        with sanitize() as state:
            rng = RngFactory(7).stream("noise")
            rng.random()
            with state.phase("experiment/figX"):
                rng.random()
                rng.random()
        counts = {
            (phase, entry.count) for phase, _, entry in state.ledger.sites()
        }
        assert counts == {("main", 1), ("experiment/figX", 2)}

    def test_fork_records_its_own_site(self):
        with sanitize() as state:
            RngFactory(7).fork("faults")
        [(_, site, entry)] = list(state.ledger.sites())
        assert site.endswith("#fork:faults")
        assert entry.count == 1

    def test_event_pops_are_recorded(self):
        with sanitize() as state:
            queue = EventQueue()
            for t in (3.0, 1.0, 2.0):
                queue.push(RequestEvent(timestamp_ms=t, cache_node=0,
                                        doc_id=1))
            while queue:
                queue.pop()
        [(phase, site, entry)] = list(state.ledger.sites())
        assert site == EVENT_SITE
        assert entry.count == 3

    def test_event_order_changes_the_digest(self):
        def run(times):
            with sanitize() as state:
                queue = EventQueue()
                for t in times:
                    queue.push(RequestEvent(timestamp_ms=t, cache_node=0,
                                            doc_id=1))
                drained = queue.drain_sorted()
            assert len(drained) == len(times)
            return state.ledger

        same = diff_ledgers(run([1.0, 2.0]), run([2.0, 1.0]))
        assert same.clean  # the queue sorts; order in == order out
        different = diff_ledgers(run([1.0, 2.0]), run([1.0, 3.0]))
        assert not different.clean


class TestLifecycle:
    def test_patches_are_restored_on_exit(self):
        before = (RngFactory.stream, RngFactory.fork, EventQueue.pop,
                  EventQueue.drain_sorted)
        with sanitize():
            assert RngFactory.stream is not before[0]
            assert task_ledger() is not None
        after = (RngFactory.stream, RngFactory.fork, EventQueue.pop,
                 EventQueue.drain_sorted)
        assert before == after
        assert task_ledger() is None

    def test_patches_are_restored_after_an_exception(self):
        before = RngFactory.stream
        with pytest.raises(RuntimeError, match="boom"):
            with sanitize():
                raise RuntimeError("boom")
        assert RngFactory.stream is before
        assert task_ledger() is None

    def test_nesting_raises(self):
        with sanitize():
            with pytest.raises(SanitizeError, match="nest"):
                with sanitize():
                    pass

    def test_leftover_wrapped_streams_go_quiet_after_exit(self):
        factory = RngFactory(7)
        with sanitize() as state:
            rng = factory.stream("noise")
            rng.random()
        draws_inside = state.ledger.total_draws()
        rng.random()  # the wrapped instance outlives the context
        assert state.ledger.total_draws() == draws_inside


class TestSchedulerParity:
    def run_with_jobs(self, jobs):
        with sanitize() as state:
            with TaskScheduler(jobs) as scheduler, use_scheduler(scheduler):
                values = map_tasks(_unit, _payloads())
        return values, state.ledger

    def test_serial_and_pooled_ledgers_match(self):
        serial_values, serial_ledger = self.run_with_jobs(1)
        pooled_values, pooled_ledger = self.run_with_jobs(2)
        assert serial_values == pooled_values
        result = diff_ledgers(serial_ledger, pooled_ledger)
        assert result.clean, "\n" + "\n".join(
            d.describe() for d in result.divergences
        )

    def test_task_draws_land_under_the_task_phase(self):
        _, ledger = self.run_with_jobs(1)
        assert set(ledger.phases) == {"task"}
        assert ledger.total_draws() == 2 * len(_payloads())

    def test_injected_extra_draw_names_site_and_phase(self):
        _, clean = self.run_with_jobs(1)

        def tainted(payload):
            value = _unit(payload)
            if payload["rep"] == 3:
                # The unseeded stray draw a lint pragma could hide.
                value += float(RngFactory(999).stream("stray").random())
            return value

        with sanitize() as state:
            with TaskScheduler(1) as scheduler, use_scheduler(scheduler):
                map_tasks(tainted, _payloads())
        result = diff_ledgers(clean, state.ledger)
        assert not result.clean
        assert result.first.phase == "task"
        assert result.first.kind == "missing-in-a"
        module, rest = result.first.site.split(":", 1)
        assert module == __name__
        assert rest.endswith("#stray")
