"""Tests for network persistence."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.persist import load_network, save_network
from repro.topology import build_network, network_from_matrix


class TestNetworkRoundTrip:
    def test_distances_preserved(self, tmp_path):
        network = build_network(num_caches=12, seed=4)
        path = tmp_path / "net.npz"
        save_network(network, path)
        loaded = load_network(path)
        assert np.array_equal(
            loaded.distances.as_array(), network.distances.as_array()
        )
        assert loaded.num_caches == 12

    def test_placement_preserved(self, tmp_path):
        network = build_network(num_caches=8, seed=5)
        path = tmp_path / "net.npz"
        save_network(network, path)
        loaded = load_network(path)
        assert loaded.placement == network.placement

    def test_placement_optional(self, tmp_path, paper_network):
        path = tmp_path / "paper.npz"
        save_network(paper_network, path)
        loaded = load_network(path)
        assert loaded.placement is None
        assert loaded.rtt(1, 2) == 4.0

    def test_loaded_network_usable_by_schemes(self, tmp_path):
        from repro.config import LandmarkConfig
        from repro.core.schemes import SLScheme

        network = build_network(num_caches=15, seed=6)
        path = tmp_path / "net.npz"
        save_network(network, path)
        loaded = load_network(path)
        grouping = SLScheme(
            landmark_config=LandmarkConfig(num_landmarks=4)
        ).form_groups(loaded, 3, seed=1)
        assert sorted(grouping.all_members) == loaded.cache_nodes

    def test_graph_not_persisted(self, tmp_path):
        network = build_network(num_caches=6, seed=7)
        path = tmp_path / "net.npz"
        save_network(network, path)
        assert load_network(path).graph is None

    def test_bad_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, unrelated=np.zeros(3))
        with pytest.raises(ReproError):
            load_network(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "old.npz"
        np.savez(
            path,
            format_version=np.asarray([99]),
            rtt_ms=np.zeros((2, 2)),
        )
        with pytest.raises(ReproError):
            load_network(path)
