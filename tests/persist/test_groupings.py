"""Tests for grouping persistence."""

import json
import math

import pytest

from repro.config import LandmarkConfig
from repro.core.groups import CacheGroup, GroupingResult
from repro.core.schemes import SLScheme
from repro.errors import ReproError
from repro.landmarks.base import LandmarkSet
from repro.persist import load_grouping, save_grouping


def manual_grouping():
    return GroupingResult(
        scheme="manual",
        groups=(CacheGroup(0, (1, 2)), CacheGroup(1, (3,))),
        landmarks=LandmarkSet(nodes=(0, 2), min_pairwise_rtt=8.0),
    )


class TestGroupingRoundTrip:
    def test_groups_preserved(self, tmp_path):
        path = tmp_path / "g.json"
        save_grouping(manual_grouping(), path)
        loaded = load_grouping(path)
        assert loaded.scheme == "manual"
        assert loaded.membership() == {1: 0, 2: 0, 3: 1}

    def test_landmarks_preserved(self, tmp_path):
        path = tmp_path / "g.json"
        save_grouping(manual_grouping(), path)
        loaded = load_grouping(path)
        assert loaded.landmarks.nodes == (0, 2)
        assert loaded.landmarks.min_pairwise_rtt == 8.0

    def test_nan_objective_roundtrips(self, tmp_path):
        grouping = GroupingResult(
            scheme="manual",
            groups=(CacheGroup(0, (1,)),),
            landmarks=LandmarkSet(nodes=(0, 1)),
        )
        path = tmp_path / "g.json"
        save_grouping(grouping, path)
        loaded = load_grouping(path)
        assert math.isnan(loaded.landmarks.min_pairwise_rtt)

    def test_no_landmarks(self, tmp_path):
        grouping = GroupingResult(
            scheme="manual", groups=(CacheGroup(0, (1,)),)
        )
        path = tmp_path / "g.json"
        save_grouping(grouping, path)
        assert load_grouping(path).landmarks is None

    def test_scheme_output_roundtrips(self, tmp_path, small_network):
        grouping = SLScheme(
            landmark_config=LandmarkConfig(num_landmarks=4)
        ).form_groups(small_network, 4, seed=1)
        path = tmp_path / "g.json"
        save_grouping(grouping, path)
        loaded = load_grouping(path)
        assert loaded.membership() == grouping.membership()
        # Run-scoped provenance is intentionally dropped.
        assert loaded.features is None
        assert loaded.clustering is None

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ReproError):
            load_grouping(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"format_version": 9, "groups": []}))
        with pytest.raises(ReproError):
            load_grouping(path)

    def test_malformed_payload_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 1, "groups": [{}]}))
        with pytest.raises(ReproError):
            load_grouping(path)
