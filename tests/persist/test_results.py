"""Tests for experiment-result persistence."""

import json

import pytest

from repro.analysis.report import ExperimentResult, SeriesResult
from repro.errors import ReproError
from repro.persist import load_result, save_result


def make_result():
    return ExperimentResult(
        experiment_id="fig4",
        x_label="num_caches",
        x_values=(60, 100),
        series=(
            SeriesResult("sl_ms", (5.5, 4.25)),
            SeriesResult("random_ms", (6.0, 5.0)),
        ),
        notes={"gain": 8.5},
    )


class TestResultRoundTrip:
    def test_full_roundtrip(self, tmp_path):
        path = tmp_path / "r.json"
        save_result(make_result(), path)
        loaded = load_result(path)
        assert loaded.experiment_id == "fig4"
        assert loaded.x_values == (60, 100)
        assert loaded.series_named("sl_ms").values == (5.5, 4.25)
        assert loaded.notes == {"gain": 8.5}

    def test_render_equivalent(self, tmp_path):
        path = tmp_path / "r.json"
        original = make_result()
        save_result(original, path)
        assert load_result(path).render() == original.render()

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("][")
        with pytest.raises(ReproError):
            load_result(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"format_version": 3}))
        with pytest.raises(ReproError):
            load_result(path)

    def test_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 1}))
        with pytest.raises(ReproError):
            load_result(path)


class TestManifestRoundTrip:
    def make_manifest(self):
        from repro.obs import (
            MetricsSampler,
            Observer,
            PhaseRegistry,
            TraceCollector,
            build_manifest,
        )

        observer = Observer(
            trace=TraceCollector(), sampler=MetricsSampler(100.0)
        )
        observer.sampler.observe_request("local_hit", 4.0, counted=True)
        observer.sampler.flush(100.0)
        registry = PhaseRegistry()
        registry.merge_totals({"landmarks": 0.2})
        return build_manifest(
            "unit", seed=11, registry=registry, observer=observer,
            totals={"requests": 1.0},
        )

    def test_save_load_round_trip(self, tmp_path):
        from repro.persist import load_manifest, save_manifest

        path = tmp_path / "run.json"
        save_manifest(self.make_manifest(), path)
        loaded = load_manifest(path)
        assert loaded.label == "unit"
        assert loaded.seed == 11
        assert loaded.phase_timings_s == {"landmarks": 0.2}
        assert loaded.totals == {"requests": 1.0}
        assert len(loaded.timeseries) == 1

    def test_on_disk_payload_is_versioned(self, tmp_path):
        from repro.persist import save_manifest

        path = tmp_path / "run.json"
        save_manifest(self.make_manifest(), path)
        payload = json.loads(path.read_text())
        assert payload["kind"] == "run_manifest"
        assert payload["format_version"] == 1

    def test_wrong_kind_rejected(self, tmp_path):
        from repro.persist import load_manifest

        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format_version": 1, "kind": "other"}))
        with pytest.raises(ReproError):
            load_manifest(path)

    def test_wrong_version_rejected(self, tmp_path):
        from repro.persist import load_manifest

        path = tmp_path / "old.json"
        path.write_text(
            json.dumps({"format_version": 99, "kind": "run_manifest"})
        )
        with pytest.raises(ReproError):
            load_manifest(path)
