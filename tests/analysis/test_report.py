"""Tests for experiment result containers."""

import pytest

from repro.analysis import ExperimentResult, SeriesResult
from repro.errors import ReproError


def result_of():
    return ExperimentResult(
        experiment_id="figX",
        x_label="k",
        x_values=(1, 2, 3),
        series=(
            SeriesResult("a_ms", (5.0, 3.0, 4.0)),
            SeriesResult("b_ms", (6.0, 7.0, 8.0)),
        ),
        notes={"gain": 12.34},
    )


class TestSeriesResult:
    def test_min_index(self):
        s = SeriesResult("s", (5.0, 1.0, 9.0))
        assert s.min_index() == 1
        assert len(s) == 3

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            SeriesResult("s", ())

    def test_unnamed_rejected(self):
        with pytest.raises(ReproError):
            SeriesResult("", (1.0,))


class TestExperimentResult:
    def test_series_named(self):
        r = result_of()
        assert r.series_named("a_ms").values == (5.0, 3.0, 4.0)

    def test_unknown_series(self):
        with pytest.raises(ReproError):
            result_of().series_named("zzz")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            ExperimentResult(
                experiment_id="x",
                x_label="k",
                x_values=(1, 2),
                series=(SeriesResult("a", (1.0,)),),
            )

    def test_no_series_rejected(self):
        with pytest.raises(ReproError):
            ExperimentResult(
                experiment_id="x", x_label="k", x_values=(1,), series=()
            )

    def test_table_rendering(self):
        table = result_of().to_table()
        assert table.columns == ["k", "a_ms", "b_ms"]
        assert table.row_count == 3

    def test_render_contains_notes(self):
        text = result_of().render()
        assert "== figX ==" in text
        assert "gain: 12.34" in text
