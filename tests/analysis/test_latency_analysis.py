"""Tests for latency comparison helpers."""

import pytest

from repro.analysis import improvement_percent, latency_by_subset
from repro.core.groups import singleton_groups
from repro.errors import SchemeError
from repro.simulator import simulate


class TestImprovementPercent:
    def test_positive_improvement(self):
        assert improvement_percent(100.0, 73.0) == pytest.approx(27.0)

    def test_regression_negative(self):
        assert improvement_percent(100.0, 120.0) == pytest.approx(-20.0)

    def test_no_change_zero(self):
        assert improvement_percent(50.0, 50.0) == 0.0

    def test_zero_baseline_rejected(self):
        with pytest.raises(SchemeError):
            improvement_percent(0.0, 10.0)


class TestLatencyBySubset:
    def test_named_subsets(self, small_network, small_workload):
        result = simulate(
            small_network,
            singleton_groups(small_network.cache_nodes),
            small_workload,
        )
        subsets = {
            "near": small_network.caches_nearest_origin(5),
            "far": small_network.caches_farthest_origin(5),
        }
        out = latency_by_subset(result, subsets)
        assert set(out) == {"near", "far"}
        assert out["far"] > out["near"]
