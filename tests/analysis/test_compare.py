"""Tests for experiment result comparison."""

import pytest

from repro.analysis import compare_results
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.errors import ReproError


def result_of(values, x=(1, 2, 3), experiment_id="figX", name="a_ms"):
    return ExperimentResult(
        experiment_id=experiment_id,
        x_label="k",
        x_values=tuple(x),
        series=(SeriesResult(name, tuple(values)),),
    )


class TestCompareResults:
    def test_identical_results_no_regression(self):
        base = result_of((10.0, 20.0, 30.0))
        report = compare_results(base, result_of((10.0, 20.0, 30.0)))
        assert report.regressions() == []
        series = report.series[0]
        assert series.relative_deltas == (0.0, 0.0, 0.0)

    def test_improvement_not_a_regression(self):
        base = result_of((10.0, 20.0, 30.0))
        better = result_of((5.0, 10.0, 15.0))
        report = compare_results(base, better)
        assert report.regressions() == []

    def test_regression_detected(self):
        base = result_of((10.0, 20.0, 30.0))
        worse = result_of((10.0, 20.0, 40.0))  # +33% at one point
        report = compare_results(base, worse)
        assert report.regressions(tolerance=0.15) == ["a_ms"]
        assert not report.series[0].regressed(tolerance=0.5)

    def test_alignment_on_shared_x(self):
        base = result_of((10.0, 20.0, 30.0), x=(1, 2, 3))
        candidate = result_of((21.0, 31.0), x=(2, 3))
        report = compare_results(base, candidate)
        series = report.series[0]
        assert series.x_values == (2, 3)
        assert series.baseline == (20.0, 30.0)
        assert series.candidate == (21.0, 31.0)

    def test_mismatched_experiment_rejected(self):
        with pytest.raises(ReproError):
            compare_results(
                result_of((1.0,), x=(1,), experiment_id="fig4"),
                result_of((1.0,), x=(1,), experiment_id="fig5"),
            )

    def test_no_shared_x_rejected(self):
        with pytest.raises(ReproError):
            compare_results(
                result_of((1.0,), x=(1,)),
                result_of((1.0,), x=(9,)),
            )

    def test_no_shared_series_rejected(self):
        with pytest.raises(ReproError):
            compare_results(
                result_of((1.0,), x=(1,), name="a"),
                result_of((1.0,), x=(1,), name="b"),
            )

    def test_zero_baseline_handled(self):
        base = result_of((0.0, 1.0), x=(1, 2))
        candidate = result_of((0.0, 1.0), x=(1, 2))
        report = compare_results(base, candidate)
        assert report.series[0].relative_deltas[0] == 0.0

    def test_render_mentions_regressions(self):
        base = result_of((10.0,), x=(1,))
        worse = result_of((20.0,), x=(1,))
        text = compare_results(base, worse).render()
        assert "REGRESSED: a_ms" in text

    def test_render_clean(self):
        base = result_of((10.0,), x=(1,))
        text = compare_results(base, base).render()
        assert "no regressions" in text

    def test_bad_tolerance_rejected(self):
        base = result_of((10.0,), x=(1,))
        report = compare_results(base, base)
        with pytest.raises(ReproError):
            report.series[0].regressed(tolerance=-1.0)
