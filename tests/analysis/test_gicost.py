"""Tests for the average group interaction cost metric."""

import pytest

from repro.analysis import average_group_interaction_cost
from repro.analysis.gicost import group_interaction_cost, interaction_cost
from repro.core.groups import CacheGroup, GroupingResult
from repro.errors import SchemeError


def grouping(*member_tuples):
    return GroupingResult(
        scheme="manual",
        groups=tuple(
            CacheGroup(i, members) for i, members in enumerate(member_tuples)
        ),
    )


class TestInteractionCost:
    def test_rtt_plus_transfer(self, paper_network):
        assert interaction_cost(paper_network, 1, 2) == 4.0
        assert interaction_cost(
            paper_network, 1, 2, avg_doc_transfer_ms=3.0
        ) == 7.0

    def test_negative_transfer_rejected(self, paper_network):
        with pytest.raises(SchemeError):
            interaction_cost(paper_network, 1, 2, avg_doc_transfer_ms=-1.0)


class TestGroupInteractionCost:
    def test_pair(self, paper_network):
        g = CacheGroup(0, (1, 2))
        assert group_interaction_cost(paper_network, g) == 4.0

    def test_triple_average(self, paper_network):
        g = CacheGroup(0, (1, 2, 3))
        expected = (4.0 + 17.0 + 14.4) / 3
        assert group_interaction_cost(paper_network, g) == pytest.approx(
            expected
        )

    def test_singleton_zero(self, paper_network):
        assert group_interaction_cost(paper_network, CacheGroup(0, (1,))) == 0.0


class TestAverageGICost:
    def test_paper_natural_grouping(self, paper_network):
        """Natural pairs all have RTT 4 -> average GICost is 4."""
        g = grouping((1, 2), (3, 4), (5, 6))
        assert average_group_interaction_cost(paper_network, g) == 4.0

    def test_mean_over_groups(self, paper_network):
        g = grouping((1, 2), (3, 5))  # costs 4.0 and 17.0
        assert average_group_interaction_cost(
            paper_network, g
        ) == pytest.approx(10.5)

    def test_singletons_pull_average_down(self, paper_network):
        g = grouping((1, 2), (3,), (4,))
        assert average_group_interaction_cost(
            paper_network, g
        ) == pytest.approx(4.0 / 3)

    def test_skip_singletons(self, paper_network):
        g = grouping((1, 2), (3,), (4,))
        assert average_group_interaction_cost(
            paper_network, g, skip_singletons=True
        ) == pytest.approx(4.0)

    def test_all_singletons_skip(self, paper_network):
        g = grouping((1,), (2,))
        assert average_group_interaction_cost(
            paper_network, g, skip_singletons=True
        ) == 0.0

    def test_transfer_shifts_cost(self, paper_network):
        g = grouping((1, 2))
        base = average_group_interaction_cost(paper_network, g)
        shifted = average_group_interaction_cost(
            paper_network, g, avg_doc_transfer_ms=5.0
        )
        assert shifted == base + 5.0
