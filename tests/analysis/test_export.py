"""Tests for CSV export."""

import csv

import pytest

from repro.analysis.export import (
    CACHE_COLUMNS,
    export_cache_stats,
    export_experiment_result,
)
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.simulator import SimulationMetrics
from repro.simulator.latency import ServiceAccount, ServicePath


def account(path, total=10.0):
    return ServiceAccount(
        path=path, total_ms=total, query_ms=0.0, fetch_ms=0.0,
        transfer_ms=0.0,
    )


class TestExportCacheStats:
    def test_rows_and_columns(self, tmp_path):
        metrics = SimulationMetrics([1, 2])
        metrics.record_request(
            1, account(ServicePath.LOCAL_HIT, 5.0), 0, 0, counted=True
        )
        metrics.record_request(
            2, account(ServicePath.ORIGIN_FETCH, 50.0), 2, 800, counted=True
        )
        path = tmp_path / "stats.csv"
        export_cache_stats(metrics, path)
        with open(path) as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == 2
        assert set(rows[0]) == set(CACHE_COLUMNS)
        assert rows[0]["local_hits"] == "1"
        assert rows[1]["origin_bytes"] == "800"
        assert float(rows[1]["mean_latency_ms"]) == 50.0

    def test_cache_without_requests(self, tmp_path):
        metrics = SimulationMetrics([1])
        path = tmp_path / "stats.csv"
        export_cache_stats(metrics, path)
        with open(path) as f:
            rows = list(csv.DictReader(f))
        assert rows[0]["mean_latency_ms"] == ""


class TestExportExperimentResult:
    def test_layout(self, tmp_path):
        result = ExperimentResult(
            experiment_id="figX",
            x_label="k",
            x_values=(1, 2),
            series=(
                SeriesResult("a_ms", (1.5, 2.5)),
                SeriesResult("b_ms", (3.0, 4.0)),
            ),
        )
        path = tmp_path / "result.csv"
        export_experiment_result(result, path)
        with open(path) as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["k", "a_ms", "b_ms"]
        assert rows[1] == ["1", "1.5", "3.0"]
        assert rows[2] == ["2", "2.5", "4.0"]
