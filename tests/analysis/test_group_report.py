"""Tests for the per-group simulation breakdown."""

import pytest

from repro.analysis import group_report_table, summarize_groups
from repro.config import LandmarkConfig
from repro.core.schemes import SLScheme
from repro.simulator import simulate


@pytest.fixture(scope="module")
def sim_result(small_network, small_workload):
    grouping = SLScheme(
        landmark_config=LandmarkConfig(num_landmarks=5)
    ).form_groups(small_network, 4, seed=2)
    return simulate(small_network, grouping, small_workload)


class TestSummarizeGroups:
    def test_one_summary_per_group(self, sim_result):
        summaries = summarize_groups(sim_result)
        assert len(summaries) == sim_result.grouping.num_groups

    def test_shares_sum_to_one(self, sim_result):
        for s in summarize_groups(sim_result):
            total = s.local_hit_share + s.group_hit_share + s.origin_share
            assert total == pytest.approx(1.0)

    def test_requests_match_metrics(self, sim_result):
        summaries = summarize_groups(sim_result)
        assert sum(s.requests for s in summaries) == (
            sim_result.metrics.total_requests()
        )

    def test_sizes_match_grouping(self, sim_result):
        by_id = {g.group_id: g for g in sim_result.grouping.groups}
        for s in summarize_groups(sim_result):
            assert s.size == by_id[s.group_id].size

    def test_gicost_zero_for_singletons(self, sim_result):
        for s in summarize_groups(sim_result):
            if s.size == 1:
                assert s.gicost_ms == 0.0
            else:
                assert s.gicost_ms > 0.0

    def test_latency_positive(self, sim_result):
        for s in summarize_groups(sim_result):
            assert s.mean_latency_ms > 0


class TestGroupReportTable:
    def test_table_shape(self, sim_result):
        table = group_report_table(sim_result)
        assert table.row_count == sim_result.grouping.num_groups
        assert "gicost_ms" in table.columns
        assert "server_dist_ms" in table.columns
