"""Tests for ASCII chart rendering."""

import pytest

from repro.analysis.asciiplot import sketch
from repro.analysis.report import ExperimentResult, SeriesResult
from repro.errors import ReproError


def result_of(values_a=(5.0, 1.0, 9.0), values_b=None):
    series = [SeriesResult("a", tuple(values_a))]
    if values_b is not None:
        series.append(SeriesResult("b", tuple(values_b)))
    return ExperimentResult(
        experiment_id="figX",
        x_label="k",
        x_values=tuple(range(len(values_a))),
        series=tuple(series),
    )


class TestSketch:
    def test_contains_axis_and_legend(self):
        text = sketch(result_of())
        assert "k: 0 .. 2" in text
        assert "o a" in text

    def test_extremes_on_chart_edges(self):
        text = sketch(result_of(values_a=(0.0, 10.0)), height=5)
        lines = text.splitlines()
        assert lines[0].lstrip().startswith("10.0")
        assert "0.0" in lines[4]

    def test_two_series_two_markers(self):
        text = sketch(result_of(values_b=(1.0, 2.0, 3.0)))
        assert "o" in text and "x" in text
        assert "x b" in text

    def test_overlap_marker(self):
        text = sketch(
            result_of(values_a=(1.0, 2.0), values_b=(1.0, 5.0)), height=6
        )
        assert "!" in text

    def test_flat_series_handled(self):
        text = sketch(result_of(values_a=(3.0, 3.0, 3.0)))
        assert "o" in text

    def test_single_point_falls_back_to_table(self):
        result = ExperimentResult(
            experiment_id="figX",
            x_label="k",
            x_values=(1,),
            series=(SeriesResult("a", (2.0,)),),
        )
        text = sketch(result)
        assert "|" in text  # table rendering

    def test_too_small_rejected(self):
        with pytest.raises(ReproError):
            sketch(result_of(), height=2)

    def test_row_count(self):
        text = sketch(result_of(), height=8, width=30)
        # 8 chart rows + axis + x label + legend.
        assert len(text.splitlines()) == 11
