"""Tests for the random landmark selector baseline."""

import numpy as np
import pytest

from repro.config import LandmarkConfig, ProbeConfig
from repro.errors import LandmarkSelectionError
from repro.landmarks import RandomSelector
from repro.probing import Prober
from repro.types import ORIGIN_NODE_ID


class TestRandomSelector:
    def test_origin_first(self, paper_network, rng):
        prober = Prober(paper_network, seed=0)
        lm = RandomSelector().select(
            prober, LandmarkConfig(num_landmarks=3), rng
        )
        assert lm.nodes[0] == ORIGIN_NODE_ID
        assert len(lm) == 3

    def test_landmarks_are_caches(self, paper_network, rng):
        prober = Prober(paper_network, seed=0)
        lm = RandomSelector().select(
            prober, LandmarkConfig(num_landmarks=4), rng
        )
        assert set(lm.cache_landmarks) <= set(paper_network.cache_nodes)

    def test_no_probes_issued(self, paper_network, rng):
        prober = Prober(paper_network, seed=0)
        RandomSelector().select(prober, LandmarkConfig(num_landmarks=4), rng)
        assert prober.stats.probes_sent == 0

    def test_objective_is_nan(self, paper_network, rng):
        prober = Prober(paper_network, seed=0)
        lm = RandomSelector().select(
            prober, LandmarkConfig(num_landmarks=3), rng
        )
        assert np.isnan(lm.min_pairwise_rtt)

    def test_distribution_uniform(self, paper_network):
        """Every cache appears as a landmark at a similar frequency."""
        prober = Prober(paper_network, seed=0)
        counts = {c: 0 for c in paper_network.cache_nodes}
        trials = 600
        rng = np.random.default_rng(0)
        for _ in range(trials):
            lm = RandomSelector().select(
                prober, LandmarkConfig(num_landmarks=2), rng
            )
            counts[lm.cache_landmarks[0]] += 1
        expected = trials / 6
        for count in counts.values():
            assert abs(count - expected) < 5 * np.sqrt(expected)

    def test_too_many_rejected(self, paper_network, rng):
        prober = Prober(paper_network, seed=0)
        with pytest.raises(LandmarkSelectionError):
            RandomSelector().select(
                prober, LandmarkConfig(num_landmarks=20), rng
            )
