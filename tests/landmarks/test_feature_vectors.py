"""Tests for feature-vector construction (SL step 2)."""

import numpy as np
import pytest

from repro.config import ProbeConfig
from repro.errors import LandmarkSelectionError
from repro.landmarks import LandmarkSet, build_feature_vectors
from repro.probing import NoNoise, Prober


@pytest.fixture
def paper_landmarks():
    """The paper's chosen landmarks: {Os, Ec0, Ec4} = nodes (0, 1, 5)."""
    return LandmarkSet(nodes=(0, 1, 5), min_pairwise_rtt=12.0)


class TestBuildFeatureVectors:
    def test_paper_figure2_vectors(self, exact_prober, paper_landmarks):
        """Figure 2's feature vectors, exactly (no noise)."""
        fv = build_feature_vectors(exact_prober, paper_landmarks)
        expected = {
            1: [12.0, 0.0, 17.0],    # Ec0
            2: [8.0, 4.0, 14.4],     # Ec1
            3: [12.0, 17.0, 17.0],   # Ec2
            4: [8.0, 14.4, 14.4],    # Ec3
            5: [12.0, 17.0, 0.0],    # Ec4
            6: [8.0, 14.4, 4.0],     # Ec5
        }
        for node, vector in expected.items():
            assert fv.vector_of(node).tolist() == vector

    def test_shape_and_defaults(self, exact_prober, paper_landmarks):
        fv = build_feature_vectors(exact_prober, paper_landmarks)
        assert fv.nodes == (1, 2, 3, 4, 5, 6)
        assert fv.matrix.shape == (6, 3)
        assert fv.dimension == 3

    def test_explicit_node_subset(self, exact_prober, paper_landmarks):
        fv = build_feature_vectors(exact_prober, paper_landmarks, nodes=[2, 4])
        assert fv.nodes == (2, 4)
        assert fv.matrix.shape == (2, 3)

    def test_l2_distance(self, exact_prober, paper_landmarks):
        fv = build_feature_vectors(exact_prober, paper_landmarks)
        expected = np.linalg.norm(
            np.array([12.0, 0.0, 17.0]) - np.array([8.0, 4.0, 14.4])
        )
        assert fv.l2_distance(1, 2) == pytest.approx(expected)

    def test_unknown_node_rejected(self, exact_prober, paper_landmarks):
        fv = build_feature_vectors(exact_prober, paper_landmarks)
        with pytest.raises(LandmarkSelectionError):
            fv.vector_of(99)

    def test_matrix_read_only(self, exact_prober, paper_landmarks):
        fv = build_feature_vectors(exact_prober, paper_landmarks)
        with pytest.raises(ValueError):
            fv.matrix[0, 0] = 1.0

    def test_index_of(self, exact_prober, paper_landmarks):
        fv = build_feature_vectors(exact_prober, paper_landmarks)
        index = fv.index_of()
        for node, row in index.items():
            assert fv.nodes[row] == node

    def test_empty_nodes_rejected(self, exact_prober, paper_landmarks):
        with pytest.raises(LandmarkSelectionError):
            build_feature_vectors(exact_prober, paper_landmarks, nodes=[])

    def test_probe_budget_linear(self, paper_network, paper_landmarks):
        """Feature vectors cost N x L probed pairs (self-probes free)."""
        prober = Prober(
            paper_network, config=ProbeConfig(probe_count=1), seed=0
        )
        build_feature_vectors(prober, paper_landmarks)
        # 6 caches x 3 landmarks, minus the two self pairs (Ec0->Ec0
        # and Ec4->Ec4 are free), all distinct unordered pairs.
        assert prober.stats.pairs_measured <= 6 * 3

    def test_landmark_member_zero_column(self, exact_prober, paper_landmarks):
        """A landmark cache's own column entry is zero."""
        fv = build_feature_vectors(exact_prober, paper_landmarks)
        assert fv.vector_of(1)[1] == 0.0  # Ec0's distance to itself
        assert fv.vector_of(5)[2] == 0.0  # Ec4's distance to itself
