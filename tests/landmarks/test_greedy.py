"""Tests for the SL greedy max–min landmark selector.

Includes the exact reproduction of the paper's Figure 1 walkthrough.
"""

import numpy as np
import pytest

from repro.config import LandmarkConfig, ProbeConfig
from repro.errors import LandmarkSelectionError
from repro.landmarks import GreedyMaxMinSelector
from repro.landmarks.greedy import sample_potential_landmarks
from repro.probing import NoNoise, Prober
from repro.types import ORIGIN_NODE_ID


class TestPaperFigure1:
    """The worked example: PLSet = {Ec0, Ec1, Ec3, Ec4}, L=3, M=2."""

    def test_exact_walkthrough(self, exact_prober):
        selector = GreedyMaxMinSelector()
        config = LandmarkConfig(num_landmarks=3, multiplier=2)
        # Paper cache ids Ec0, Ec1, Ec3, Ec4 -> node ids 1, 2, 4, 5.
        landmarks = selector.select_from_potential(
            exact_prober, config, [1, 2, 4, 5]
        )
        # "Chosen Landmarks = {Os, Ec0, Ec4}" with MinDist(LmSet) = 12.0.
        assert landmarks.nodes == (0, 1, 5)
        assert landmarks.min_pairwise_rtt == pytest.approx(12.0)

    def test_iteration_order(self, exact_prober):
        """Iteration 1 adds Ec0 (ties by id), iteration 2 adds Ec4."""
        selector = GreedyMaxMinSelector()
        two = selector.select_from_potential(
            exact_prober, LandmarkConfig(num_landmarks=2), [1, 2, 4, 5]
        )
        assert two.nodes == (0, 1)


class TestSelect:
    def test_origin_always_included(self, paper_network, rng):
        prober = Prober(paper_network, noise=NoNoise(), seed=0)
        landmarks = GreedyMaxMinSelector().select(
            prober, LandmarkConfig(num_landmarks=3), rng
        )
        assert landmarks.nodes[0] == ORIGIN_NODE_ID

    def test_requested_count(self, paper_network, rng):
        prober = Prober(paper_network, noise=NoNoise(), seed=0)
        for l in (2, 3, 4):
            landmarks = GreedyMaxMinSelector().select(
                prober, LandmarkConfig(num_landmarks=l), rng
            )
            assert len(landmarks) == l

    def test_too_many_landmarks_rejected(self, paper_network, rng):
        prober = Prober(paper_network, seed=0)
        with pytest.raises(LandmarkSelectionError):
            GreedyMaxMinSelector().select(
                prober, LandmarkConfig(num_landmarks=8), rng
            )

    def test_maxmin_beats_random_spread(self, small_network):
        """Greedy yields a larger min-pairwise spread than random picks."""
        from repro.landmarks import RandomSelector

        config = LandmarkConfig(num_landmarks=6, multiplier=4)
        greedy_spreads = []
        random_spreads = []
        for seed in range(5):
            prober = Prober(small_network, noise=NoNoise(), seed=seed)
            rng = np.random.default_rng(seed)
            greedy = GreedyMaxMinSelector().select(prober, config, rng)
            greedy_spreads.append(greedy.min_pairwise_rtt)
            random_lm = RandomSelector().select(
                prober, config, np.random.default_rng(seed + 100)
            )
            truth = small_network.distances.submatrix(list(random_lm.nodes))
            masked = truth + np.diag(np.full(len(random_lm), np.inf))
            random_spreads.append(float(masked.min()))
        assert np.mean(greedy_spreads) > np.mean(random_spreads)

    def test_probe_budget_stays_quadratic_in_plset(self, small_network):
        """SL probes PLSet pairs, never all N^2 cache pairs."""
        config = LandmarkConfig(num_landmarks=4, multiplier=2)
        prober = Prober(
            small_network, config=ProbeConfig(probe_count=1), seed=0
        )
        GreedyMaxMinSelector().select(
            prober, config, np.random.default_rng(0)
        )
        plset_size = config.potential_set_size() + 1  # plus origin
        max_pairs = plset_size * (plset_size - 1) // 2
        assert prober.stats.pairs_measured <= max_pairs

    def test_insufficient_plset_rejected(self, exact_prober):
        with pytest.raises(LandmarkSelectionError):
            GreedyMaxMinSelector().select_from_potential(
                exact_prober, LandmarkConfig(num_landmarks=4), [1, 2]
            )


class TestSamplePotentialLandmarks:
    def test_size(self, rng):
        caches = list(range(1, 21))
        config = LandmarkConfig(num_landmarks=4, multiplier=3)
        plset = sample_potential_landmarks(caches, config, rng)
        assert len(plset) == 9  # M * (L - 1)
        assert len(set(plset)) == 9

    def test_clamped_to_cache_count(self, rng):
        caches = list(range(1, 6))
        config = LandmarkConfig(num_landmarks=4, multiplier=10)
        plset = sample_potential_landmarks(caches, config, rng)
        assert len(plset) == 5

    def test_members_are_caches(self, rng):
        caches = [10, 20, 30, 40]
        config = LandmarkConfig(num_landmarks=3, multiplier=2)
        plset = sample_potential_landmarks(caches, config, rng)
        assert set(plset) <= set(caches)

    def test_too_few_caches_rejected(self, rng):
        with pytest.raises(LandmarkSelectionError):
            sample_potential_landmarks(
                [1], LandmarkConfig(num_landmarks=5), rng
            )
