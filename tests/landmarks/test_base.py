"""Tests for repro.landmarks.base: LandmarkSet invariants."""

import numpy as np
import pytest

from repro.errors import LandmarkSelectionError
from repro.landmarks.base import LandmarkSet, min_pairwise


class TestLandmarkSet:
    def test_valid(self):
        lm = LandmarkSet(nodes=(0, 3, 5), min_pairwise_rtt=4.0)
        assert len(lm) == 3
        assert list(lm) == [0, 3, 5]
        assert 3 in lm
        assert 99 not in lm
        assert lm.cache_landmarks == (3, 5)

    def test_origin_must_be_first(self):
        with pytest.raises(LandmarkSelectionError):
            LandmarkSet(nodes=(3, 0, 5))

    def test_duplicates_rejected(self):
        with pytest.raises(LandmarkSelectionError):
            LandmarkSet(nodes=(0, 3, 3))

    def test_too_small_rejected(self):
        with pytest.raises(LandmarkSelectionError):
            LandmarkSet(nodes=(0,))

    def test_default_objective_nan(self):
        lm = LandmarkSet(nodes=(0, 1))
        assert np.isnan(lm.min_pairwise_rtt)


class TestMinPairwise:
    def test_ignores_diagonal(self):
        matrix = np.array([[0.0, 5.0], [5.0, 0.0]])
        assert min_pairwise(matrix) == 5.0

    def test_finds_smallest(self):
        matrix = np.array(
            [[0.0, 5.0, 2.0], [5.0, 0.0, 9.0], [2.0, 9.0, 0.0]]
        )
        assert min_pairwise(matrix) == 2.0

    def test_single_node_rejected(self):
        with pytest.raises(LandmarkSelectionError):
            min_pairwise(np.zeros((1, 1)))
