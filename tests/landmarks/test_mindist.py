"""Tests for the min-dist (adversarial) landmark selector."""

import numpy as np
import pytest

from repro.config import LandmarkConfig
from repro.landmarks import GreedyMaxMinSelector, MinDistSelector
from repro.probing import NoNoise, Prober


class TestMinDistSelector:
    def test_origin_first_and_count(self, paper_network, rng):
        prober = Prober(paper_network, noise=NoNoise(), seed=0)
        lm = MinDistSelector().select(
            prober, LandmarkConfig(num_landmarks=3), rng
        )
        assert lm.nodes[0] == 0
        assert len(lm) == 3

    def test_bunches_landmarks(self, exact_prober):
        """On the paper network, min-dist picks the caches closest to Os.

        From the full PLSet the dual-greedy adds Ec1 (8ms from Os) and
        then the node minimising its max distance to {Os, Ec1}.
        """
        selector = MinDistSelector()
        lm = selector.select_from_potential(
            exact_prober,
            LandmarkConfig(num_landmarks=3),
            [1, 2, 3, 4, 5, 6],
        )
        # Whatever the exact picks, the spread must not exceed greedy's.
        greedy = GreedyMaxMinSelector().select_from_potential(
            exact_prober,
            LandmarkConfig(num_landmarks=3),
            [1, 2, 3, 4, 5, 6],
        )
        assert lm.min_pairwise_rtt <= greedy.min_pairwise_rtt

    def test_spread_below_greedy_on_generated_network(self, small_network):
        config = LandmarkConfig(num_landmarks=5, multiplier=4)
        diffs = []
        for seed in range(5):
            prober = Prober(small_network, noise=NoNoise(), seed=seed)
            rng_a = np.random.default_rng(seed)
            rng_b = np.random.default_rng(seed)
            greedy = GreedyMaxMinSelector().select(prober, config, rng_a)
            mindist = MinDistSelector().select(prober, config, rng_b)
            diffs.append(greedy.min_pairwise_rtt - mindist.min_pairwise_rtt)
        assert np.mean(diffs) > 0

    def test_select_from_potential_shared_plset(self, exact_prober):
        """Same PLSet -> min-dist spread <= greedy spread, deterministically."""
        plset = [1, 2, 4, 5]
        config = LandmarkConfig(num_landmarks=3)
        greedy = GreedyMaxMinSelector().select_from_potential(
            exact_prober, config, plset
        )
        mindist = MinDistSelector().select_from_potential(
            exact_prober, config, plset
        )
        assert mindist.min_pairwise_rtt <= greedy.min_pairwise_rtt
